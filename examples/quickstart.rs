//! Quickstart: drive one REACT region server by hand.
//!
//! Registers a handful of workers, submits location-based tasks, steps
//! the middleware clock, and shows assignments, a probabilistic recall
//! of a stalling worker, and completions.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use react::core::prelude::*;

fn main() {
    // Paper defaults, but batch eagerly (the demo has only a few tasks)
    // and skip the modelled PlanetLab matching latency.
    let mut config = Config::paper_defaults();
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    config.charge_matching_time = false;
    let mut server = ServerBuilder::new(config)
        .seed(42)
        .build()
        .expect("paper defaults are valid");

    // A small crowd around Athens.
    let spots = [
        (37.9838, 23.7275, "Syntagma"),
        (37.9715, 23.7267, "Koukaki"),
        (38.0000, 23.7400, "Ampelokipoi"),
    ];
    for (i, (lat, lon, name)) in spots.iter().enumerate() {
        let id = WorkerId(i as u64 + 1);
        server.register_worker(id, GeoPoint::new(*lat, *lon));
        println!("registered {id} near {name}");
    }

    // Build execution-time profiles: keep submitting quick training
    // tasks until every worker has the paper's z = 3 completions, so the
    // probabilistic model is active no matter whom the matcher picks for
    // the urgent task below (the matcher, not the demo, chooses the
    // assignee — it need not round-robin).
    let mut now = 0.0;
    let mut next_task = 100u64;
    while server.profiling().iter().any(|p| p.total_finished() < 3) {
        let tid = TaskId(next_task);
        next_task += 1;
        server.submit_task(
            Task::new(
                tid,
                GeoPoint::new(37.98, 23.73),
                60.0,
                0.05,
                TaskCategory(0),
                "training task",
            ),
            now,
        );
        let out = server.tick(now);
        for (worker, task) in &out.assignments {
            // Everyone answers quickly during training: 4–6 s.
            let exec = 4.0 + (task.0 % 3) as f64 * 0.7;
            let done = server
                .complete_task(*task, *worker, now + exec, true)
                .expect("assignment just made");
            println!(
                "t={:5.1}s  {worker} finished {task} in {exec:.1}s (deadline met: {})",
                now + exec,
                done.met_deadline
            );
        }
        now += 8.0;
    }

    // Now the interesting part: a real-time task lands on a worker who
    // stalls. The Dynamic Assignment Component (Eq. 2) notices that the
    // elapsed time has exceeded anything in the worker's power-law
    // profile and recalls the task for reassignment.
    let urgent = TaskId(500);
    server.submit_task(
        Task::new(
            urgent,
            GeoPoint::new(37.99, 23.73),
            60.0,
            0.10,
            TaskCategory(0),
            "Is the Kifisias avenue congested right now?",
        ),
        now,
    );
    let out = server.tick(now);
    let (stalling_worker, _) = out.assignments[0];
    println!("\nt={now:5.1}s  urgent task assigned to {stalling_worker} … who stalls");

    // 30 seconds pass with no result (profile says ≤ ~6 s is normal).
    let mut recalled = false;
    for step in 1..=30 {
        let t = now + step as f64;
        let out = server.tick(t);
        if let Some(recall) = out.recalls.first() {
            println!(
                "t={t:5.1}s  Eq. (2) probability fell to {:.3} → task recalled from {}",
                recall.probability, recall.worker
            );
            recalled = true;
        }
        if let Some(&(worker, task)) = out.assignments.first() {
            println!("t={t:5.1}s  task {task} reassigned to {worker}");
            let done = server
                .complete_task(task, worker, t + 5.0, true)
                .expect("reassignment valid");
            println!(
                "t={:5.1}s  {worker} delivered the answer — deadline met: {}, feedback positive: {}",
                t + 5.0,
                done.met_deadline,
                done.positive_feedback
            );
            break;
        }
    }
    assert!(recalled, "the stalled assignment should have been recalled");

    let total = server
        .profiling()
        .iter()
        .map(|p| p.total_finished())
        .sum::<u64>();
    println!(
        "\ncrowd completed {total} tasks overall; scheduler ran {} batches",
        server.batches_run()
    );
}
