//! Worker profiling — the power-law deadline model in isolation.
//!
//! Follows one simulated worker: execution times accumulate in the
//! profile, the Clauset–Shalizi–Newman fit converges to the underlying
//! exponent, and the Eq. (2)/(3) probabilities drive edge instantiation
//! and mid-flight recall decisions exactly as in Sec. IV-B.
//!
//! ```text
//! cargo run --example worker_profiling
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use react::prob::{DeadlineModel, DeadlineModelConfig, ExecTimeEstimator, FitMethod, PowerLaw};

fn main() {
    // Ground truth: this worker's execution times follow a power law
    // with α = 2.4 above 4 seconds.
    let truth = PowerLaw::new(2.4, 4.0).expect("valid parameters");
    let mut rng = SmallRng::seed_from_u64(2013);

    // The Profiling Component observes completions one at a time.
    let mut estimator = ExecTimeEstimator::with_defaults();
    println!("observing completions (truth: α = 2.4, k_min = 4 s)\n");
    println!("{:>6} {:>10} {:>10}", "n", "fitted α", "KS stat");
    for n in [3usize, 10, 30, 100, 300, 1000] {
        while estimator.len() < n {
            estimator.observe(truth.sample(&mut rng));
        }
        let model = estimator.model().expect("warm after 3 samples");
        println!(
            "{n:>6} {:>10.3} {:>10.3}",
            model.alpha(),
            model.ks_statistic(estimator.samples())
        );
    }

    let model = estimator.model().expect("warm");
    let deadline_model = DeadlineModel::new(DeadlineModelConfig::default());

    // Eq. (3): which deadlines is this worker even eligible for?
    println!("\nEq. (3) edge instantiation, threshold 10%:");
    for ttd in [3.0, 5.0, 8.0, 20.0, 60.0] {
        let p = deadline_model.pr_complete_before(&model, ttd);
        println!(
            "  TTD {ttd:>5.1} s → Pr(complete) = {p:.3} → edge {}",
            if deadline_model.should_instantiate_edge(&model, ttd) {
                "instantiated"
            } else {
                "PRUNED"
            }
        );
    }

    // Eq. (2): watching one 60-second assignment stall.
    println!("\nEq. (2) in-flight checks for a 60 s window:");
    for elapsed in [0.0, 5.0, 15.0, 30.0, 45.0, 55.0] {
        let decision = deadline_model.check_in_flight(&model, elapsed, 60.0);
        println!(
            "  elapsed {elapsed:>5.1} s → Pr(finish in window) = {:.3} → {}",
            decision.probability(),
            if decision.is_reassign() {
                "REASSIGN"
            } else {
                "keep"
            }
        );
    }

    // The same samples fitted with both estimator variants.
    let paper = PowerLaw::fit(estimator.samples(), 4.0, FitMethod::Paper).expect("fit");
    let continuous = PowerLaw::fit(estimator.samples(), 4.0, FitMethod::Continuous).expect("fit");
    println!(
        "\nestimators: paper α = {:.3}, continuous α = {:.3}",
        paper.alpha(),
        continuous.alpha()
    );
}
