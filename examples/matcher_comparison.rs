//! Matcher comparison — the WBGM algorithms side by side on one graph.
//!
//! Builds a contended 200×200 full bipartite graph and reports matching
//! weight, optimality gap (vs the exact Hungarian solution), measured
//! Rust wall time and the paper-calibrated modelled time for each
//! algorithm — a miniature of the paper's Figs. 3–4 plus the exact and
//! auction references.
//!
//! ```text
//! cargo run --release --example matcher_comparison
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react::matching::{
    AuctionMatcher, BipartiteGraph, CostModel, GreedyMatcher, HungarianMatcher, Matcher,
    MetropolisMatcher, ReactMatcher,
};
use react::metrics::Table;
use std::time::Instant;

fn main() {
    let side = 200;
    let mut weight_rng = SmallRng::seed_from_u64(7);
    let graph = BipartiteGraph::full(side, side, |_, _| weight_rng.gen::<f64>())
        .expect("uniform weights are valid");
    println!(
        "full graph: {} workers × {} tasks = {} edges\n",
        graph.n_workers(),
        graph.n_tasks(),
        graph.n_edges()
    );

    let cost_model = CostModel::paper_calibrated();
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(HungarianMatcher),
        Box::new(AuctionMatcher::default()),
        Box::new(GreedyMatcher),
        Box::new(ReactMatcher::with_cycles(3000)),
        Box::new(ReactMatcher::with_cycles(1000)),
        Box::new(MetropolisMatcher::with_cycles(3000)),
        Box::new(MetropolisMatcher::with_cycles(1000)),
    ];
    let labels = [
        "hungarian (exact)",
        "auction ε=1e-4",
        "greedy",
        "react @3000",
        "react @1000",
        "metropolis @3000",
        "metropolis @1000",
    ];

    let mut optimum = None;
    let mut table = Table::new(&["algorithm", "weight", "of optimal", "wall ms", "modeled s"])
        .with_title("matching quality vs cost");
    for (matcher, label) in matchers.iter().zip(labels) {
        let mut rng = SmallRng::seed_from_u64(99);
        let t0 = Instant::now();
        let m = matcher.assign(&graph, &mut rng);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        m.verify(&graph);
        let opt = *optimum.get_or_insert(m.total_weight);
        table.add_row(vec![
            label.to_string(),
            format!("{:.2}", m.total_weight),
            format!("{:.1}%", 100.0 * m.total_weight / opt),
            format!("{wall_ms:.2}"),
            format!(
                "{:.2}",
                cost_model.seconds_for(matcher.name(), m.cost_units)
            ),
        ]);
    }
    println!("{}", table.render());
    println!(
        "note: 'modeled s' replays the paper's 2013 JVM/PlanetLab calibration \
         (Fig. 3 anchors); 'wall ms' is this Rust implementation."
    );
}
