//! Live dispatch — the middleware on real threads and the wall clock.
//!
//! Spawns one host thread per crowd worker plus a requester thread, and
//! runs the REACT scheduler loop against them with time compressed 120×
//! (two simulated minutes per wall second). Demonstrates asynchronous
//! assignment, interruptible execution (Eq. 2 recalls actually abort the
//! sleeping "human"), and clean shutdown.
//!
//! ```text
//! cargo run --release --example live_dispatch
//! ```

use react::crowd::BehaviorParams;
use react::runtime::{LiveConfig, LiveRuntime};
use std::time::Instant;

fn main() {
    let config = LiveConfig {
        n_workers: 40,
        total_tasks: 200,
        arrival_rate: 4.0,
        time_scale: 120.0,
        behavior: BehaviorParams::default(),
        seed: 2013,
        ..LiveConfig::default()
    };
    println!(
        "spawning {} worker threads; {} tasks at {}/crowd-second, {}× time compression…",
        config.n_workers, config.total_tasks, config.arrival_rate, config.time_scale
    );

    let t0 = Instant::now();
    let report = LiveRuntime::new(config).run();
    let wall = t0.elapsed().as_secs_f64();

    println!("\nlive run finished in {wall:.1} wall-seconds:");
    println!("  submitted          {}", report.submitted);
    println!("  completed          {}", report.completed);
    println!(
        "  met deadline       {} ({:.1}%)",
        report.met_deadline,
        100.0 * report.met_deadline as f64 / report.submitted.max(1) as f64
    );
    println!("  positive feedback  {}", report.positive_feedback);
    println!("  Eq.(2) recalls     {}", report.recalls);
    println!("  expired in queue   {}", report.expired);
    println!("  matching batches   {}", report.batches);

    assert_eq!(
        report.completed + report.expired,
        report.submitted,
        "every task must complete or expire"
    );
}
