//! Churny crowd — connectivity churn and multi-region decomposition.
//!
//! The paper warns that *"even the most reliable workers may have short
//! connectivity cycles"*. This demo runs the same REACT workload over an
//! increasingly flaky crowd, then shows the paper's proposed remedy for
//! overload: splitting the area into more regions.
//!
//! ```text
//! cargo run --release --example churny_crowd
//! ```

use react::core::MatcherPolicy;
use react::crowd::{ChurnParams, MultiRegionRunner, MultiRegionScenario, Scenario, ScenarioRunner};
use react::metrics::Table;

fn main() {
    // Part 1 — a 150-worker region under growing churn.
    let mut table = Table::new(&[
        "mean online s",
        "churn events",
        "met deadline %",
        "reassigned",
        "expired",
    ])
    .with_title("REACT under worker connectivity churn (150 workers, 1200 tasks)");
    for mean_online in [f64::INFINITY, 120.0, 45.0, 15.0] {
        let mut sc = Scenario::paper_fig5(MatcherPolicy::React { cycles: 1000 }, 99);
        sc.n_workers = 150;
        sc.arrival_rate = 1.875;
        sc.total_tasks = 1200;
        sc.churn = mean_online.is_finite().then_some(ChurnParams {
            mean_online,
            offline_range: (10.0, 40.0),
        });
        let r = ScenarioRunner::new(sc).run();
        table.add_row(vec![
            if mean_online.is_finite() {
                format!("{mean_online}")
            } else {
                "stable".to_string()
            },
            r.churn_events.to_string(),
            format!("{:.1}%", 100.0 * r.deadline_ratio()),
            r.reassignments.to_string(),
            r.expired_unassigned.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Part 2 — the same global load over finer region grids.
    let mut table = Table::new(&["grid", "servers", "met deadline %", "max server match s"])
        .with_title("Region splitting under one global load (600 workers, 4800 tasks)");
    for (rows, cols) in [(1u32, 1u32), (2, 2), (3, 3)] {
        let mut global = Scenario::paper_fig5(MatcherPolicy::React { cycles: 1000 }, 7);
        global.n_workers = 600;
        global.arrival_rate = 7.5;
        global.total_tasks = 4800;
        let report = MultiRegionRunner::new(MultiRegionScenario { global, rows, cols }).run();
        table.add_row(vec![
            format!("{rows}x{cols}"),
            (rows * cols).to_string(),
            format!("{:.1}%", 100.0 * report.deadline_ratio()),
            format!("{:.1}", report.max_matching_seconds()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "finer grids shrink each server's bipartite graph, cutting the modelled \
         matching latency exactly as the paper's future-work section predicts."
    );
}
