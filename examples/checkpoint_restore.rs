//! Checkpoint & restore — worker profiles survive a middleware restart.
//!
//! Builds profiles through a short working session, exports them with
//! `react::core::persist`, "restarts" into a fresh Profiling Component,
//! and shows that accuracy, training counters and the fitted power-law
//! models carry over byte-for-byte.
//!
//! ```text
//! cargo run --example checkpoint_restore
//! ```

use react::core::prelude::*;
use react::core::{export_profiles, import_profiles};
use react::matching::CostModel;
use react::prob::EstimatorConfig;

fn main() {
    let here = GeoPoint::new(37.98, 23.72);
    let mut config = Config::paper_defaults();
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    let mut server = ServerBuilder::new(config)
        .seed(11)
        .cost_model(CostModel::free())
        .build()
        .expect("paper defaults are valid");

    // A short working session: two workers, six tasks each.
    for w in 1..=2u64 {
        server.register_worker(WorkerId(w), here);
    }
    let mut now = 0.0;
    for i in 0..12u64 {
        server.submit_task(
            Task::new(TaskId(i), here, 60.0, 0.05, TaskCategory(0), "t"),
            now,
        );
        let out = server.tick(now);
        for &(worker, task) in &out.assignments {
            // Worker 1 is fast and reliable, worker 2 slow and sloppy.
            let (exec, ok) = if worker == WorkerId(1) {
                (3.0, true)
            } else {
                (25.0, i % 2 == 0)
            };
            server
                .complete_task(task, worker, now + exec, ok)
                .expect("fresh assignment");
        }
        now += 30.0;
    }

    println!("before restart:");
    for p in server.profiling().iter() {
        println!(
            "  {}: {} finished, accuracy {:.2}, exec samples {:?}",
            p.id(),
            p.total_finished(),
            p.accuracy(TaskCategory(0)),
            p.exec_samples()
        );
    }

    // Checkpoint.
    let checkpoint = export_profiles(server.profiling());
    println!("\ncheckpoint ({} bytes):\n{checkpoint}", checkpoint.len());

    // "Restart": a brand-new component, fully restored.
    let restored = import_profiles(&checkpoint, EstimatorConfig::default())
        .expect("our own checkpoint parses");
    println!("after restart:");
    for id in [WorkerId(1), WorkerId(2)] {
        let p = restored.profile(id).expect("restored");
        println!(
            "  {}: {} finished, accuracy {:.2}, still profiled: {}",
            p.id(),
            p.total_finished(),
            p.accuracy(TaskCategory(0)),
            p.is_profiled()
        );
    }
    assert_eq!(
        export_profiles(&restored),
        checkpoint,
        "round-trip is byte-stable"
    );
    println!("\nround-trip byte-stable ✓ — no worker returns to training after a restart");
}
