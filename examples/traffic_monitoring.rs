//! Traffic monitoring — the paper's motivating location-based workload.
//!
//! A metropolitan area is decomposed into regions (Sec. III-A), each with
//! its own REACT server. Requesters ask "how congested is X?" with tight
//! deadlines; tasks are routed to the server of the region that contains
//! them, and matching uses a blend of worker accuracy (Eq. 1) and
//! geographic proximity — the paper's suggested weight for
//! location-based applications.
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use react::core::{Config, MatcherPolicy, WeightFunction};
use react::crowd::{Scenario, ScenarioRunner};
use react::geo::{BoundingBox, GeoPoint, RegionGrid, RegionRouter};
use react::metrics::Table;

fn main() {
    // 1. Decompose greater Athens into a 2×2 region grid, one REACT
    //    server per region.
    let metro = BoundingBox::new(37.8, 38.2, 23.5, 24.0).expect("static bounds");
    let grid = RegionGrid::new(metro, 2, 2).expect("non-zero grid");
    let mut router = RegionRouter::new(&grid, 5_000);
    println!("{} regions, one server each", grid.len());

    // Show the routing: every incident lands on exactly one server.
    let incidents = [
        ("Kifisias & Alexandras", GeoPoint::new(37.99, 23.76)),
        ("Piraeus port gate E9", GeoPoint::new(37.94, 23.63)),
        ("Attiki Odos toll", GeoPoint::new(38.05, 23.86)),
    ];
    for (name, at) in &incidents {
        let server = router.register(at).expect("inside the metro area");
        println!("  '{name}' → {server}");
    }

    // 2. Run the REACT scenario per region with the location-aware
    //    weight function, at a quarter of the paper's fig-5 load per
    //    region server.
    let mut table = Table::new(&["region", "met deadline %", "positive %", "recalls"])
        .with_title("\nPer-region traffic monitoring (REACT, blend weight)");
    for region_id in grid.region_ids() {
        let cell = grid.cell(region_id).expect("valid region");
        let mut sc = Scenario::paper_fig5(
            MatcherPolicy::React { cycles: 1000 },
            7 + region_id.0 as u64,
        );
        sc.label = format!("traffic-{region_id}");
        sc.n_workers = 200;
        sc.arrival_rate = 2.5;
        sc.total_tasks = 1500;
        sc.region = cell;
        sc.config = Config::with_matcher(MatcherPolicy::React { cycles: 1000 });
        sc.config.weight = WeightFunction::Blend {
            lambda: 0.7,
            scale_km: 8.0,
        };
        let report = ScenarioRunner::new(sc).run();
        table.add_row(vec![
            region_id.to_string(),
            format!("{:.1}%", 100.0 * report.deadline_ratio()),
            format!("{:.1}%", 100.0 * report.positive_ratio()),
            report.reassignments.to_string(),
        ]);
    }
    println!("{}", table.render());

    // 3. Overload handling: flood one region and split it (the paper's
    //    future-work proposal, Sec. V-D).
    let hot = GeoPoint::new(37.95, 23.65);
    for _ in 0..5_000 {
        router.register(&hot);
    }
    let splits = router.split_overloaded();
    for (old, new) in &splits {
        println!(
            "region of {old} overloaded → split into {} / {} / {} / {}",
            new[0], new[1], new[2], new[3]
        );
    }
    println!(
        "router now exposes {} servers (was {})",
        router.server_count(),
        grid.len()
    );
}
