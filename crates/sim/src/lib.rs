//! Discrete-event simulation kernel for the REACT experiments.
//!
//! The paper evaluated REACT live on PlanetLab; this crate is the
//! documented substitute (see `DESIGN.md`): a deterministic discrete-event
//! simulator whose virtual clock advances from event to event. All the
//! paper's evaluation metrics — deadline misses, feedback counts,
//! execution times, queueing collapse — are functions of event *ordering*
//! and *latency models*, which the DES reproduces exactly and repeatably.
//!
//! * [`SimTime`] / [`SimDuration`] — virtual-clock instants and intervals
//!   (seconds as `f64`, NaN-free by construction).
//! * [`EventQueue`] — a time-ordered priority queue with deterministic
//!   FIFO tie-breaking for simultaneous events.
//! * [`Simulator`] — the engine: schedule events, pop them in order, drive
//!   arbitrary handler logic.
//! * [`rng`] — reproducible named RNG streams derived from one master
//!   seed, so independent model components consume independent streams
//!   (changing one component's draws does not perturb the others).

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod time;

pub use engine::Simulator;
pub use event::EventQueue;
pub use rng::{splitmix64, RngStreams};
pub use time::{SimDuration, SimTime};
