//! Reproducible named RNG streams.
//!
//! Experiments draw randomness for several independent purposes (worker
//! profiles, arrival times, service times, matcher flips…). Deriving each
//! purpose's generator from `(master_seed, label)` with SplitMix64 means:
//!
//! * the whole experiment is reproducible from a single seed, and
//! * adding draws to one component never perturbs another component's
//!   stream (no accidental coupling through a shared generator).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Factory of independent, labelled RNG streams from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Creates a factory for the given master seed.
    pub fn new(master_seed: u64) -> Self {
        RngStreams { master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// A generator for the stream named by `label`. The same
    /// `(seed, label)` pair always produces the same stream.
    pub fn stream(&self, label: &str) -> SmallRng {
        let mut h = self.master_seed;
        for b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        SmallRng::seed_from_u64(splitmix64(h))
    }

    /// A generator for the `index`-th member of a family of streams
    /// (e.g. one stream per worker).
    pub fn stream_indexed(&self, label: &str, index: u64) -> SmallRng {
        let mut h = self.master_seed;
        for b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(*b));
        }
        // `index + 1` keeps index 0 in a different namespace from the
        // plain `stream(label)` generator (whose final mix uses `h` as-is).
        let salted = h ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SmallRng::seed_from_u64(splitmix64(salted))
    }
}

/// SplitMix64 mixing step — a tiny, well-distributed u64→u64 hash. The
/// canonical mixer every seed-derivation path in the repo goes through
/// (named streams here, per-shard seeds in the cluster, per-run seeds in
/// sweep manifests).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(rng: &mut SmallRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_label_same_stream() {
        let f = RngStreams::new(42);
        let a = draws(&mut f.stream("arrivals"), 16);
        let b = draws(&mut f.stream("arrivals"), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngStreams::new(42);
        let a = draws(&mut f.stream("arrivals"), 16);
        let b = draws(&mut f.stream("service"), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = draws(&mut RngStreams::new(1).stream("x"), 16);
        let b = draws(&mut RngStreams::new(2).stream("x"), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let f = RngStreams::new(7);
        let w0 = draws(&mut f.stream_indexed("worker", 0), 8);
        let w1 = draws(&mut f.stream_indexed("worker", 1), 8);
        let w0_again = draws(&mut f.stream_indexed("worker", 0), 8);
        assert_ne!(w0, w1);
        assert_eq!(w0, w0_again);
    }

    #[test]
    fn indexed_and_plain_streams_are_independent_namespaces() {
        let f = RngStreams::new(7);
        let plain = draws(&mut f.stream("worker"), 8);
        let indexed = draws(&mut f.stream_indexed("worker", 0), 8);
        assert_ne!(plain, indexed);
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // Flipping one input bit should change roughly half the output
        // bits on average. A loose sanity bound guards the constant.
        let mut total = 0u32;
        for i in 0..64 {
            total += (splitmix64(0) ^ splitmix64(1u64 << i)).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((20.0..44.0).contains(&avg), "avalanche average {avg}");
    }
}
