//! Virtual-clock instants and durations.
//!
//! Simulated time is a non-negative, finite `f64` number of seconds. The
//! newtypes keep instants and intervals from being mixed up and provide a
//! total order (NaN is rejected at construction), which the event queue
//! requires.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock (seconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

/// A non-negative span of simulated time in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant at `seconds ≥ 0`.
    ///
    /// # Panics
    /// Panics on negative, NaN or infinite input — simulation timestamps
    /// are always produced by adding durations to the clock, so an invalid
    /// value is a logic bug worth failing loudly on.
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid simulation timestamp: {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since the simulation epoch.
    #[inline]
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// The duration from `earlier` to `self`, saturating at zero when
    /// `earlier` is actually later (guards against float round-off at
    /// equal timestamps).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction guarantees no NaN, so partial_cmp cannot fail.
        self.0.partial_cmp(&other.0).expect("SimTime is NaN-free")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration of `seconds ≥ 0`.
    ///
    /// # Panics
    /// Panics on negative, NaN or infinite input (same rationale as
    /// [`SimTime::from_secs`]).
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "invalid simulation duration: {seconds}"
        );
        SimDuration(seconds)
    }

    /// Length in seconds.
    #[inline]
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// True for the zero duration.
    pub fn is_zero(&self) -> bool {
        // Exact comparison on purpose: only the literal zero duration
        // (the event-loop's "now" sentinel) should answer true.
        // analyze: allow(no-float-eq)
        self.0 == 0.0
    }
}

impl Eq for SimDuration {}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is NaN-free")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = SimTime::from_secs(5.5);
        assert_eq!(t.as_secs(), 5.5);
        let d = SimDuration::from_secs(2.0);
        assert_eq!(d.as_secs(), 2.0);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    #[should_panic(expected = "invalid simulation timestamp")]
    fn rejects_negative_time() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation timestamp")]
    fn rejects_nan_time() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid simulation duration")]
    fn rejects_infinite_duration() {
        let _ = SimDuration::from_secs(f64::INFINITY);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + SimDuration::from_secs(5.0);
        assert_eq!(t.as_secs(), 15.0);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_secs(3.0);
        assert_eq!(t2.as_secs(), 3.0);
        let d = t - t2;
        assert_eq!(d.as_secs(), 12.0);
        let sum = d + SimDuration::from_secs(1.0);
        assert_eq!(sum.as_secs(), 13.0);
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1.0);
        let late = SimTime::from_secs(2.0);
        assert_eq!(late.since(early).as_secs(), 1.0);
        assert_eq!(early.since(late).as_secs(), 0.0);
    }

    #[test]
    fn total_order() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        let da = SimDuration::from_secs(1.0);
        let db = SimDuration::from_secs(2.0);
        assert!(da < db);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_secs(1.5).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_secs(0.25).to_string(), "0.250s");
    }
}
