//! The discrete-event simulation engine.
//!
//! [`Simulator`] owns the virtual clock and the event queue. The driving
//! loop belongs to the caller:
//!
//! ```
//! use react_sim::{SimDuration, SimTime, Simulator};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_secs(1.0), Ev::Ping(0));
//! let mut pings = 0;
//! while let Some((now, ev)) = sim.next_event() {
//!     match ev {
//!         Ev::Ping(n) if n < 4 => {
//!             pings += 1;
//!             sim.schedule_at(now + SimDuration::from_secs(1.0), Ev::Ping(n + 1));
//!         }
//!         Ev::Ping(_) => pings += 1,
//!     }
//! }
//! assert_eq!(pings, 5);
//! assert_eq!(sim.now(), SimTime::from_secs(5.0));
//! ```
//!
//! Keeping the loop external (rather than a handler-trait callback) lets
//! the experiment harness own all its state mutably without interior
//! mutability or `Rc` cycles — the idiomatic Rust shape for a DES.

use crate::event::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulator with event payloads of type `E`.
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at zero and no pending events.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time (the timestamp of the last event popped).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    /// Panics when `at` is before the current clock — scheduling into the
    /// past would silently corrupt causality, so it fails loudly.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={}, requested={}",
            self.now,
            at
        );
        self.queue.push(at, event);
    }

    /// Schedules an event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pops the next event and advances the clock to it.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Pops the next event only if it occurs at or before `limit`;
    /// otherwise leaves the queue untouched and advances the clock to
    /// `limit` when the horizon is reached (so `now()` reflects the end
    /// of the simulated window).
    pub fn next_event_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek_time() {
            Some(t) if t <= limit => self.next_event(),
            _ => {
                if limit > self.now {
                    self.now = limit;
                }
                None
            }
        }
    }

    /// The timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Drops every pending event (used when a run is aborted early).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2.0), Ev::B);
        sim.schedule_at(SimTime::from_secs(1.0), Ev::A);
        let (t1, e1) = sim.next_event().unwrap();
        assert_eq!((t1, e1), (SimTime::from_secs(1.0), Ev::A));
        assert_eq!(sim.now(), SimTime::from_secs(1.0));
        let (t2, _) = sim.next_event().unwrap();
        assert_eq!(t2, SimTime::from_secs(2.0));
        assert!(sim.next_event().is_none());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_scheduling_into_past() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5.0), Ev::A);
        sim.next_event();
        sim.schedule_at(SimTime::from_secs(1.0), Ev::B);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(10.0), Ev::A);
        sim.next_event();
        sim.schedule_in(SimDuration::from_secs(5.0), Ev::B);
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(15.0));
    }

    #[test]
    fn next_event_until_respects_horizon() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1.0), Ev::A);
        sim.schedule_at(SimTime::from_secs(10.0), Ev::B);
        let horizon = SimTime::from_secs(5.0);
        assert!(sim.next_event_until(horizon).is_some());
        assert!(sim.next_event_until(horizon).is_none());
        // Clock parked at the horizon, event still pending.
        assert_eq!(sim.now(), horizon);
        assert_eq!(sim.pending(), 1);
        // A later horizon releases it.
        assert!(sim.next_event_until(SimTime::from_secs(20.0)).is_some());
    }

    #[test]
    fn horizon_does_not_rewind_clock() {
        let mut sim: Simulator<Ev> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(8.0), Ev::A);
        sim.next_event();
        assert!(sim.next_event_until(SimTime::from_secs(3.0)).is_none());
        assert_eq!(sim.now(), SimTime::from_secs(8.0));
    }

    #[test]
    fn self_scheduling_cascade() {
        let mut sim = Simulator::new();
        sim.schedule_in(SimDuration::from_secs(1.0), 1u32);
        let mut count = 0;
        while let Some((_, n)) = sim.next_event() {
            count += 1;
            if n < 10 {
                sim.schedule_in(SimDuration::from_secs(1.0), n + 1);
            }
        }
        assert_eq!(count, 10);
        assert_eq!(sim.now(), SimTime::from_secs(10.0));
    }

    #[test]
    fn clear_empties_queue() {
        let mut sim = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1.0), Ev::A);
        sim.clear();
        assert_eq!(sim.pending(), 0);
        assert!(sim.next_event().is_none());
    }
}
