//! Time-ordered event queue with deterministic tie-breaking.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Internal heap entry: `(time, seq)` so that events scheduled for the
/// same instant pop in scheduling (FIFO) order — this is what makes runs
/// bit-for-bit reproducible.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A min-heap of `(SimTime, E)` events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_preserved_across_interleaved_pushes() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.push(t, "first");
        q.push(SimTime::from_secs(0.5), "early");
        q.push(t, "second");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2.0), ());
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
