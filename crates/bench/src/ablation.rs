//! Ablations of the design choices called out in `DESIGN.md`.
//!
//! The paper motivates several mechanisms without isolating them; these
//! experiments isolate each one:
//!
//! 1. [`conflict_rule`] — REACT's g(x′)=0 replacement rule vs plain
//!    Metropolis rejection, across cycle budgets.
//! 2. [`adaptive_cycles`] — fixed `c` vs the suggested `c = κ·|E|`.
//! 3. [`edge_threshold`] — the Eq. (3) pruning bound, 0 → 0.8.
//! 4. [`reassign_threshold`] — the Eq. (2) recall bound, 0 → 0.5.
//! 5. [`weight_function`] — accuracy (Eq. 1) vs geographic distance vs a
//!    blend.
//! 6. [`batch_trigger`] — queue-threshold vs periodic batching.
//! 7. [`frontier`] — matching quality vs compute time across all five
//!    matchers on one contended graph.
//! 8. [`region_decomposition`] — the paper's overload fix: one global
//!    load over 1×1 / 2×2 / 3×3 region grids.
//! 9. [`latency_model`] — uniform-with-delay vs power-law crowds (the
//!    estimator's modelling assumption made true).
//! 10. [`model_kind`] — the paper's parametric power-law fit vs the
//!     distribution-free empirical CCDF vs KS-gated auto selection.
//! 11. [`replication`] — REACT's pre-execution worker selection vs
//!     CDAS/Karger-style k-fold redundancy (the related-work claim:
//!     choosing the right worker *before* execution avoids the cost of
//!     multiple assignments).

// analyze: allow-file(no-wall-clock) — benchmark harness: wall-clock
// timing IS the measurement here, and react-bench has no react-runtime
// dependency to borrow a Stopwatch from.

use crate::report::{num, OutputSink};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react_core::{BatchTrigger, LatencyModelKind, MatcherPolicy, WeightFunction};
use react_crowd::{RunReport, Scenario, ScenarioRunner};
use react_matching::{
    AuctionMatcher, BipartiteGraph, CostModel, GreedyMatcher, HopcroftKarpMatcher,
    HungarianMatcher, Matcher, MetropolisMatcher, ReactMatcher,
};
use react_metrics::table::pct;
use react_metrics::Table;
use std::time::Instant;

/// Shared ablation parameters.
#[derive(Debug, Clone)]
pub struct AblationParams {
    /// Worker count for the end-to-end ablations.
    pub n_workers: usize,
    /// Tasks per end-to-end run.
    pub total_tasks: usize,
    /// Side of the synthetic matching graphs.
    pub graph_side: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AblationParams {
    fn default() -> Self {
        AblationParams {
            n_workers: 400,
            total_tasks: 3000,
            graph_side: 300,
            seed: 42,
        }
    }
}

impl AblationParams {
    /// Reduced sizes for tests/CI.
    pub fn quick() -> Self {
        AblationParams {
            n_workers: 60,
            total_tasks: 300,
            graph_side: 40,
            seed: 42,
        }
    }
}

fn contended_graph(side: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    BipartiteGraph::full(side, side, |_, _| rng.gen::<f64>()).expect("valid weights")
}

fn scenario(params: &AblationParams, policy: MatcherPolicy, seed: u64) -> Scenario {
    let mut sc = Scenario::paper_fig5(policy, seed);
    sc.n_workers = params.n_workers;
    sc.total_tasks = params.total_tasks;
    sc.arrival_rate *= params.n_workers as f64 / 750.0;
    sc
}

/// Ablation 1 — the conflict-resolution rule: REACT vs Metropolis
/// matching weight at equal cycle budgets.
pub fn conflict_rule(params: &AblationParams, sink: &OutputSink) -> String {
    let graph = contended_graph(params.graph_side, params.seed);
    let mut table = Table::new(&["cycles", "react weight", "metropolis weight", "advantage"])
        .with_title("Ablation 1 — g(x')=0 replacement rule (REACT) vs plain rejection");
    let mut rows = vec![vec![
        "cycles".to_string(),
        "react_weight".to_string(),
        "metropolis_weight".to_string(),
    ]];
    for cycles in [250usize, 500, 1000, 2000, 4000] {
        let react: f64 = (0..5)
            .map(|i| {
                ReactMatcher::with_cycles(cycles)
                    .assign(&graph, &mut SmallRng::seed_from_u64(params.seed + i))
                    .total_weight
            })
            .sum::<f64>()
            / 5.0;
        let metro: f64 = (0..5)
            .map(|i| {
                MetropolisMatcher::with_cycles(cycles)
                    .assign(&graph, &mut SmallRng::seed_from_u64(params.seed + 100 + i))
                    .total_weight
            })
            .sum::<f64>()
            / 5.0;
        table.add_row(vec![
            cycles.to_string(),
            format!("{react:.2}"),
            format!("{metro:.2}"),
            format!("{:+.1}%", 100.0 * (react / metro - 1.0)),
        ]);
        rows.push(vec![cycles.to_string(), num(react), num(metro)]);
    }
    sink.write("ablation1_conflict_rule", &rows);
    table.render()
}

/// Ablation 2 — fixed cycle budgets vs the adaptive `c = κ·|E|` rule.
pub fn adaptive_cycles(params: &AblationParams, sink: &OutputSink) -> String {
    let cost_model = CostModel::paper_calibrated();
    let mut table = Table::new(&["variant", "graph side", "weight", "modeled s"])
        .with_title("Ablation 2 — fixed vs adaptive cycle count");
    let mut rows = vec![vec![
        "variant".to_string(),
        "side".to_string(),
        "weight".to_string(),
        "modeled_s".to_string(),
    ]];
    for side in [params.graph_side / 2, params.graph_side] {
        let graph = contended_graph(side, params.seed ^ side as u64);
        let mut variants: Vec<(String, ReactMatcher)> = vec![
            ("fixed-1000".to_string(), ReactMatcher::with_cycles(1000)),
            ("fixed-4000".to_string(), ReactMatcher::with_cycles(4000)),
        ];
        for kappa in [0.05, 0.2] {
            variants.push((
                format!("adaptive-k{kappa}"),
                ReactMatcher::adaptive(&graph, kappa),
            ));
        }
        for (label, matcher) in variants {
            let m = matcher.assign(&graph, &mut SmallRng::seed_from_u64(params.seed));
            let secs = cost_model.seconds_for("react", m.cost_units);
            table.add_row(vec![
                label.clone(),
                side.to_string(),
                format!("{:.2}", m.total_weight),
                format!("{secs:.2}"),
            ]);
            rows.push(vec![
                label,
                side.to_string(),
                num(m.total_weight),
                num(secs),
            ]);
        }
    }
    sink.write("ablation2_adaptive_cycles", &rows);
    table.render()
}

/// Ablation 3 — the Eq. (3) edge-instantiation threshold.
pub fn edge_threshold(params: &AblationParams, sink: &OutputSink) -> String {
    let mut table = Table::new(&["threshold", "met %", "positive %", "reassigned"])
        .with_title("Ablation 3 — Eq. (3) edge-pruning threshold");
    let mut rows = vec![vec![
        "threshold".to_string(),
        "met_ratio".to_string(),
        "positive_ratio".to_string(),
        "reassignments".to_string(),
    ]];
    for threshold in [0.0, 0.1, 0.3, 0.5, 0.8] {
        let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
        sc.config.deadline.edge_probability_threshold = threshold;
        let r = ScenarioRunner::new(sc).run();
        table.add_row(vec![
            format!("{threshold}"),
            pct(r.deadline_ratio()),
            pct(r.positive_ratio()),
            r.reassignments.to_string(),
        ]);
        rows.push(vec![
            num(threshold),
            num(r.deadline_ratio()),
            num(r.positive_ratio()),
            r.reassignments.to_string(),
        ]);
    }
    sink.write("ablation3_edge_threshold", &rows);
    table.render()
}

/// Ablation 4 — the Eq. (2) reassignment threshold (0 = never recall).
pub fn reassign_threshold(params: &AblationParams, sink: &OutputSink) -> Vec<(f64, RunReport)> {
    let mut out = Vec::new();
    for threshold in [0.0, 0.05, 0.1, 0.25, 0.5] {
        let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
        sc.config.deadline.reassign_threshold = threshold;
        out.push((threshold, ScenarioRunner::new(sc).run()));
    }
    let mut table = Table::new(&["threshold", "met %", "reassigned", "avg exec s"])
        .with_title("Ablation 4 — Eq. (2) reassignment threshold");
    let mut rows = vec![vec![
        "threshold".to_string(),
        "met_ratio".to_string(),
        "reassignments".to_string(),
        "avg_exec_s".to_string(),
    ]];
    for (threshold, r) in &out {
        table.add_row(vec![
            format!("{threshold}"),
            pct(r.deadline_ratio()),
            r.reassignments.to_string(),
            format!("{:.1}", r.avg_exec_time()),
        ]);
        rows.push(vec![
            num(*threshold),
            num(r.deadline_ratio()),
            r.reassignments.to_string(),
            num(r.avg_exec_time()),
        ]);
    }
    sink.write("ablation4_reassign_threshold", &rows);
    println!("{}", table.render());
    out
}

/// Ablation 5 — the weight function: accuracy vs distance vs blend.
pub fn weight_function(params: &AblationParams, sink: &OutputSink) -> String {
    let variants = [
        ("accuracy", WeightFunction::Accuracy),
        ("distance", WeightFunction::Distance { scale_km: 5.0 }),
        (
            "blend-0.5",
            WeightFunction::Blend {
                lambda: 0.5,
                scale_km: 5.0,
            },
        ),
    ];
    let mut table = Table::new(&["weight fn", "met %", "positive %"])
        .with_title("Ablation 5 — edge weight function");
    let mut rows = vec![vec![
        "weight_fn".to_string(),
        "met_ratio".to_string(),
        "positive_ratio".to_string(),
    ]];
    for (label, wf) in variants {
        let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
        sc.config.weight = wf;
        let r = ScenarioRunner::new(sc).run();
        table.add_row(vec![
            label.to_string(),
            pct(r.deadline_ratio()),
            pct(r.positive_ratio()),
        ]);
        rows.push(vec![
            label.to_string(),
            num(r.deadline_ratio()),
            num(r.positive_ratio()),
        ]);
    }
    sink.write("ablation5_weight_function", &rows);
    table.render()
}

/// Ablation 6 — batch trigger policy: queue threshold vs period.
pub fn batch_trigger(params: &AblationParams, sink: &OutputSink) -> String {
    let variants: [(&str, BatchTrigger); 4] = [
        (
            "threshold-1",
            BatchTrigger {
                min_unassigned: 1,
                period: None,
            },
        ),
        (
            "threshold-10",
            BatchTrigger {
                min_unassigned: 10,
                period: None,
            },
        ),
        (
            "threshold-50",
            BatchTrigger {
                min_unassigned: 50,
                period: None,
            },
        ),
        (
            "hybrid-10/2s",
            BatchTrigger {
                min_unassigned: 10,
                period: Some(2.0),
            },
        ),
    ];
    let mut table = Table::new(&["trigger", "met %", "batches", "match s"])
        .with_title("Ablation 6 — batch trigger policy");
    let mut rows = vec![vec![
        "trigger".to_string(),
        "met_ratio".to_string(),
        "batches".to_string(),
        "matching_s".to_string(),
    ]];
    for (label, trigger) in variants {
        let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
        sc.config.batch = trigger;
        let r = ScenarioRunner::new(sc).run();
        table.add_row(vec![
            label.to_string(),
            pct(r.deadline_ratio()),
            r.batches.to_string(),
            format!("{:.0}", r.total_matching_seconds),
        ]);
        rows.push(vec![
            label.to_string(),
            num(r.deadline_ratio()),
            r.batches.to_string(),
            num(r.total_matching_seconds),
        ]);
    }
    sink.write("ablation6_batch_trigger", &rows);
    table.render()
}

/// Ablation 11 — selection vs redundancy. The paper's related-work
/// section argues REACT *"manages to define the most suitable workers
/// before the execution of the tasks and thus to reduce the cost of the
/// multiple assignments"*. This experiment quantifies it: Traditional
/// with k=1/k=3 replicas vs REACT with k=1, comparing per-logical-task
/// success (any replica positive) against payments made.
pub fn replication(params: &AblationParams, sink: &OutputSink) -> String {
    let variants: [(&str, MatcherPolicy, usize); 4] = [
        ("traditional k=1", MatcherPolicy::Traditional, 1),
        ("traditional k=3", MatcherPolicy::Traditional, 3),
        ("react k=1", MatcherPolicy::React { cycles: 1000 }, 1),
        ("react k=3", MatcherPolicy::React { cycles: 1000 }, 3),
    ];
    let mut table = Table::new(&[
        "scheme",
        "group success %",
        "majority %",
        "payments",
        "payments/group",
    ])
    .with_title("Ablation 11 — worker selection (REACT) vs k-fold redundancy");
    let mut rows = vec![vec![
        "scheme".to_string(),
        "any_positive_ratio".to_string(),
        "majority_ratio".to_string(),
        "payments".to_string(),
    ]];
    for (label, policy, k) in variants {
        let mut sc = scenario(params, policy, params.seed);
        // Keep the *logical* workload constant; replicas multiply load,
        // so give the crowd headroom for a fair accuracy comparison.
        sc.total_tasks = params.total_tasks / 3;
        sc.arrival_rate /= 3.0;
        sc.replication = k;
        let r = ScenarioRunner::new(sc).run();
        let any = r.groups_any_positive as f64 / r.groups.max(1) as f64;
        let maj = r.groups_majority_positive as f64 / r.groups.max(1) as f64;
        table.add_row(vec![
            label.to_string(),
            pct(any),
            pct(maj),
            r.payments().to_string(),
            format!("{:.2}", r.payments() as f64 / r.groups.max(1) as f64),
        ]);
        rows.push(vec![
            label.to_string(),
            num(any),
            num(maj),
            r.payments().to_string(),
        ]);
    }
    sink.write("ablation11_replication", &rows);
    table.render()
}

/// Ablation 10 — which latency distribution Eq. (2)/(3) evaluates: the
/// paper's power-law fit, the empirical CCDF, or KS-gated auto
/// selection. The paper's own synthetic crowd is *bimodal* (uniform
/// service + delay spike), i.e. mis-specified for a power law — the
/// empirical model is the robustness check.
pub fn model_kind(params: &AblationParams, sink: &OutputSink) -> String {
    let kinds = [
        ("power-law", LatencyModelKind::PowerLaw),
        ("empirical", LatencyModelKind::Empirical),
        ("auto-ks0.1", LatencyModelKind::Auto { ks_threshold: 0.1 }),
    ];
    let mut table = Table::new(&["model", "met %", "positive %", "reassigned"])
        .with_title("Ablation 10 — Eq. (2)/(3) distribution: parametric vs empirical");
    let mut rows = vec![vec![
        "model".to_string(),
        "met_ratio".to_string(),
        "positive_ratio".to_string(),
        "reassignments".to_string(),
    ]];
    for (label, kind) in kinds {
        let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
        sc.config.latency_model = kind;
        let r = ScenarioRunner::new(sc).run();
        table.add_row(vec![
            label.to_string(),
            pct(r.deadline_ratio()),
            pct(r.positive_ratio()),
            r.reassignments.to_string(),
        ]);
        rows.push(vec![
            label.to_string(),
            num(r.deadline_ratio()),
            num(r.positive_ratio()),
            r.reassignments.to_string(),
        ]);
    }
    sink.write("ablation10_model_kind", &rows);
    table.render()
}

/// Ablation 9 — latency-model sensitivity. The paper's Eq. (2)/(3)
/// estimator *assumes* power-law execution times (citing Ipeirotis) but
/// its evaluation generates uniform-with-delay times. This experiment
/// runs the same scenario under both crowds: when the crowd really is
/// power-law the estimator is well-specified and REACT's advantage over
/// the no-reassignment baseline should persist or grow.
pub fn latency_model(params: &AblationParams, sink: &OutputSink) -> String {
    use react_crowd::BehaviorParams;
    let mut table = Table::new(&[
        "crowd latency",
        "policy",
        "met %",
        "reassigned",
        "avg exec s",
    ])
    .with_title("Ablation 9 — latency-model sensitivity (uniform vs power-law crowd)");
    let mut rows = vec![vec![
        "latency".to_string(),
        "policy".to_string(),
        "met_ratio".to_string(),
        "reassignments".to_string(),
        "avg_exec_s".to_string(),
    ]];
    for (label, behavior) in [
        ("paper-uniform", BehaviorParams::default()),
        ("power-law", BehaviorParams::power_law_defaults()),
    ] {
        for policy in [
            MatcherPolicy::React { cycles: 1000 },
            MatcherPolicy::Traditional,
        ] {
            let mut sc = scenario(params, policy, params.seed);
            sc.behavior = behavior;
            let r = ScenarioRunner::new(sc).run();
            table.add_row(vec![
                label.to_string(),
                r.matcher_name.to_string(),
                pct(r.deadline_ratio()),
                r.reassignments.to_string(),
                format!("{:.1}", r.avg_exec_time()),
            ]);
            rows.push(vec![
                label.to_string(),
                r.matcher_name.to_string(),
                num(r.deadline_ratio()),
                r.reassignments.to_string(),
                num(r.avg_exec_time()),
            ]);
        }
    }
    sink.write("ablation9_latency_model", &rows);
    table.render()
}

/// Ablation 8 — region decomposition under load (the paper's proposed
/// overload fix): the same global workload over 1×1, 2×2 and 3×3 grids.
pub fn region_decomposition(params: &AblationParams, sink: &OutputSink) -> String {
    use react_crowd::{MultiRegionRunner, MultiRegionScenario};
    let mut table = Table::new(&["grid", "servers", "met %", "max server match s"])
        .with_title("Ablation 8 — region decomposition under one global load");
    let mut rows = vec![vec![
        "grid".to_string(),
        "servers".to_string(),
        "met_ratio".to_string(),
        "max_matching_s".to_string(),
    ]];
    for (r, c) in [(1u32, 1u32), (2, 2), (3, 3)] {
        let global = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
        let report = MultiRegionRunner::new(MultiRegionScenario {
            global,
            rows: r,
            cols: c,
        })
        .run();
        table.add_row(vec![
            format!("{r}x{c}"),
            (r * c).to_string(),
            pct(report.deadline_ratio()),
            format!("{:.1}", report.max_matching_seconds()),
        ]);
        rows.push(vec![
            format!("{r}x{c}"),
            (r * c).to_string(),
            num(report.deadline_ratio()),
            num(report.max_matching_seconds()),
        ]);
    }
    sink.write("ablation8_region_decomposition", &rows);
    table.render()
}

/// Ablation 7 — the quality-vs-time frontier across all matchers.
pub fn frontier(params: &AblationParams, sink: &OutputSink) -> String {
    let graph = contended_graph(params.graph_side, params.seed ^ 0xf00d);
    let cost_model = CostModel::paper_calibrated();
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(HungarianMatcher),
        Box::new(AuctionMatcher::default()),
        Box::new(GreedyMatcher),
        Box::new(HopcroftKarpMatcher),
        Box::new(ReactMatcher::with_cycles(1000)),
        Box::new(MetropolisMatcher::with_cycles(1000)),
    ];
    let mut table = Table::new(&["matcher", "weight", "optimality", "wall ms", "modeled s"])
        .with_title("Ablation 7 — quality vs time frontier");
    let mut rows = vec![vec![
        "matcher".to_string(),
        "weight".to_string(),
        "wall_ms".to_string(),
        "modeled_s".to_string(),
    ]];
    let mut optimal = None;
    for matcher in &matchers {
        let t0 = Instant::now();
        let m = matcher.assign(&graph, &mut SmallRng::seed_from_u64(params.seed));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if matcher.name() == "hungarian" {
            optimal = Some(m.total_weight);
        }
        let opt_ratio = optimal.map_or(1.0, |o| m.total_weight / o);
        table.add_row(vec![
            matcher.name().to_string(),
            format!("{:.2}", m.total_weight),
            pct(opt_ratio),
            format!("{wall_ms:.2}"),
            format!(
                "{:.2}",
                cost_model.seconds_for(matcher.name(), m.cost_units)
            ),
        ]);
        rows.push(vec![
            matcher.name().to_string(),
            num(m.total_weight),
            num(wall_ms),
            num(cost_model.seconds_for(matcher.name(), m.cost_units)),
        ]);
    }
    sink.write("ablation7_frontier", &rows);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> OutputSink {
        OutputSink::discard()
    }

    #[test]
    fn conflict_rule_shows_react_advantage() {
        let text = conflict_rule(&AblationParams::quick(), &sink());
        assert!(text.contains("react weight"));
        // Every advantage cell should be positive (REACT ≥ Metropolis).
        let plus = text.matches('+').count();
        assert!(plus >= 4, "expected mostly positive advantages:\n{text}");
    }

    #[test]
    fn adaptive_cycles_renders() {
        let text = adaptive_cycles(&AblationParams::quick(), &sink());
        assert!(text.contains("adaptive-k0.2"));
        assert!(text.contains("fixed-1000"));
    }

    #[test]
    fn edge_threshold_sweep_runs() {
        let text = edge_threshold(&AblationParams::quick(), &sink());
        assert!(text.contains("0.8"));
    }

    #[test]
    fn reassign_threshold_zero_means_no_recalls() {
        let out = reassign_threshold(&AblationParams::quick(), &sink());
        let (t0, r0) = &out[0];
        assert_eq!(*t0, 0.0);
        assert_eq!(r0.reassignments, 0, "threshold 0 disables Eq. (2) recalls");
        // Higher thresholds recall at least as often.
        let (_, r_mid) = &out[2];
        let (_, r_hi) = &out[4];
        assert!(r_hi.reassignments >= r_mid.reassignments);
    }

    #[test]
    fn weight_function_and_batch_trigger_render() {
        let p = AblationParams::quick();
        assert!(weight_function(&p, &sink()).contains("accuracy"));
        assert!(batch_trigger(&p, &sink()).contains("threshold-10"));
    }

    #[test]
    fn region_decomposition_renders_and_splits_load() {
        let text = region_decomposition(&AblationParams::quick(), &sink());
        assert!(text.contains("1x1"));
        assert!(text.contains("3x3"));
    }

    #[test]
    fn latency_model_runs_both_crowds() {
        let text = latency_model(&AblationParams::quick(), &sink());
        assert!(text.contains("paper-uniform"));
        assert!(text.contains("power-law"));
        assert!(text.contains("react"));
        assert!(text.contains("traditional"));
    }

    #[test]
    fn model_kind_runs_all_three() {
        let text = model_kind(&AblationParams::quick(), &sink());
        assert!(text.contains("power-law"));
        assert!(text.contains("empirical"));
        assert!(text.contains("auto-ks0.1"));
    }

    #[test]
    fn replication_compares_schemes() {
        let text = replication(&AblationParams::quick(), &sink());
        assert!(text.contains("traditional k=3"));
        assert!(text.contains("react k=1"));
    }

    #[test]
    fn frontier_hungarian_tops_weight() {
        let text = frontier(&AblationParams::quick(), &sink());
        assert!(text.contains("hungarian"));
        assert!(
            text.contains("100.0%"),
            "hungarian is its own optimum:\n{text}"
        );
    }
}
