//! Ablations of the design choices called out in `DESIGN.md`.
//!
//! The paper motivates several mechanisms without isolating them; these
//! experiments isolate each one:
//!
//! 1. [`conflict_rule`] — REACT's g(x′)=0 replacement rule vs plain
//!    Metropolis rejection, across cycle budgets.
//! 2. [`adaptive_cycles`] — fixed `c` vs the suggested `c = κ·|E|`.
//! 3. [`edge_threshold`] — the Eq. (3) pruning bound, 0 → 0.8.
//! 4. [`reassign_threshold`] — the Eq. (2) recall bound, 0 → 0.5.
//! 5. [`weight_function`] — accuracy (Eq. 1) vs geographic distance vs a
//!    blend.
//! 6. [`batch_trigger`] — queue-threshold vs periodic batching.
//! 7. [`frontier`] — matching quality vs compute time across all five
//!    matchers on one contended graph.
//! 8. [`region_decomposition`] — the paper's overload fix: one global
//!    load over 1×1 / 2×2 / 3×3 region grids.
//! 9. [`latency_model`] — uniform-with-delay vs power-law crowds (the
//!    estimator's modelling assumption made true).
//! 10. [`model_kind`] — the paper's parametric power-law fit vs the
//!     distribution-free empirical CCDF vs KS-gated auto selection.
//! 11. [`replication`] — REACT's pre-execution worker selection vs
//!     CDAS/Karger-style k-fold redundancy (the related-work claim:
//!     choosing the right worker *before* execution avoids the cost of
//!     multiple assignments).
//!
//! Every ablation is a pure `*_rows` function returning [`KpiRow`]s plus
//! a thin rendering wrapper; [`SUITE`] lists all eleven so drivers can
//! iterate them without duplicating titles or CSV names.

// analyze: allow-file(no-wall-clock) — benchmark harness: wall-clock
// timing IS the measurement here, and react-bench has no react-runtime
// dependency to borrow a Stopwatch from.

use crate::report::OutputSink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react_core::{BatchTrigger, LatencyModelKind, MatcherPolicy, WeightFunction};
use react_crowd::{Scenario, ScenarioRunner};
use react_matching::{
    AuctionMatcher, BipartiteGraph, CostModel, GreedyMatcher, HopcroftKarpMatcher,
    HungarianMatcher, Matcher, MetropolisMatcher, ReactMatcher,
};
use react_metrics::{KpiReport, KpiRow};
use std::time::Instant;

/// Shared ablation parameters.
#[derive(Debug, Clone)]
pub struct AblationParams {
    /// Worker count for the end-to-end ablations.
    pub n_workers: usize,
    /// Tasks per end-to-end run.
    pub total_tasks: usize,
    /// Side of the synthetic matching graphs.
    pub graph_side: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AblationParams {
    fn default() -> Self {
        AblationParams {
            n_workers: 400,
            total_tasks: 3000,
            graph_side: 300,
            seed: 42,
        }
    }
}

impl AblationParams {
    /// Reduced sizes for tests/CI.
    pub fn quick() -> Self {
        AblationParams {
            n_workers: 60,
            total_tasks: 300,
            graph_side: 40,
            seed: 42,
        }
    }
}

/// One [`SUITE`] entry: short name, table title, CSV artifact name and
/// the row-producing function.
pub type AblationEntry = (
    &'static str,
    &'static str,
    &'static str,
    fn(&AblationParams) -> Vec<KpiRow>,
);

/// All eleven ablations in presentation order.
pub const SUITE: &[AblationEntry] = &[
    (
        "conflict_rule",
        "Ablation 1 — g(x')=0 replacement rule (REACT) vs plain rejection",
        "ablation1_conflict_rule",
        conflict_rule_rows,
    ),
    (
        "adaptive_cycles",
        "Ablation 2 — fixed vs adaptive cycle count",
        "ablation2_adaptive_cycles",
        adaptive_cycles_rows,
    ),
    (
        "edge_threshold",
        "Ablation 3 — Eq. (3) edge-pruning threshold",
        "ablation3_edge_threshold",
        edge_threshold_rows,
    ),
    (
        "reassign_threshold",
        "Ablation 4 — Eq. (2) reassignment threshold",
        "ablation4_reassign_threshold",
        reassign_threshold_rows,
    ),
    (
        "weight_function",
        "Ablation 5 — edge weight function",
        "ablation5_weight_function",
        weight_function_rows,
    ),
    (
        "batch_trigger",
        "Ablation 6 — batch trigger policy",
        "ablation6_batch_trigger",
        batch_trigger_rows,
    ),
    (
        "frontier",
        "Ablation 7 — quality vs time frontier",
        "ablation7_frontier",
        frontier_rows,
    ),
    (
        "region_decomposition",
        "Ablation 8 — region decomposition under one global load",
        "ablation8_region_decomposition",
        region_decomposition_rows,
    ),
    (
        "latency_model",
        "Ablation 9 — latency-model sensitivity (uniform vs power-law crowd)",
        "ablation9_latency_model",
        latency_model_rows,
    ),
    (
        "model_kind",
        "Ablation 10 — Eq. (2)/(3) distribution: parametric vs empirical",
        "ablation10_model_kind",
        model_kind_rows,
    ),
    (
        "replication",
        "Ablation 11 — worker selection (REACT) vs k-fold redundancy",
        "ablation11_replication",
        replication_rows,
    ),
];

/// Renders one ablation's table and archives its CSV.
fn emit(title: &str, csv_name: &str, rows: Vec<KpiRow>, sink: &OutputSink) -> String {
    let report = KpiReport::from_rows(rows);
    sink.write(csv_name, &report.to_csv_rows(None));
    report.table(title, None).render()
}

fn contended_graph(side: usize, seed: u64) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    BipartiteGraph::full(side, side, |_, _| rng.gen::<f64>()).expect("valid weights")
}

fn scenario(params: &AblationParams, policy: MatcherPolicy, seed: u64) -> Scenario {
    let mut sc = Scenario::paper_fig5(policy, seed);
    sc.n_workers = params.n_workers;
    sc.total_tasks = params.total_tasks;
    sc.arrival_rate *= params.n_workers as f64 / 750.0;
    sc
}

/// Ablation 1 — the conflict-resolution rule: REACT vs Metropolis
/// matching weight at equal cycle budgets.
pub fn conflict_rule_rows(params: &AblationParams) -> Vec<KpiRow> {
    let graph = contended_graph(params.graph_side, params.seed);
    [250usize, 500, 1000, 2000, 4000]
        .into_iter()
        .map(|cycles| {
            let react: f64 = (0..5)
                .map(|i| {
                    ReactMatcher::with_cycles(cycles)
                        .assign(&graph, &mut SmallRng::seed_from_u64(params.seed + i))
                        .total_weight
                })
                .sum::<f64>()
                / 5.0;
            let metro: f64 = (0..5)
                .map(|i| {
                    MetropolisMatcher::with_cycles(cycles)
                        .assign(&graph, &mut SmallRng::seed_from_u64(params.seed + 100 + i))
                        .total_weight
                })
                .sum::<f64>()
                / 5.0;
            KpiRow::new()
                .int("cycles", cycles as i64)
                .float("react_weight", react)
                .float("metropolis_weight", metro)
                .label(
                    "advantage",
                    format!("{:+.1}%", 100.0 * (react / metro - 1.0)),
                )
        })
        .collect()
}

/// See [`conflict_rule_rows`].
pub fn conflict_rule(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[0].1, SUITE[0].2, conflict_rule_rows(params), sink)
}

/// Ablation 2 — fixed cycle budgets vs the adaptive `c = κ·|E|` rule.
pub fn adaptive_cycles_rows(params: &AblationParams) -> Vec<KpiRow> {
    let cost_model = CostModel::paper_calibrated();
    let mut rows = Vec::new();
    for side in [params.graph_side / 2, params.graph_side] {
        let graph = contended_graph(side, params.seed ^ side as u64);
        let mut variants: Vec<(String, ReactMatcher)> = vec![
            ("fixed-1000".to_string(), ReactMatcher::with_cycles(1000)),
            ("fixed-4000".to_string(), ReactMatcher::with_cycles(4000)),
        ];
        for kappa in [0.05, 0.2] {
            variants.push((
                format!("adaptive-k{kappa}"),
                ReactMatcher::adaptive(&graph, kappa),
            ));
        }
        for (label, matcher) in variants {
            let m = matcher.assign(&graph, &mut SmallRng::seed_from_u64(params.seed));
            rows.push(
                KpiRow::new()
                    .label("variant", &label)
                    .int("side", side as i64)
                    .float("weight", m.total_weight)
                    .float("modeled_s", cost_model.seconds_for("react", m.cost_units)),
            );
        }
    }
    rows
}

/// See [`adaptive_cycles_rows`].
pub fn adaptive_cycles(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[1].1, SUITE[1].2, adaptive_cycles_rows(params), sink)
}

/// Ablation 3 — the Eq. (3) edge-instantiation threshold.
pub fn edge_threshold_rows(params: &AblationParams) -> Vec<KpiRow> {
    [0.0, 0.1, 0.3, 0.5, 0.8]
        .into_iter()
        .map(|threshold| {
            let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
            sc.config.deadline.edge_probability_threshold = threshold;
            let r = ScenarioRunner::new(sc).run();
            KpiRow::new()
                .float("threshold", threshold)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .pct("kpi.positive_rate", r.positive_ratio())
                .int("tasks.reassigned", r.reassignments as i64)
        })
        .collect()
}

/// See [`edge_threshold_rows`].
pub fn edge_threshold(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[2].1, SUITE[2].2, edge_threshold_rows(params), sink)
}

/// Ablation 4 — the Eq. (2) reassignment threshold (0 = never recall).
pub fn reassign_threshold_rows(params: &AblationParams) -> Vec<KpiRow> {
    [0.0, 0.05, 0.1, 0.25, 0.5]
        .into_iter()
        .map(|threshold| {
            let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
            sc.config.deadline.reassign_threshold = threshold;
            let r = ScenarioRunner::new(sc).run();
            KpiRow::new()
                .float("threshold", threshold)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .int("tasks.reassigned", r.reassignments as i64)
                .float("kpi.avg_exec_s", r.avg_exec_time())
        })
        .collect()
}

/// See [`reassign_threshold_rows`].
pub fn reassign_threshold(params: &AblationParams, sink: &OutputSink) -> String {
    emit(
        SUITE[3].1,
        SUITE[3].2,
        reassign_threshold_rows(params),
        sink,
    )
}

/// Ablation 5 — the weight function: accuracy vs distance vs blend.
pub fn weight_function_rows(params: &AblationParams) -> Vec<KpiRow> {
    let variants = [
        ("accuracy", WeightFunction::Accuracy),
        ("distance", WeightFunction::Distance { scale_km: 5.0 }),
        (
            "blend-0.5",
            WeightFunction::Blend {
                lambda: 0.5,
                scale_km: 5.0,
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, wf)| {
            let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
            sc.config.weight = wf;
            let r = ScenarioRunner::new(sc).run();
            KpiRow::new()
                .label("weight_fn", label)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .pct("kpi.positive_rate", r.positive_ratio())
        })
        .collect()
}

/// See [`weight_function_rows`].
pub fn weight_function(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[4].1, SUITE[4].2, weight_function_rows(params), sink)
}

/// Ablation 6 — batch trigger policy: queue threshold vs period.
pub fn batch_trigger_rows(params: &AblationParams) -> Vec<KpiRow> {
    let variants: [(&str, BatchTrigger); 4] = [
        (
            "threshold-1",
            BatchTrigger {
                min_unassigned: 1,
                period: None,
            },
        ),
        (
            "threshold-10",
            BatchTrigger {
                min_unassigned: 10,
                period: None,
            },
        ),
        (
            "threshold-50",
            BatchTrigger {
                min_unassigned: 50,
                period: None,
            },
        ),
        (
            "hybrid-10/2s",
            BatchTrigger {
                min_unassigned: 10,
                period: Some(2.0),
            },
        ),
    ];
    variants
        .into_iter()
        .map(|(label, trigger)| {
            let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
            sc.config.batch = trigger;
            let r = ScenarioRunner::new(sc).run();
            KpiRow::new()
                .label("trigger", label)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .int("batches.run", r.batches as i64)
                .float("matching.seconds", r.total_matching_seconds)
        })
        .collect()
}

/// See [`batch_trigger_rows`].
pub fn batch_trigger(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[5].1, SUITE[5].2, batch_trigger_rows(params), sink)
}

/// Ablation 7 — the quality-vs-time frontier across all matchers.
pub fn frontier_rows(params: &AblationParams) -> Vec<KpiRow> {
    let graph = contended_graph(params.graph_side, params.seed ^ 0xf00d);
    let cost_model = CostModel::paper_calibrated();
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(HungarianMatcher),
        Box::new(AuctionMatcher::default()),
        Box::new(GreedyMatcher),
        Box::new(HopcroftKarpMatcher),
        Box::new(ReactMatcher::with_cycles(1000)),
        Box::new(MetropolisMatcher::with_cycles(1000)),
    ];
    let mut optimal = None;
    matchers
        .iter()
        .map(|matcher| {
            let t0 = Instant::now();
            let m = matcher.assign(&graph, &mut SmallRng::seed_from_u64(params.seed));
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            if matcher.name() == "hungarian" {
                optimal = Some(m.total_weight);
            }
            let opt_ratio = optimal.map_or(1.0, |o| m.total_weight / o);
            KpiRow::new()
                .label("matcher", matcher.name())
                .float("weight", m.total_weight)
                .pct("optimality", opt_ratio)
                .float("wall_ms", wall_ms)
                .float(
                    "modeled_s",
                    cost_model.seconds_for(matcher.name(), m.cost_units),
                )
        })
        .collect()
}

/// See [`frontier_rows`].
pub fn frontier(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[6].1, SUITE[6].2, frontier_rows(params), sink)
}

/// Ablation 8 — region decomposition under load (the paper's proposed
/// overload fix): the same global workload over 1×1, 2×2 and 3×3 grids.
pub fn region_decomposition_rows(params: &AblationParams) -> Vec<KpiRow> {
    use react_crowd::{MultiRegionRunner, MultiRegionScenario};
    [(1u32, 1u32), (2, 2), (3, 3)]
        .into_iter()
        .map(|(r, c)| {
            let global = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
            let report = MultiRegionRunner::new(MultiRegionScenario {
                global,
                rows: r,
                cols: c,
            })
            .run();
            KpiRow::new()
                .label("grid", format!("{r}x{c}"))
                .int("servers", (r * c) as i64)
                .pct("kpi.deadline_hit_rate", report.deadline_ratio())
                .float("kpi.max_matching_s", report.max_matching_seconds())
        })
        .collect()
}

/// See [`region_decomposition_rows`].
pub fn region_decomposition(params: &AblationParams, sink: &OutputSink) -> String {
    emit(
        SUITE[7].1,
        SUITE[7].2,
        region_decomposition_rows(params),
        sink,
    )
}

/// Ablation 9 — latency-model sensitivity. The paper's Eq. (2)/(3)
/// estimator *assumes* power-law execution times (citing Ipeirotis) but
/// its evaluation generates uniform-with-delay times. This experiment
/// runs the same scenario under both crowds: when the crowd really is
/// power-law the estimator is well-specified and REACT's advantage over
/// the no-reassignment baseline should persist or grow.
pub fn latency_model_rows(params: &AblationParams) -> Vec<KpiRow> {
    use react_crowd::BehaviorParams;
    let mut rows = Vec::new();
    for (label, behavior) in [
        ("paper-uniform", BehaviorParams::default()),
        ("power-law", BehaviorParams::power_law_defaults()),
    ] {
        for policy in [
            MatcherPolicy::React { cycles: 1000 },
            MatcherPolicy::Traditional,
        ] {
            let mut sc = scenario(params, policy, params.seed);
            sc.behavior = behavior;
            let r = ScenarioRunner::new(sc).run();
            rows.push(
                KpiRow::new()
                    .label("latency", label)
                    .label("policy", r.matcher_name)
                    .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                    .int("tasks.reassigned", r.reassignments as i64)
                    .float("kpi.avg_exec_s", r.avg_exec_time()),
            );
        }
    }
    rows
}

/// See [`latency_model_rows`].
pub fn latency_model(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[8].1, SUITE[8].2, latency_model_rows(params), sink)
}

/// Ablation 10 — which latency distribution Eq. (2)/(3) evaluates: the
/// paper's power-law fit, the empirical CCDF, or KS-gated auto
/// selection. The paper's own synthetic crowd is *bimodal* (uniform
/// service + delay spike), i.e. mis-specified for a power law — the
/// empirical model is the robustness check.
pub fn model_kind_rows(params: &AblationParams) -> Vec<KpiRow> {
    let kinds = [
        ("power-law", LatencyModelKind::PowerLaw),
        ("empirical", LatencyModelKind::Empirical),
        ("auto-ks0.1", LatencyModelKind::Auto { ks_threshold: 0.1 }),
    ];
    kinds
        .into_iter()
        .map(|(label, kind)| {
            let mut sc = scenario(params, MatcherPolicy::React { cycles: 1000 }, params.seed);
            sc.config.latency_model = kind;
            let r = ScenarioRunner::new(sc).run();
            KpiRow::new()
                .label("model", label)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .pct("kpi.positive_rate", r.positive_ratio())
                .int("tasks.reassigned", r.reassignments as i64)
        })
        .collect()
}

/// See [`model_kind_rows`].
pub fn model_kind(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[9].1, SUITE[9].2, model_kind_rows(params), sink)
}

/// Ablation 11 — selection vs redundancy. The paper's related-work
/// section argues REACT *"manages to define the most suitable workers
/// before the execution of the tasks and thus to reduce the cost of the
/// multiple assignments"*. This experiment quantifies it: Traditional
/// with k=1/k=3 replicas vs REACT with k=1, comparing per-logical-task
/// success (any replica positive) against payments made.
pub fn replication_rows(params: &AblationParams) -> Vec<KpiRow> {
    let variants: [(&str, MatcherPolicy, usize); 4] = [
        ("traditional k=1", MatcherPolicy::Traditional, 1),
        ("traditional k=3", MatcherPolicy::Traditional, 3),
        ("react k=1", MatcherPolicy::React { cycles: 1000 }, 1),
        ("react k=3", MatcherPolicy::React { cycles: 1000 }, 3),
    ];
    variants
        .into_iter()
        .map(|(label, policy, k)| {
            let mut sc = scenario(params, policy, params.seed);
            // Keep the *logical* workload constant; replicas multiply load,
            // so give the crowd headroom for a fair accuracy comparison.
            sc.total_tasks = params.total_tasks / 3;
            sc.arrival_rate /= 3.0;
            sc.replication = k;
            let r = ScenarioRunner::new(sc).run();
            let groups = r.groups.max(1) as f64;
            KpiRow::new()
                .label("scheme", label)
                .pct(
                    "kpi.any_positive_rate",
                    r.groups_any_positive as f64 / groups,
                )
                .pct(
                    "kpi.majority_positive_rate",
                    r.groups_majority_positive as f64 / groups,
                )
                .int("payments", r.payments() as i64)
                .float("kpi.payments_per_group", r.payments() as f64 / groups)
        })
        .collect()
}

/// See [`replication_rows`].
pub fn replication(params: &AblationParams, sink: &OutputSink) -> String {
    emit(SUITE[10].1, SUITE[10].2, replication_rows(params), sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> OutputSink {
        OutputSink::discard()
    }

    #[test]
    fn suite_lists_all_eleven_uniquely() {
        assert_eq!(SUITE.len(), 11);
        let mut names: Vec<&str> = SUITE.iter().map(|e| e.0).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "ablation names must be unique");
        for (_, title, csv, _) in SUITE {
            assert!(title.starts_with("Ablation "), "bad title {title}");
            assert!(csv.starts_with("ablation"), "bad csv name {csv}");
        }
    }

    #[test]
    fn conflict_rule_shows_react_advantage() {
        let text = conflict_rule(&AblationParams::quick(), &sink());
        assert!(text.contains("react_weight"));
        // Every advantage cell should be positive (REACT ≥ Metropolis).
        let plus = text.matches('+').count();
        assert!(plus >= 4, "expected mostly positive advantages:\n{text}");
    }

    #[test]
    fn adaptive_cycles_renders() {
        let text = adaptive_cycles(&AblationParams::quick(), &sink());
        assert!(text.contains("adaptive-k0.2"));
        assert!(text.contains("fixed-1000"));
    }

    #[test]
    fn edge_threshold_sweep_runs() {
        let text = edge_threshold(&AblationParams::quick(), &sink());
        assert!(text.contains("0.8"));
    }

    #[test]
    fn reassign_threshold_zero_means_no_recalls() {
        let rows = reassign_threshold_rows(&AblationParams::quick());
        let reassigned = |i: usize| {
            rows[i]
                .get("tasks.reassigned")
                .and_then(|v| v.as_f64())
                .unwrap()
        };
        assert_eq!(rows[0].get("threshold").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(reassigned(0), 0.0, "threshold 0 disables Eq. (2) recalls");
        // Higher thresholds recall at least as often.
        assert!(reassigned(4) >= reassigned(2));
    }

    #[test]
    fn weight_function_and_batch_trigger_render() {
        let p = AblationParams::quick();
        assert!(weight_function(&p, &sink()).contains("accuracy"));
        assert!(batch_trigger(&p, &sink()).contains("threshold-10"));
    }

    #[test]
    fn region_decomposition_renders_and_splits_load() {
        let text = region_decomposition(&AblationParams::quick(), &sink());
        assert!(text.contains("1x1"));
        assert!(text.contains("3x3"));
    }

    #[test]
    fn latency_model_runs_both_crowds() {
        let text = latency_model(&AblationParams::quick(), &sink());
        assert!(text.contains("paper-uniform"));
        assert!(text.contains("power-law"));
        assert!(text.contains("react"));
        assert!(text.contains("traditional"));
    }

    #[test]
    fn model_kind_runs_all_three() {
        let text = model_kind(&AblationParams::quick(), &sink());
        assert!(text.contains("power-law"));
        assert!(text.contains("empirical"));
        assert!(text.contains("auto-ks0.1"));
    }

    #[test]
    fn replication_compares_schemes() {
        let text = replication(&AblationParams::quick(), &sink());
        assert!(text.contains("traditional k=3"));
        assert!(text.contains("react k=1"));
    }

    #[test]
    fn frontier_hungarian_tops_weight() {
        let text = frontier(&AblationParams::quick(), &sink());
        assert!(text.contains("hungarian"));
        assert!(
            text.contains("100.0%"),
            "hungarian is its own optimum:\n{text}"
        );
    }
}
