//! Figures 9 and 10 — the scalability sweep (Sec. V-D).
//!
//! The paper stresses all three approaches over graph sizes of 100, 250,
//! 500, 750 and 1000 workers with arrival rates 1.5, 3.125, 6.25, 9.375
//! and 12.5 tasks/s respectively. Fig. 9 plots the percentage of tasks
//! finished before their deadline, Fig. 10 the percentage of positive
//! feedbacks. Expected shape: Greedy is best at 100 workers but collapses
//! as the graph grows (≈ 16 % at 1000); REACT degrades only mildly;
//! Traditional is roughly flat.

use crate::endtoend::paper_policies;
use crate::report::OutputSink;
use react_crowd::{RunReport, Scenario, ScenarioRunner};
use react_metrics::{KpiReport, KpiRow};

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Policy name.
    pub policy: &'static str,
    /// Worker count.
    pub n_workers: usize,
    /// Arrival rate (tasks/s).
    pub rate: f64,
    /// The full run report.
    pub report: RunReport,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepParams {
    /// `(workers, rate)` pairs (paper defaults via
    /// [`Scenario::fig9_sweep_points`]).
    pub points: Vec<(usize, f64)>,
    /// Optional cap on tasks per run (the paper runs 10 simulated
    /// minutes per point; tests shorten this).
    pub task_cap: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SweepParams {
    fn default() -> Self {
        SweepParams {
            points: Scenario::fig9_sweep_points().to_vec(),
            task_cap: None,
            seed: 42,
        }
    }
}

impl SweepParams {
    /// Two-point sweep for tests/CI: the ends of the paper's range.
    /// Greedy's collapse needs the real 1000-worker scale, so the quick
    /// sweep keeps the sizes and shortens the runs instead.
    pub fn quick() -> Self {
        SweepParams {
            points: vec![(100, 1.5), (1000, 12.5)],
            task_cap: Some(1800),
            seed: 42,
        }
    }
}

/// Runs the sweep for all three policies.
pub fn run(params: &SweepParams) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &(n_workers, rate) in &params.points {
        for policy in paper_policies() {
            let mut sc = Scenario::paper_fig9(n_workers, rate, policy, params.seed);
            if let Some(cap) = params.task_cap {
                sc.total_tasks = sc.total_tasks.min(cap);
            }
            let report = ScenarioRunner::new(sc).run();
            out.push(SweepPoint {
                policy: report.matcher_name,
                n_workers,
                rate,
                report,
            });
        }
    }
    out
}

/// The sweep cells as shared KPI rows (one schema serves the tables,
/// the CSV and the experiment suite).
pub fn kpi_rows(points: &[SweepPoint]) -> Vec<KpiRow> {
    points
        .iter()
        .map(|p| {
            KpiRow::new()
                .label("policy", p.policy)
                .int("workers", p.n_workers as i64)
                .float("rate", p.rate)
                .pct("kpi.deadline_hit_rate", p.report.deadline_ratio())
                .pct("kpi.positive_rate", p.report.positive_ratio())
                .int("tasks.reassigned", p.report.reassignments as i64)
                .float("matching.seconds", p.report.total_matching_seconds)
        })
        .collect()
}

/// Prints the Fig. 9/10 tables and archives the CSV.
pub fn report(points: &[SweepPoint], sink: &OutputSink) -> String {
    let kpi = KpiReport::from_rows(kpi_rows(points));
    sink.write("fig9_fig10_scalability", &kpi.to_csv_rows(None));
    let fig9 = kpi.table(
        "Figure 9 — % of tasks before deadline vs graph size",
        Some(&["policy", "workers", "rate", "kpi.deadline_hit_rate"]),
    );
    let fig10 = kpi.table(
        "Figure 10 — % of positive feedback vs graph size",
        Some(&["policy", "workers", "rate", "kpi.positive_rate"]),
    );
    format!("{}\n{}", fig9.render(), fig10.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_points() -> Vec<SweepPoint> {
        run(&SweepParams::quick())
    }

    #[test]
    fn sweep_covers_grid() {
        let pts = quick_points();
        assert_eq!(pts.len(), 2 * 3);
        assert!(pts
            .iter()
            .any(|p| p.policy == "greedy" && p.n_workers == 1000));
    }

    #[test]
    fn fig9_shape_greedy_collapses_at_scale() {
        let pts = quick_points();
        let at = |policy: &str, workers: usize| {
            pts.iter()
                .find(|p| p.policy == policy && p.n_workers == workers)
                .unwrap()
        };
        let greedy_small = at("greedy", 100).report.deadline_ratio();
        let greedy_large = at("greedy", 1000).report.deadline_ratio();
        let react_large = at("react", 1000).report.deadline_ratio();
        assert!(
            greedy_large < greedy_small,
            "greedy must degrade with scale: {greedy_small:.2} → {greedy_large:.2}"
        );
        assert!(
            react_large > greedy_large,
            "react ({react_large:.2}) must beat greedy ({greedy_large:.2}) at scale"
        );
    }

    #[test]
    fn fig10_tracks_fig9() {
        // The paper notes Fig. 10 is roughly proportional to Fig. 9.
        let pts = quick_points();
        for p in &pts {
            assert!(p.report.positive_ratio() <= p.report.deadline_ratio() + 1e-9);
        }
    }

    #[test]
    fn report_renders_and_archives() {
        let pts = quick_points();
        let dir = std::env::temp_dir().join("react_sweep_test");
        let text = report(&pts, &OutputSink::to_dir(&dir));
        assert!(text.contains("Figure 9"));
        assert!(text.contains("Figure 10"));
        assert!(dir.join("fig9_fig10_scalability.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
