//! Output helpers shared by the experiment modules.

use react_metrics::csv::{to_csv_string, write_csv};
use react_metrics::{write_stamped, Provenance};
use std::path::{Path, PathBuf};

/// Where experiment CSVs land (`results/` under the workspace root, or
/// the directory given on the CLI).
///
/// A sink may carry a [`Provenance`] stamp; stamped sinks prepend a
/// `# provenance: ...` comment line to every CSV and route the write
/// through [`write_stamped`], so a prior differing artifact is preserved
/// as `<name>.prev.csv` instead of silently overwritten.
#[derive(Debug, Clone)]
pub struct OutputSink {
    dir: Option<PathBuf>,
    provenance: Option<Provenance>,
}

impl OutputSink {
    /// A sink writing CSVs into `dir`.
    pub fn to_dir(dir: impl Into<PathBuf>) -> Self {
        OutputSink {
            dir: Some(dir.into()),
            provenance: None,
        }
    }

    /// A sink that discards CSVs (tables still print to stdout).
    pub fn discard() -> Self {
        OutputSink {
            dir: None,
            provenance: None,
        }
    }

    /// Attaches an attribution stamp to every artifact this sink writes.
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = Some(provenance);
        self
    }

    /// The attribution stamp, when one is attached.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.provenance.as_ref()
    }

    /// The target directory, when writing is enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Writes `rows` (header first) as `<dir>/<name>.csv`. Returns the
    /// path when a write happened.
    pub fn write(&self, name: &str, rows: &[Vec<String>]) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{name}.csv"));
        let result = match &self.provenance {
            Some(p) => {
                let content = format!("{}\n{}", p.comment_line(), to_csv_string(rows));
                write_stamped(&path, &content).map(|_| ())
            }
            None => write_csv(&path, rows),
        };
        match result {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: could not write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Formats a float for CSV cells (enough digits, no noise).
pub fn num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discard_sink_writes_nothing() {
        let sink = OutputSink::discard();
        assert!(sink.dir().is_none());
        assert!(sink.write("x", &[vec!["a".to_string()]]).is_none());
    }

    #[test]
    fn dir_sink_writes_csv() {
        let dir = std::env::temp_dir().join("react_bench_report_test");
        let sink = OutputSink::to_dir(&dir);
        let path = sink
            .write("t", &[vec!["h".to_string()], vec!["1".to_string()]])
            .unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "h\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stamped_sink_prepends_provenance_and_backs_up() {
        let dir = std::env::temp_dir().join("react_bench_report_stamped_test");
        let _ = std::fs::remove_dir_all(&dir);
        let sink = OutputSink::to_dir(&dir).with_provenance(Provenance::new(7));
        let path = sink
            .write("t", &[vec!["h".to_string()], vec!["1".to_string()]])
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "# provenance: seed=7\nh\n1\n"
        );
        // A differing rewrite must preserve the prior artifact.
        sink.write("t", &[vec!["h".to_string()], vec!["2".to_string()]])
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("t.prev.csv")).unwrap(),
            "# provenance: seed=7\nh\n1\n"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn num_formatting() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(1.23456), "1.2346");
        assert_eq!(num(-2.0), "-2");
    }
}
