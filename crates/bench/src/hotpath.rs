//! Scheduling hot-path micro-benchmarks (`BENCH_hotpath.json`).
//!
//! Three measurements, each swept over growing worker pools:
//!
//! 1. **Graph build** — ns/edge of the cold two-phase [`GraphBuilder`]
//!    (fresh buffers + exact Eq. (3) per edge) versus the warm
//!    [`BatchScratch`] (persistent arenas, epoch-cached phase-A rows,
//!    memoized deadline gates). Both paths must produce bit-identical
//!    graphs; the warm path is expected to be ≥ 2× faster at the
//!    largest pool.
//! 2. **Matcher** — local-search cycles/second of the REACT matcher
//!    over the built graph.
//! 3. **End-to-end ticks** — full `ReactServer::tick` throughput
//!    (submit → build → match → commit → complete) with the graph
//!    build pinned serial versus the parallel default.
//!
//! The `react-experiments hotpath` subcommand renders the tables and
//! archives the machine-readable summary as `BENCH_hotpath.json` at the
//! repository root.

// analyze: allow-file(no-wall-clock) — benchmark harness: wall-clock
// timing IS the measurement here, and react-bench has no react-runtime
// dependency to borrow a Stopwatch from.

use crate::report::OutputSink;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react_core::{
    BatchScratch, BatchTrigger, Config, GraphBuilder, MatcherPolicy, ProfilingComponent,
    ReactServer, Task, TaskCategory, TaskId, TaskManagementComponent, WorkerId,
};
use react_geo::GeoPoint;
use react_matching::{CostModel, Matcher, ReactMatcher};
use react_metrics::{write_stamped, ArtifactOutcome, KpiReport, KpiRow, Provenance};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct HotpathParams {
    /// Worker-pool sizes to sweep (the ISSUE floor is three).
    pub pools: Vec<usize>,
    /// Unassigned tasks per graph build.
    pub tasks: usize,
    /// Graph builds timed per pool size (per path).
    pub build_iters: usize,
    /// Matcher runs timed per pool size.
    pub matcher_iters: usize,
    /// Server ticks driven per pool size (per path).
    pub ticks: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for HotpathParams {
    fn default() -> Self {
        HotpathParams {
            pools: vec![100, 300, 1000],
            tasks: 100,
            build_iters: 30,
            matcher_iters: 20,
            ticks: 400,
            seed: 42,
        }
    }
}

impl HotpathParams {
    /// Shortened sweep for tests/CI (still three pool sizes).
    pub fn quick() -> Self {
        HotpathParams {
            pools: vec![40, 120, 300],
            tasks: 40,
            build_iters: 12,
            matcher_iters: 6,
            ticks: 150,
            seed: 42,
        }
    }
}

/// One cold-vs-warm graph-build measurement.
#[derive(Debug, Clone)]
pub struct BuildPoint {
    /// Worker-pool size (graph rows).
    pub workers: usize,
    /// Unassigned tasks (graph columns).
    pub tasks: usize,
    /// Edges in the built graph.
    pub edges: usize,
    /// Nanoseconds per edge, cold [`GraphBuilder`] path.
    pub cold_ns_per_edge: f64,
    /// Nanoseconds per edge, warm [`BatchScratch`] path.
    pub warm_ns_per_edge: f64,
    /// Phase-A rows served from the epoch cache on the last warm build.
    pub rows_reused: usize,
    /// Eq. (3) decisions answered by the memoized gate per warm build.
    pub memo_hits: u64,
    /// Whether warm and cold graphs were bit-identical (must hold).
    pub identical: bool,
}

impl BuildPoint {
    /// Cold time over warm time.
    pub fn speedup(&self) -> f64 {
        if self.warm_ns_per_edge > 0.0 {
            self.cold_ns_per_edge / self.warm_ns_per_edge
        } else {
            1.0
        }
    }
}

/// One matcher-throughput measurement.
#[derive(Debug, Clone)]
pub struct MatcherPoint {
    /// Worker-pool size.
    pub workers: usize,
    /// Unassigned tasks.
    pub tasks: usize,
    /// Edges in the matched graph.
    pub edges: usize,
    /// Local-search cycles executed per wall second.
    pub cycles_per_sec: f64,
}

/// One end-to-end tick-throughput measurement.
#[derive(Debug, Clone)]
pub struct TickPoint {
    /// Worker-pool size.
    pub workers: usize,
    /// Ticks per wall second with the graph build pinned serial.
    pub serial_ticks_per_sec: f64,
    /// Ticks per wall second with the default (parallel-capable) build.
    pub parallel_ticks_per_sec: f64,
    /// Whether both paths assigned the same tasks (must hold).
    pub identical: bool,
}

/// The three sweeps of one hotpath run.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Cold-vs-warm graph-build points.
    pub builds: Vec<BuildPoint>,
    /// Matcher cycles/sec points.
    pub matchers: Vec<MatcherPoint>,
    /// End-to-end ticks/sec points.
    pub ticks: Vec<TickPoint>,
    /// Whether the quick parameter set produced this report.
    pub quick: bool,
}

fn here() -> GeoPoint {
    GeoPoint::new(37.98, 23.72)
}

/// The standard bench config: REACT matcher, paper weight function.
fn bench_config() -> Config {
    Config::with_matcher(MatcherPolicy::React { cycles: 200 })
}

/// A seasoned pool (every worker past training with a spread of
/// latencies, so phase A fits real models and Eq. (3) pruning runs) plus
/// a task queue with mixed deadlines.
fn seasoned_components(
    n_workers: usize,
    n_tasks: usize,
) -> (ProfilingComponent, TaskManagementComponent) {
    let mut profiling = ProfilingComponent::default();
    for w in 0..n_workers as u64 {
        profiling.register(WorkerId(w), here()).unwrap();
        let base = 1.0 + (w % 7) as f64 * 9.0;
        for s in 0..3u64 {
            profiling.record_assignment(WorkerId(w)).unwrap();
            profiling
                .record_completion(
                    WorkerId(w),
                    TaskCategory((w % 2) as u32),
                    base + s as f64,
                    true,
                )
                .unwrap();
        }
    }
    let mut tm = TaskManagementComponent::new();
    for t in 0..n_tasks as u64 {
        let deadline = 20.0 + (t % 5) as f64 * 30.0;
        tm.submit(
            Task::new(
                TaskId(t),
                here(),
                deadline,
                0.05,
                TaskCategory((t % 2) as u32),
                "bench",
            ),
            0.0,
        )
        .unwrap();
    }
    (profiling, tm)
}

/// Cold [`GraphBuilder`] vs warm [`BatchScratch`] build sweep. Both
/// paths run serial phase B so the comparison isolates buffer reuse and
/// memoization, not thread counts.
pub fn graph_build(params: &HotpathParams) -> Vec<BuildPoint> {
    let config = bench_config();
    params
        .pools
        .iter()
        .map(|&n_workers| {
            let (mut profiling, tm) = seasoned_components(n_workers, params.tasks);
            // Each iteration is timed individually and the minimum is
            // reported: the min is the run least disturbed by scheduler
            // noise, which is what a per-path comparison needs.
            // Cold path: fresh buffers + exact Eq. (3) every iteration.
            let mut cold_secs = f64::INFINITY;
            let mut cold = None;
            for _ in 0..params.build_iters {
                let t0 = Instant::now();
                let builder = GraphBuilder::prepare(&config, &mut profiling);
                cold = Some(builder.instantiate_serial(&profiling, &tm, 0.0));
                cold_secs = cold_secs.min(t0.elapsed().as_secs_f64());
            }
            let (cold_graph, ..) = cold.expect("build_iters ≥ 1");

            // Warm path: one priming build, then steady-state rebuilds.
            let mut scratch = BatchScratch::new();
            scratch.set_threads(Some(1));
            scratch.build(&config, &mut profiling, &tm, 0.0);
            let mut warm_secs = f64::INFINITY;
            for _ in 0..params.build_iters {
                let t0 = Instant::now();
                scratch.build(&config, &mut profiling, &tm, 0.0);
                warm_secs = warm_secs.min(t0.elapsed().as_secs_f64());
            }
            let built = scratch.build(&config, &mut profiling, &tm, 0.0);

            let edges = built.graph.n_edges().max(1);
            BuildPoint {
                workers: n_workers,
                tasks: params.tasks,
                edges: built.graph.n_edges(),
                cold_ns_per_edge: cold_secs * 1e9 / edges as f64,
                warm_ns_per_edge: warm_secs * 1e9 / edges as f64,
                rows_reused: built.stats.rows_reused,
                memo_hits: built.stats.cdf_memo_hits,
                identical: built.graph.edges() == cold_graph.edges(),
            }
        })
        .collect()
}

/// REACT-matcher throughput over the built graphs.
pub fn matcher_throughput(params: &HotpathParams) -> Vec<MatcherPoint> {
    const CYCLES: usize = 1000;
    let config = bench_config();
    params
        .pools
        .iter()
        .map(|&n_workers| {
            let (mut profiling, tm) = seasoned_components(n_workers, params.tasks);
            let builder = GraphBuilder::prepare(&config, &mut profiling);
            let (graph, ..) = builder.instantiate_serial(&profiling, &tm, 0.0);
            let matcher = ReactMatcher::with_cycles(CYCLES);
            let t0 = Instant::now();
            for i in 0..params.matcher_iters {
                let mut rng = SmallRng::seed_from_u64(params.seed ^ i as u64);
                let matching = matcher.assign(&graph, &mut rng);
                std::hint::black_box(matching.total_weight);
            }
            let secs = t0.elapsed().as_secs_f64();
            MatcherPoint {
                workers: n_workers,
                tasks: params.tasks,
                edges: graph.n_edges(),
                cycles_per_sec: (CYCLES * params.matcher_iters) as f64 / secs.max(1e-9),
            }
        })
        .collect()
}

/// Drives one server through the tick loop: every tick submits two
/// tasks, runs the control step, and immediately completes whatever got
/// assigned (with per-worker latencies, so profiles keep refitting).
/// Returns wall seconds and the assignment trace for identity checks.
fn drive_ticks(server: &mut ReactServer, n_workers: usize, ticks: usize) -> (f64, Vec<(u64, u64)>) {
    for w in 0..n_workers as u64 {
        server.register_worker(WorkerId(w), here());
    }
    let mut next_task = 0u64;
    let mut trace = Vec::new();
    let t0 = Instant::now();
    for step in 0..ticks {
        let now = step as f64;
        for _ in 0..2 {
            server.submit_task(
                Task::new(
                    TaskId(next_task),
                    here(),
                    20.0 + (next_task % 5) as f64 * 30.0,
                    0.05,
                    TaskCategory((next_task % 2) as u32),
                    "bench",
                ),
                now,
            );
            next_task += 1;
        }
        let outcome = server.tick(now);
        for &(worker, task) in &outcome.assignments {
            trace.push((worker.0, task.0));
            // Sub-tick completion latency keyed to the worker, so the
            // estimators see a spread and keep their fits warm.
            let exec = 0.1 + 0.1 * (worker.0 % 7) as f64;
            let _ = server.complete_task(task, worker, now + exec, true);
        }
    }
    (t0.elapsed().as_secs_f64(), trace)
}

/// End-to-end tick throughput, serial vs parallel graph build. The two
/// paths must assign identically (the build is bit-identical either
/// way and everything downstream is seeded).
pub fn tick_throughput(params: &HotpathParams) -> Vec<TickPoint> {
    let mut config = bench_config();
    // Eager trigger: every tick with queued tasks runs a batch.
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    params
        .pools
        .iter()
        .map(|&n_workers| {
            let run = |threads: Option<usize>| {
                let mut server = ReactServer::builder(config.clone())
                    .seed(params.seed)
                    .cost_model(CostModel::free())
                    .build()
                    .expect("bench config is valid");
                server.set_build_parallelism(threads);
                drive_ticks(&mut server, n_workers, params.ticks)
            };
            let (serial_secs, serial_trace) = run(Some(1));
            let (parallel_secs, parallel_trace) = run(None);
            TickPoint {
                workers: n_workers,
                serial_ticks_per_sec: params.ticks as f64 / serial_secs.max(1e-9),
                parallel_ticks_per_sec: params.ticks as f64 / parallel_secs.max(1e-9),
                identical: serial_trace == parallel_trace,
            }
        })
        .collect()
}

/// Runs all three sweeps.
pub fn run(params: &HotpathParams, quick: bool) -> HotpathReport {
    HotpathReport {
        builds: graph_build(params),
        matchers: matcher_throughput(params),
        ticks: tick_throughput(params),
        quick,
    }
}

/// The canonical location of the benchmark artifact: the repository
/// root, next to `ROADMAP.md`.
pub fn default_json_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
}

/// Serializes the report as the `BENCH_hotpath.json` document
/// (hand-rolled JSON; the workspace carries no serializer dependency).
pub fn to_json(report: &HotpathReport) -> String {
    to_json_with(report, None)
}

/// [`to_json`] with an optional embedded provenance stamp.
pub fn to_json_with(report: &HotpathReport, provenance: Option<&Provenance>) -> String {
    let builds: Vec<String> = report
        .builds
        .iter()
        .map(|b| {
            format!(
                "    {{\"workers\": {}, \"tasks\": {}, \"edges\": {}, \
                 \"cold_ns_per_edge\": {:.2}, \"warm_ns_per_edge\": {:.2}, \
                 \"speedup\": {:.3}, \"rows_reused\": {}, \"memo_hits\": {}, \
                 \"identical\": {}}}",
                b.workers,
                b.tasks,
                b.edges,
                b.cold_ns_per_edge,
                b.warm_ns_per_edge,
                b.speedup(),
                b.rows_reused,
                b.memo_hits,
                b.identical
            )
        })
        .collect();
    let matchers: Vec<String> = report
        .matchers
        .iter()
        .map(|m| {
            format!(
                "    {{\"workers\": {}, \"tasks\": {}, \"edges\": {}, \
                 \"cycles_per_sec\": {:.0}}}",
                m.workers, m.tasks, m.edges, m.cycles_per_sec
            )
        })
        .collect();
    let ticks: Vec<String> = report
        .ticks
        .iter()
        .map(|t| {
            format!(
                "    {{\"workers\": {}, \"serial_ticks_per_sec\": {:.1}, \
                 \"parallel_ticks_per_sec\": {:.1}, \"identical\": {}}}",
                t.workers, t.serial_ticks_per_sec, t.parallel_ticks_per_sec, t.identical
            )
        })
        .collect();
    let stamp = provenance.map_or(String::new(), |p| {
        format!("  \"provenance\": {},\n", p.to_json())
    });
    format!(
        "{{\n  \"schema\": \"react-hotpath-v1\",\n{}  \"quick\": {},\n  \
         \"threads\": {},\n  \"graph_build\": [\n{}\n  ],\n  \
         \"matcher\": [\n{}\n  ],\n  \"ticks\": [\n{}\n  ]\n}}\n",
        stamp,
        report.quick,
        react_core::par::parallelism(),
        builds.join(",\n"),
        matchers.join(",\n"),
        ticks.join(",\n")
    )
}

/// Writes the JSON artifact, creating parent directories as needed.
pub fn write_json(report: &HotpathReport, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json(report))
}

/// Writes the JSON artifact with an embedded provenance stamp, backing
/// up a differing prior artifact as `<stem>.prev.json` instead of
/// silently overwriting it.
pub fn write_json_stamped(
    report: &HotpathReport,
    path: &Path,
    provenance: &Provenance,
) -> std::io::Result<ArtifactOutcome> {
    write_stamped(path, &to_json_with(report, Some(provenance)))
}

/// The cold-vs-warm graph-build points as shared KPI rows.
pub fn build_kpi_rows(builds: &[BuildPoint]) -> Vec<KpiRow> {
    builds
        .iter()
        .map(|b| {
            KpiRow::new()
                .int("workers", b.workers as i64)
                .int("tasks", b.tasks as i64)
                .int("edges", b.edges as i64)
                .float("cold_ns_per_edge", b.cold_ns_per_edge)
                .float("warm_ns_per_edge", b.warm_ns_per_edge)
                .float("speedup", b.speedup())
                .int("build.rows_reused", b.rows_reused as i64)
                .int("build.cdf_memo_hits", b.memo_hits as i64)
                .flag("identical", b.identical)
        })
        .collect()
}

/// The matcher-throughput points as shared KPI rows.
pub fn matcher_kpi_rows(matchers: &[MatcherPoint]) -> Vec<KpiRow> {
    matchers
        .iter()
        .map(|m| {
            KpiRow::new()
                .int("workers", m.workers as i64)
                .int("tasks", m.tasks as i64)
                .int("edges", m.edges as i64)
                .float("kpi.cycles_per_sec", m.cycles_per_sec)
        })
        .collect()
}

/// The tick-throughput points as shared KPI rows.
pub fn tick_kpi_rows(ticks: &[TickPoint]) -> Vec<KpiRow> {
    ticks
        .iter()
        .map(|t| {
            KpiRow::new()
                .int("workers", t.workers as i64)
                .float("kpi.serial_ticks_per_sec", t.serial_ticks_per_sec)
                .float("kpi.parallel_ticks_per_sec", t.parallel_ticks_per_sec)
                .flag("identical", t.identical)
        })
        .collect()
}

/// Renders the three tables and archives the CSVs.
pub fn render(report: &HotpathReport, sink: &OutputSink) -> String {
    let build_kpi = KpiReport::from_rows(build_kpi_rows(&report.builds));
    sink.write("hotpath_graph_build", &build_kpi.to_csv_rows(None));
    let build_table = build_kpi.table(
        "Graph build — cold GraphBuilder vs warm BatchScratch (serial)",
        None,
    );

    let matcher_kpi = KpiReport::from_rows(matcher_kpi_rows(&report.matchers));
    sink.write("hotpath_matcher", &matcher_kpi.to_csv_rows(None));
    let matcher_table = matcher_kpi.table("Matcher — REACT local-search throughput", None);

    let tick_kpi = KpiReport::from_rows(tick_kpi_rows(&report.ticks));
    sink.write("hotpath_ticks", &tick_kpi.to_csv_rows(None));
    let tick_table = tick_kpi.table(
        "End-to-end — ReactServer ticks/sec, serial vs parallel build",
        None,
    );

    format!(
        "{}\n{}\n{}",
        build_table.render(),
        matcher_table.render(),
        tick_table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HotpathParams {
        HotpathParams {
            pools: vec![10, 40],
            tasks: 12,
            build_iters: 2,
            matcher_iters: 2,
            ticks: 12,
            seed: 42,
        }
    }

    #[test]
    fn warm_build_is_identical_to_cold_build() {
        for b in graph_build(&tiny()) {
            assert!(b.identical, "{} workers diverged", b.workers);
            assert!(b.edges > 0, "seasoned pool must instantiate edges");
            assert_eq!(b.rows_reused, b.workers, "steady-state reuse");
            assert!(b.memo_hits > 0, "gates should answer edges");
            assert!(b.speedup().is_finite());
        }
    }

    #[test]
    fn tick_paths_assign_identically() {
        for t in tick_throughput(&tiny()) {
            assert!(t.identical, "{} workers diverged", t.workers);
            assert!(t.serial_ticks_per_sec > 0.0);
            assert!(t.parallel_ticks_per_sec > 0.0);
        }
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = run(&tiny(), true);
        let json = to_json(&report);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for key in ["\"schema\"", "\"graph_build\"", "\"matcher\"", "\"ticks\""] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches("\"workers\"").count(), 6, "2 pools × 3 series");
        let dir = std::env::temp_dir().join("react_hotpath_test");
        let path = dir.join("BENCH_hotpath.json");
        write_json(&report, &path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_archives_csvs() {
        let report = run(&tiny(), true);
        let dir = std::env::temp_dir().join("react_hotpath_render_test");
        let text = render(&report, &OutputSink::to_dir(&dir));
        assert!(text.contains("Graph build"));
        assert!(text.contains("Matcher"));
        assert!(text.contains("End-to-end"));
        for csv in ["hotpath_graph_build", "hotpath_matcher", "hotpath_ticks"] {
            assert!(dir.join(format!("{csv}.csv")).exists(), "{csv} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
