//! Chaos sweep — policy robustness under increasing fault intensity.
//!
//! Replays the Figs. 5–8 workload through [`react_faults::FaultPlan::chaos`]
//! at a ladder of intensities for each of the three paper policies, with
//! the failure-aware recovery ladder enabled, and reports:
//!
//! * **deadline-miss curves** — received − met-deadline per intensity;
//! * **recovery latency** — mean seconds from a task's *first* recall to
//!   its eventual completion (from the audit log);
//! * the raw injected-fault counters ([`react_crowd::FaultStats`]).
//!
//! The headline check mirrors the paper's thesis under adversity: REACT's
//! availability-aware matching plus the timeout ladder miss strictly
//! fewer deadlines than Traditional blind assignment once workers start
//! dropping out.

use crate::endtoend::paper_policies;
use crate::report::OutputSink;
use react_core::{AuditLog, MatcherPolicy, RecoveryConfig, TaskEventKind, TaskId};
use react_crowd::{RunReport, Scenario, ScenarioRunner};
use react_faults::FaultPlan;
use react_metrics::{KpiReport, KpiRow};
use std::collections::HashMap;

/// Parameters of the chaos sweep.
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// Worker count (paper: 750).
    pub n_workers: usize,
    /// Total tasks per run.
    pub total_tasks: usize,
    /// Fault intensities to sweep (each mapped through
    /// [`FaultPlan::chaos`]; 0.0 is the fault-free baseline).
    pub intensities: Vec<f64>,
    /// Timeout-ladder base progress deadline (seconds).
    pub progress_timeout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            n_workers: 750,
            total_tasks: 8371,
            intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            progress_timeout: 45.0,
            seed: 42,
        }
    }
}

impl ChaosParams {
    /// Reduced setup for tests/CI.
    pub fn quick() -> Self {
        ChaosParams {
            n_workers: 80,
            total_tasks: 300,
            intensities: vec![0.0, 0.5, 1.0],
            progress_timeout: 30.0,
            seed: 42,
        }
    }
}

/// One (policy, intensity) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ChaosPoint {
    /// The fault intensity the plan was derived from.
    pub intensity: f64,
    /// The full run report (fault counters in `report.faults`).
    pub report: RunReport,
    /// Mean seconds from a task's first recall to its completion
    /// (0.0 when no recalled task completed).
    pub recovery_latency: f64,
}

impl ChaosPoint {
    /// Deadlines missed: every received task that did not finish in time.
    pub fn missed(&self) -> u64 {
        self.report.received - self.report.met_deadline
    }
}

fn scenario(policy: MatcherPolicy, intensity: f64, params: &ChaosParams) -> Scenario {
    let mut sc = Scenario::paper_fig5(policy, params.seed);
    sc.label = format!("chaos-{}-i{:.2}", policy.name(), intensity);
    sc.n_workers = params.n_workers;
    sc.total_tasks = params.total_tasks;
    sc.arrival_rate *= params.n_workers as f64 / 750.0;
    sc.faults = Some(FaultPlan::chaos(intensity));
    sc.config.recovery = RecoveryConfig::aggressive(params.progress_timeout);
    sc.config.audit = true;
    sc
}

/// Mean first-recall→completion latency over the audit log.
fn mean_recovery_latency(log: &AuditLog) -> f64 {
    let mut first_recall: HashMap<TaskId, f64> = HashMap::new();
    let mut total = 0.0f64;
    let mut n = 0u64;
    for e in log.events() {
        match e.kind {
            TaskEventKind::Recalled { .. } => {
                first_recall.entry(e.task).or_insert(e.at);
            }
            TaskEventKind::Completed { .. } => {
                if let Some(&t0) = first_recall.get(&e.task) {
                    total += e.at - t0;
                    n += 1;
                }
            }
            _ => {}
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Runs the sweep: every policy at every intensity, in policy-major
/// order (matching [`paper_policies`]).
pub fn run(params: &ChaosParams) -> Vec<ChaosPoint> {
    paper_policies()
        .into_iter()
        .flat_map(|policy| {
            params
                .intensities
                .iter()
                .map(move |&intensity| (policy, intensity))
        })
        .map(|(policy, intensity)| {
            let report = ScenarioRunner::new(scenario(policy, intensity, params)).run();
            let recovery_latency = report
                .audit
                .as_ref()
                .map(mean_recovery_latency)
                .unwrap_or(0.0);
            ChaosPoint {
                intensity,
                report,
                recovery_latency,
            }
        })
        .collect()
}

/// The chaos cells as shared KPI rows. Counter-backed columns use the
/// obs-catalog names; derived columns use the `kpi.` prefix.
pub fn kpi_rows(points: &[ChaosPoint]) -> Vec<KpiRow> {
    points
        .iter()
        .map(|p| {
            let r = &p.report;
            let f = &r.faults;
            KpiRow::new()
                .label("policy", r.matcher_name)
                .float("intensity", p.intensity)
                .int("kpi.received", r.received as i64)
                .int("deadlines.met", r.met_deadline as i64)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .int("kpi.missed", p.missed() as i64)
                .int("tasks.reassigned", r.reassignments as i64)
                .int("recovery.timeout_recalls", f.timeout_recalls as i64)
                .int("fault.abandons", f.abandons as i64)
                .int("fault.completions_lost", f.completions_lost as i64)
                .int(
                    "fault.completions_duplicated",
                    f.completions_duplicated as i64,
                )
                .int("fault.burst_tasks", f.burst_tasks as i64)
                .int("kpi.stranded", f.stranded as i64)
                .float("kpi.recovery_latency_s", p.recovery_latency)
        })
        .collect()
}

/// Prints the chaos table and archives the `chaos_sweep` CSV.
pub fn report(points: &[ChaosPoint], sink: &OutputSink) -> String {
    let kpi = KpiReport::from_rows(kpi_rows(points));
    sink.write("chaos_sweep", &kpi.to_csv_rows(None));
    let table = kpi.table(
        "Chaos sweep — deadline misses and recovery under injected faults",
        None,
    );

    let mut out = table.render();
    // Headline: REACT vs Traditional at the heaviest intensity.
    let heaviest = points.iter().map(|p| p.intensity).fold(0.0f64, f64::max);
    let at = |name: &str| {
        points
            .iter()
            .find(|p| p.report.matcher_name == name && p.intensity == heaviest)
    };
    if let (Some(react), Some(trad)) = (at("react"), at("traditional")) {
        out.push_str(&format!(
            "\nAt intensity {:.2}: REACT misses {} deadlines vs Traditional {} \
             (recovery latency {:.1}s vs {:.1}s)\n",
            heaviest,
            react.missed(),
            trad.missed(),
            react.recovery_latency,
            trad.recovery_latency,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_faults::DropoutPlan;

    #[test]
    fn sweep_covers_every_policy_and_intensity() {
        let params = ChaosParams::quick();
        let points = run(&params);
        assert_eq!(points.len(), 3 * params.intensities.len());
        for p in &points {
            assert!(p.report.received as usize >= params.total_tasks);
            // Conservation under chaos with recovery enabled.
            assert_eq!(
                p.report.completed + p.report.expired_unassigned + p.report.faults.stranded,
                p.report.received,
                "conservation at intensity {}: {:?}",
                p.intensity,
                p.report.faults
            );
        }
        // Intensity 0 injects nothing; intensity 1 injects plenty.
        let baseline = &points[0];
        assert_eq!(baseline.report.faults.abandons, 0);
        assert_eq!(baseline.report.faults.dropouts, 0);
        let heavy = &points[params.intensities.len() - 1];
        assert!(heavy.report.faults.abandons > 0);
    }

    #[test]
    fn react_misses_fewer_deadlines_than_traditional_under_dropout() {
        // The acceptance check: under a pure dropout plan, REACT's
        // availability-aware matching + recovery must outperform blind
        // Traditional assignment.
        let params = ChaosParams::quick();
        let run_policy = |policy: MatcherPolicy| {
            let mut sc = scenario(policy, 0.0, &params);
            sc.faults = Some(FaultPlan {
                dropout: Some(DropoutPlan {
                    probability: 0.6,
                    window: (5.0, 60.0),
                    offline_range: Some((30.0, 90.0)),
                }),
                ..FaultPlan::none()
            });
            ScenarioRunner::new(sc).run()
        };
        let react = run_policy(MatcherPolicy::React { cycles: 1000 });
        let trad = run_policy(MatcherPolicy::Traditional);
        assert!(react.faults.dropouts > 0, "dropouts must fire");
        let react_missed = react.received - react.met_deadline;
        let trad_missed = trad.received - trad.met_deadline;
        assert!(
            react_missed < trad_missed,
            "REACT must miss strictly fewer deadlines under dropout: {react_missed} vs {trad_missed}"
        );
    }

    #[test]
    fn report_renders_and_archives() {
        let mut params = ChaosParams::quick();
        params.intensities = vec![0.0, 1.0];
        let points = run(&params);
        let dir = std::env::temp_dir().join("react_chaos_test");
        let text = report(&points, &OutputSink::to_dir(&dir));
        assert!(text.contains("Chaos sweep"));
        assert!(text.contains("REACT misses"));
        assert!(dir.join("chaos_sweep.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_latency_is_measured_when_recalls_happen() {
        let params = ChaosParams::quick();
        let points = run(&params);
        // At least one chaotic cell must have recalled-and-completed
        // tasks with a positive recovery latency.
        assert!(
            points
                .iter()
                .any(|p| p.intensity > 0.0 && p.recovery_latency > 0.0),
            "expected measurable recovery latency somewhere in the sweep"
        );
    }
}
