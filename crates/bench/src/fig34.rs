//! Figures 3 and 4 — the WBGM matching micro-benchmarks.
//!
//! Setup (Sec. V-B): 1000 workers matched against 1…1000 tasks on a
//! *full* bipartite graph with weights uniform in `[0, 1]` — the worst
//! case for the matchers. Fig. 3 reports assignment time (paper anchors:
//! Greedy 99.7 s @ 1000 tasks; REACT/Metropolis ≈ 12 s @ 1000 cycles,
//! ≈ 45 s @ 3000); Fig. 4 reports the achieved matching weight (Greedy
//! near-optimal; REACT above Metropolis even at a third of the cycles).
//!
//! Two time columns are reported: the **modelled** seconds from the
//! calibrated [`CostModel`] (comparable to the paper's JVM-on-PlanetLab
//! numbers) and the **measured** wall seconds of this Rust
//! implementation.

// analyze: allow-file(no-wall-clock) — benchmark harness: wall-clock
// timing IS the measurement here, and react-bench has no react-runtime
// dependency to borrow a Stopwatch from.

use crate::report::OutputSink;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react_matching::{
    BipartiteGraph, CostModel, GreedyMatcher, HungarianMatcher, Matcher, MetropolisMatcher,
    ReactMatcher,
};
use react_metrics::{KpiReport, KpiRow};
use std::time::Instant;

/// One measured point of the Fig. 3/4 sweep.
#[derive(Debug, Clone)]
pub struct MatchPoint {
    /// Algorithm label, e.g. `react-1000`.
    pub algo: String,
    /// Number of task vertices.
    pub tasks: usize,
    /// Modelled seconds (paper-calibrated cost model).
    pub modeled_secs: f64,
    /// Measured wall seconds of this implementation.
    pub wall_secs: f64,
    /// Achieved matching weight (Fig. 4's y-axis).
    pub weight: f64,
    /// Matched pairs.
    pub matched: usize,
}

/// Parameters of the sweep.
#[derive(Debug, Clone)]
pub struct Fig34Params {
    /// Worker-side size (paper: 1000).
    pub n_workers: usize,
    /// Task counts to sweep (paper: 1…1000).
    pub task_steps: Vec<usize>,
    /// Include the exact Hungarian optimum up to this many tasks
    /// (`O(n³)` — the ceiling for Fig. 4).
    pub hungarian_up_to: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig34Params {
    fn default() -> Self {
        Fig34Params {
            n_workers: 1000,
            task_steps: vec![1, 100, 200, 400, 600, 800, 1000],
            hungarian_up_to: 200,
            seed: 42,
        }
    }
}

impl Fig34Params {
    /// A reduced sweep for tests/CI. The largest step stays above the
    /// modelled greedy/REACT cost crossover (`V > c·β_r/β_g ≈ 135`) so
    /// the Fig. 3 shape is still visible.
    pub fn quick() -> Self {
        Fig34Params {
            n_workers: 200,
            task_steps: vec![10, 60, 200],
            hungarian_up_to: 60,
            seed: 42,
        }
    }
}

/// Runs the sweep and returns every `(algorithm, tasks)` point.
pub fn run(params: &Fig34Params) -> Vec<MatchPoint> {
    let cost_model = CostModel::paper_calibrated();
    let mut points = Vec::new();
    for &tasks in &params.task_steps {
        let mut weight_rng = SmallRng::seed_from_u64(params.seed ^ tasks as u64);
        let graph = BipartiteGraph::full(params.n_workers, tasks, |_, _| weight_rng.gen::<f64>())
            .expect("full graph construction cannot fail");
        let mut algos: Vec<(String, Box<dyn Matcher>)> = vec![
            ("greedy".to_string(), Box::new(GreedyMatcher)),
            (
                "react-1000".to_string(),
                Box::new(ReactMatcher::with_cycles(1000)),
            ),
            (
                "react-3000".to_string(),
                Box::new(ReactMatcher::with_cycles(3000)),
            ),
            (
                "metropolis-1000".to_string(),
                Box::new(MetropolisMatcher::with_cycles(1000)),
            ),
            (
                "metropolis-3000".to_string(),
                Box::new(MetropolisMatcher::with_cycles(3000)),
            ),
        ];
        if tasks <= params.hungarian_up_to {
            algos.push(("hungarian".to_string(), Box::new(HungarianMatcher)));
        }
        for (label, matcher) in algos {
            let mut rng = SmallRng::seed_from_u64(params.seed ^ 0xa150);
            let t0 = Instant::now();
            let matching = matcher.assign(&graph, &mut rng);
            let wall_secs = t0.elapsed().as_secs_f64();
            points.push(MatchPoint {
                algo: label,
                tasks,
                modeled_secs: cost_model.seconds_for(matcher.name(), matching.cost_units),
                wall_secs,
                weight: matching.total_weight,
                matched: matching.len(),
            });
        }
    }
    points
}

/// The sweep points as shared KPI rows (one schema serves the tables,
/// the CSV and the experiment suite).
pub fn kpi_rows(points: &[MatchPoint]) -> Vec<KpiRow> {
    points
        .iter()
        .map(|p| {
            KpiRow::new()
                .label("algorithm", &p.algo)
                .int("tasks", p.tasks as i64)
                .float("modeled_secs", p.modeled_secs)
                .float("wall_secs", p.wall_secs)
                .float("weight", p.weight)
                .int("matched", p.matched as i64)
        })
        .collect()
}

/// Prints the Fig. 3 and Fig. 4 tables and archives the CSV.
pub fn report(points: &[MatchPoint], sink: &OutputSink) -> String {
    let report = KpiReport::from_rows(kpi_rows(points));
    sink.write("fig3_fig4_matching", &report.to_csv_rows(None));
    let fig3 = report.table(
        "Figure 3 — matching execution time (1000 workers, full graph)",
        Some(&["algorithm", "tasks", "modeled_secs", "wall_secs"]),
    );
    let fig4 = report.table(
        "Figure 4 — matching output (Σ w_ij of the selected edges)",
        Some(&["algorithm", "tasks", "weight", "matched"]),
    );
    format!("{}\n{}", fig3.render(), fig4.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_points() -> Vec<MatchPoint> {
        run(&Fig34Params::quick())
    }

    #[test]
    fn sweep_covers_all_algorithms_and_steps() {
        let pts = quick_points();
        // 3 steps × 5 heuristics + hungarian at ≤60 (2 steps).
        assert_eq!(pts.len(), 3 * 5 + 2);
        assert!(pts.iter().any(|p| p.algo == "hungarian" && p.tasks == 60));
        assert!(!pts.iter().any(|p| p.algo == "hungarian" && p.tasks == 200));
    }

    #[test]
    fn fig3_shape_greedy_dominates_at_scale() {
        // The paper's headline: at the largest size Greedy's modelled
        // time exceeds REACT@1000 by several times.
        let pts = quick_points();
        let at = |algo: &str, tasks: usize| {
            pts.iter()
                .find(|p| p.algo == algo && p.tasks == tasks)
                .unwrap()
        };
        let greedy = at("greedy", 200);
        let react = at("react-1000", 200);
        assert!(
            greedy.modeled_secs > react.modeled_secs,
            "greedy {} vs react {}",
            greedy.modeled_secs,
            react.modeled_secs
        );
        // And 3000 cycles costs 3× the 1000-cycle budget.
        let react3 = at("react-3000", 200);
        assert!((react3.modeled_secs / react.modeled_secs - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig4_shape_quality_ordering() {
        let pts = quick_points();
        let at = |algo: &str, tasks: usize| {
            pts.iter()
                .find(|p| p.algo == algo && p.tasks == tasks)
                .unwrap()
        };
        // Hungarian ≥ greedy ≥ react ≥ metropolis at equal cycles
        // (small tolerance: the heuristics are randomized).
        let hung = at("hungarian", 60).weight;
        let greedy = at("greedy", 60).weight;
        let react = at("react-1000", 60).weight;
        let metro = at("metropolis-1000", 60).weight;
        assert!(hung >= greedy - 1e-9);
        assert!(greedy > react * 0.99);
        assert!(
            react > metro,
            "REACT ({react:.2}) must beat Metropolis ({metro:.2}) at equal cycles"
        );
    }

    #[test]
    fn react_beats_metropolis_with_a_third_of_cycles() {
        // The paper's strongest Fig. 4 claim.
        let pts = quick_points();
        let at = |algo: &str, tasks: usize| {
            pts.iter()
                .find(|p| p.algo == algo && p.tasks == tasks)
                .unwrap()
        };
        let react1k = at("react-1000", 200).weight;
        let metro3k = at("metropolis-3000", 200).weight;
        assert!(
            react1k > metro3k * 0.95,
            "react@1000 ({react1k:.2}) should rival metropolis@3000 ({metro3k:.2})"
        );
    }

    #[test]
    fn report_renders_and_archives() {
        let pts = quick_points();
        let dir = std::env::temp_dir().join("react_fig34_test");
        let text = report(&pts, &OutputSink::to_dir(&dir));
        assert!(text.contains("Figure 3"));
        assert!(text.contains("Figure 4"));
        assert!(dir.join("fig3_fig4_matching.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
