//! The Sec. V-C CrowdFlower case study, regenerated from the synthetic
//! trace.

use crate::report::OutputSink;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react_crowd::{CaseStudySummary, CaseStudyTrace};
use react_metrics::table::pct;
use react_metrics::{KpiReport, KpiRow, Table};

/// Synthesizes a trace of `n` responses and summarizes it.
pub fn run(n: usize, seed: u64) -> CaseStudySummary {
    let mut rng = SmallRng::seed_from_u64(seed);
    CaseStudyTrace::synthesize(n, &mut rng).summarize()
}

/// The case-study summary as a single shared KPI row.
pub fn kpi_rows(summary: &CaseStudySummary) -> Vec<KpiRow> {
    vec![KpiRow::new()
        .int("n_responses", summary.n_responses as i64)
        .pct("kpi.within_20s", summary.fraction_within_20s)
        .pct("kpi.trust_above_half", summary.fraction_trust_above_half)
        .float("kpi.median_response_s", summary.median_response)
        .float("kpi.max_response_s", summary.max_response)]
}

/// Prints the case-study table and archives the CSV.
pub fn report(summary: &CaseStudySummary, sink: &OutputSink) -> String {
    let mut t = Table::new(&["statistic", "paper", "synthetic trace"])
        .with_title("CrowdFlower case study (Sec. V-C)");
    t.add_row(vec![
        "responses within 20 s".to_string(),
        "≈ 50%".to_string(),
        pct(summary.fraction_within_20s),
    ]);
    t.add_row(vec![
        "workers with trust > 0.5".to_string(),
        "≈ 70%".to_string(),
        pct(summary.fraction_trust_above_half),
    ]);
    t.add_row(vec![
        "median response".to_string(),
        "≈ 20 s".to_string(),
        format!("{:.1} s", summary.median_response),
    ]);
    t.add_row(vec![
        "slowest response".to_string(),
        "up to 6 h".to_string(),
        format!("{:.2} h", summary.max_response / 3600.0),
    ]);
    let kpi = KpiReport::from_rows(kpi_rows(summary));
    sink.write("case_study", &kpi.to_csv_rows(None));
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_paper_anchors() {
        let s = run(20_000, 42);
        assert!((s.fraction_within_20s - 0.5).abs() < 0.05);
        assert!((s.fraction_trust_above_half - 0.7).abs() < 0.03);
    }

    #[test]
    fn report_renders() {
        let s = run(5_000, 1);
        let dir = std::env::temp_dir().join("react_case_test");
        let text = report(&s, &OutputSink::to_dir(&dir));
        assert!(text.contains("CrowdFlower"));
        assert!(dir.join("case_study.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
