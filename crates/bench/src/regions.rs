//! Region-execution scalability sweep.
//!
//! Sec. III-A's answer to overload is decomposition: more regions, each
//! with its own server. Regions share no state, so they are also the
//! natural unit of *host* parallelism. This sweep runs the same global
//! workload over 1–16 regions twice — once through the serial
//! [`MultiRegionRunner::run_serial`] baseline and once through the
//! scoped-thread [`MultiRegionRunner::run_parallel`] path — verifying
//! the results are bit-identical and reporting the wall-clock speedup.
//! A companion sweep does the same for the two-phase graph build
//! (`GraphBuilder::instantiate_serial` vs `instantiate_parallel`).
//!
//! Speedup expectations depend on the host: on a single hardware thread
//! (`react_core::par::parallelism() == 1`) the parallel path degrades
//! to ~1× with scheduling overhead; with ≥ 4 cores the 8-region point
//! should exceed 1.5×. The `identical` column must hold everywhere.

// analyze: allow-file(no-wall-clock) — benchmark harness: wall-clock
// timing IS the measurement here, and react-bench has no react-runtime
// dependency to borrow a Stopwatch from.

use crate::report::OutputSink;
use react_core::{
    Config, GraphBuilder, MatcherPolicy, ProfilingComponent, TaskCategory, TaskId,
    TaskManagementComponent, WorkerId,
};
use react_crowd::{MultiRegionRunner, MultiRegionScenario, Scenario};
use react_geo::GeoPoint;
use react_metrics::{KpiReport, KpiRow};
use std::time::Instant;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct RegionSweepParams {
    /// Region grids to sweep, as `(rows, cols)` (defaults cover 1, 2,
    /// 4, 8 and 16 regions).
    pub grids: Vec<(u32, u32)>,
    /// Logical tasks per region (the global workload scales with the
    /// region count so per-server load stays constant).
    pub tasks_per_region: usize,
    /// Workers per region.
    pub workers_per_region: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for RegionSweepParams {
    fn default() -> Self {
        RegionSweepParams {
            grids: vec![(1, 1), (2, 1), (2, 2), (4, 2), (4, 4)],
            tasks_per_region: 120,
            workers_per_region: 30,
            seed: 42,
        }
    }
}

impl RegionSweepParams {
    /// Shortened runs for tests/CI.
    pub fn quick() -> Self {
        RegionSweepParams {
            grids: vec![(1, 1), (2, 2), (4, 2)],
            tasks_per_region: 40,
            workers_per_region: 12,
            seed: 42,
        }
    }
}

/// One region-count measurement.
#[derive(Debug, Clone)]
pub struct RegionSweepPoint {
    /// Number of regions (`rows × cols`).
    pub regions: usize,
    /// Wall-clock seconds of the serial baseline.
    pub serial_secs: f64,
    /// Wall-clock seconds of the scoped-thread path.
    pub parallel_secs: f64,
    /// Whether the two reports were bit-identical (must always hold).
    pub identical: bool,
    /// Area-wide deadline-met count (sanity anchor across paths).
    pub met_deadline: u64,
}

impl RegionSweepPoint {
    /// Serial time over parallel time.
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            1.0
        }
    }
}

/// The multi-region scenario one sweep point runs.
fn sweep_scenario(params: &RegionSweepParams, rows: u32, cols: u32) -> MultiRegionScenario {
    let regions = (rows * cols) as usize;
    let mut global = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, params.seed);
    global.label = format!("regions-{regions}");
    global.n_workers = params.workers_per_region * regions;
    global.arrival_rate = 2.0 * regions as f64;
    global.total_tasks = params.tasks_per_region * regions;
    MultiRegionScenario { global, rows, cols }
}

/// Runs the region-execution sweep.
pub fn run(params: &RegionSweepParams) -> Vec<RegionSweepPoint> {
    params
        .grids
        .iter()
        .map(|&(rows, cols)| {
            let regions = (rows * cols) as usize;
            let runner = MultiRegionRunner::new(sweep_scenario(params, rows, cols));
            let t = Instant::now();
            let serial = runner.run_serial();
            let serial_secs = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let parallel = runner.run_parallel();
            let parallel_secs = t.elapsed().as_secs_f64();
            RegionSweepPoint {
                regions,
                serial_secs,
                parallel_secs,
                identical: serial.identical(&parallel),
                met_deadline: serial.met_deadline(),
            }
        })
        .collect()
}

/// One observability-overhead measurement: the same multi-region
/// workload executed serially twice — once with the default
/// [`react_obs::NullObserver`] and once with a
/// [`react_obs::RecordingObserver`] attached.
#[derive(Debug, Clone)]
pub struct ObservePoint {
    /// Number of regions (`rows × cols`).
    pub regions: usize,
    /// Wall-clock seconds of the NullObserver run.
    pub null_secs: f64,
    /// Wall-clock seconds of the RecordingObserver run.
    pub recording_secs: f64,
    /// Whether the two reports were bit-identical (must always hold:
    /// observers are write-only).
    pub identical: bool,
    /// The recording sink's span/counter/histogram summary.
    pub summary: String,
}

impl ObservePoint {
    /// Observation overhead as a percentage of the NullObserver time.
    /// Noisy for sub-millisecond runs; meaningful at full sweep sizes.
    pub fn overhead_pct(&self) -> f64 {
        if self.null_secs > 0.0 {
            (self.recording_secs / self.null_secs - 1.0) * 100.0
        } else {
            0.0
        }
    }
}

/// Measures the observability overhead across the sweep's grids.
pub fn observe(params: &RegionSweepParams) -> Vec<ObservePoint> {
    use react_obs::RecordingObserver;
    params
        .grids
        .iter()
        .map(|&(rows, cols)| {
            let regions = (rows * cols) as usize;
            let null_runner = MultiRegionRunner::new(sweep_scenario(params, rows, cols));
            let t = Instant::now();
            let baseline = null_runner.run_serial();
            let null_secs = t.elapsed().as_secs_f64();
            let recording = RecordingObserver::new();
            let observed_runner = MultiRegionRunner::new(sweep_scenario(params, rows, cols))
                .with_observer(std::sync::Arc::new(recording.clone()));
            let t = Instant::now();
            let observed = observed_runner.run_serial();
            let recording_secs = t.elapsed().as_secs_f64();
            ObservePoint {
                regions,
                null_secs,
                recording_secs,
                identical: baseline.identical(&observed),
                summary: recording.summary(),
            }
        })
        .collect()
}

/// The observability-overhead measurements as shared KPI rows.
pub fn observe_kpi_rows(points: &[ObservePoint]) -> Vec<KpiRow> {
    points
        .iter()
        .map(|p| {
            KpiRow::new()
                .int("regions", p.regions as i64)
                .float("null_secs", p.null_secs)
                .float("recording_secs", p.recording_secs)
                .float("overhead_pct", p.overhead_pct())
                .flag("identical", p.identical)
        })
        .collect()
}

/// Renders the observability-overhead table (plus the largest run's
/// span/counter catalog) and archives the CSV.
pub fn observe_report(points: &[ObservePoint], sink: &OutputSink) -> String {
    let kpi = KpiReport::from_rows(observe_kpi_rows(points));
    sink.write("observability_overhead", &kpi.to_csv_rows(None));
    let table = kpi.table(
        "Observability — NullObserver vs RecordingObserver (serial)",
        None,
    );
    match points.last() {
        Some(last) => format!(
            "{}\nTelemetry of the {}-region run:\n{}",
            table.render(),
            last.regions,
            last.summary
        ),
        None => table.render(),
    }
}

/// One graph-build measurement.
#[derive(Debug, Clone)]
pub struct BuildSweepPoint {
    /// Worker-pool size.
    pub workers: usize,
    /// Unassigned-task count.
    pub tasks: usize,
    /// Edges in the built graph.
    pub edges: usize,
    /// Wall-clock seconds of the serial phase-B pass.
    pub serial_secs: f64,
    /// Wall-clock seconds of the scoped-thread phase-B pass.
    pub parallel_secs: f64,
    /// Whether both passes produced identical graphs (must hold).
    pub identical: bool,
}

impl BuildSweepPoint {
    /// Serial time over parallel time.
    pub fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            1.0
        }
    }
}

/// Sweeps the two-phase graph build over growing worker pools,
/// comparing serial and parallel phase-B instantiation.
pub fn build_scaling(pool_sizes: &[usize], tasks: usize) -> Vec<BuildSweepPoint> {
    let threads = react_core::par::parallelism();
    let config = Config::with_matcher(MatcherPolicy::React { cycles: 200 });
    pool_sizes
        .iter()
        .map(|&n_workers| {
            let here = GeoPoint::new(37.98, 23.72);
            let mut profiling = ProfilingComponent::default();
            for w in 0..n_workers as u64 {
                profiling.register(WorkerId(w), here).unwrap();
                // Season every worker past training with a spread of
                // latencies so phase A fits real models and Eq. (3)
                // pruning actually runs.
                let base = 1.0 + (w % 7) as f64 * 9.0;
                for s in 0..3u64 {
                    profiling.record_assignment(WorkerId(w)).unwrap();
                    profiling
                        .record_completion(
                            WorkerId(w),
                            TaskCategory((w % 2) as u32),
                            base + s as f64,
                            true,
                        )
                        .unwrap();
                }
            }
            let mut tm = TaskManagementComponent::new();
            for t in 0..tasks as u64 {
                let deadline = 20.0 + (t % 5) as f64 * 30.0;
                tm.submit(
                    react_core::Task::new(
                        TaskId(t),
                        here,
                        deadline,
                        0.05,
                        TaskCategory((t % 2) as u32),
                        "bench",
                    ),
                    0.0,
                )
                .unwrap();
            }
            let builder = GraphBuilder::prepare(&config, &mut profiling);
            let t0 = Instant::now();
            let (serial, _, _, sp) = builder.instantiate_serial(&profiling, &tm, 0.0);
            let serial_secs = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let (parallel, _, _, pp) = builder.instantiate_parallel(&profiling, &tm, 0.0, threads);
            let parallel_secs = t0.elapsed().as_secs_f64();
            BuildSweepPoint {
                workers: n_workers,
                tasks,
                edges: serial.n_edges(),
                serial_secs,
                parallel_secs,
                identical: serial.edges() == parallel.edges() && sp == pp,
            }
        })
        .collect()
}

/// The region-execution measurements as shared KPI rows.
pub fn kpi_rows(points: &[RegionSweepPoint]) -> Vec<KpiRow> {
    points
        .iter()
        .map(|p| {
            KpiRow::new()
                .int("regions", p.regions as i64)
                .float("serial_secs", p.serial_secs)
                .float("parallel_secs", p.parallel_secs)
                .float("speedup", p.speedup())
                .flag("identical", p.identical)
                .int("deadlines.met", p.met_deadline as i64)
        })
        .collect()
}

/// The graph-build measurements as shared KPI rows.
pub fn build_kpi_rows(builds: &[BuildSweepPoint]) -> Vec<KpiRow> {
    builds
        .iter()
        .map(|b| {
            KpiRow::new()
                .int("workers", b.workers as i64)
                .int("tasks", b.tasks as i64)
                .int("edges", b.edges as i64)
                .float("serial_secs", b.serial_secs)
                .float("parallel_secs", b.parallel_secs)
                .float("speedup", b.speedup())
                .flag("identical", b.identical)
        })
        .collect()
}

/// Prints both scalability tables and archives the CSVs.
pub fn report(
    points: &[RegionSweepPoint],
    builds: &[BuildSweepPoint],
    sink: &OutputSink,
) -> String {
    let threads = react_core::par::parallelism();
    let regions_kpi = KpiReport::from_rows(kpi_rows(points));
    sink.write("region_scalability", &regions_kpi.to_csv_rows(None));
    let regions_table = regions_kpi.table(
        &format!("Region execution — serial vs parallel ({threads} thread(s))"),
        None,
    );

    let build_kpi = KpiReport::from_rows(build_kpi_rows(builds));
    sink.write("graph_build_scalability", &build_kpi.to_csv_rows(None));
    let build_table = build_kpi.table(
        &format!("Graph build — serial vs parallel phase B ({threads} thread(s))"),
        None,
    );
    format!("{}\n{}", regions_table.render(), build_table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_sweep_is_deterministic_across_paths() {
        let points = run(&RegionSweepParams::quick());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.identical, "{} regions diverged", p.regions);
            assert!(p.serial_secs > 0.0 && p.parallel_secs > 0.0);
            assert!(p.speedup().is_finite());
            assert!(p.met_deadline > 0);
        }
        assert_eq!(
            points.iter().map(|p| p.regions).collect::<Vec<_>>(),
            vec![1, 4, 8]
        );
    }

    #[test]
    fn observe_sweep_is_write_only_and_reports_telemetry() {
        let mut params = RegionSweepParams::quick();
        params.grids.truncate(2);
        let points = observe(&params);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.identical,
                "{} regions diverged under observation",
                p.regions
            );
            assert!(p.overhead_pct().is_finite());
            assert!(p.summary.contains("tick.match"));
            assert!(p.summary.contains("matcher.cycles"));
        }
        let text = observe_report(&points, &OutputSink::discard());
        assert!(text.contains("Observability"));
        assert!(text.contains("region.run"));
    }

    #[test]
    fn build_sweep_produces_identical_graphs() {
        let builds = build_scaling(&[40, 120], 30);
        for b in &builds {
            assert!(b.identical, "{} workers diverged", b.workers);
            assert!(b.edges > 0, "seasoned pool must instantiate edges");
        }
    }

    #[test]
    fn report_renders_and_archives() {
        let points = run(&RegionSweepParams::quick());
        let builds = build_scaling(&[40], 20);
        let dir = std::env::temp_dir().join("react_regions_test");
        let text = report(&points, &builds, &OutputSink::to_dir(&dir));
        assert!(text.contains("Region execution"));
        assert!(text.contains("Graph build"));
        assert!(dir.join("region_scalability.csv").exists());
        assert!(dir.join("graph_build_scalability.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
