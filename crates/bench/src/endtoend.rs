//! Figures 5–8 — the end-to-end evaluation (Sec. V-C).
//!
//! One region server, 750 workers, tasks at 9.375/s (≈ 8371 total),
//! deadlines 60–120 s, batches at > 10 unassigned tasks, comparing:
//!
//! * **REACT** (Algorithm 1 @ 1000 cycles + the probabilistic model),
//! * **Greedy** (with the probabilistic model, as in the paper),
//! * **Traditional** (AMT-style blind uniform assignment, no model).
//!
//! Paper anchors: REACT finishes 6091 / 8371 before the deadline vs
//! 4264 for Traditional (Fig. 5); positive feedback 4941 vs 3066
//! (Fig. 6); Greedy's cumulative curve rises for ≈ 4200 tasks and then
//! degrades from matching-induced queueing; Traditional's worker
//! execution times are the worst (Fig. 7) and REACT cuts total
//! execution time by up to ≈ 45 % (Fig. 8).

use crate::report::{num, OutputSink};
use react_core::MatcherPolicy;
use react_crowd::{RunReport, Scenario, ScenarioRunner};
use react_metrics::{ascii_chart, ChartSeries, KpiReport, KpiRow};

/// The three policies of the paper's end-to-end comparison.
pub fn paper_policies() -> [MatcherPolicy; 3] {
    [
        MatcherPolicy::React { cycles: 1000 },
        MatcherPolicy::Greedy,
        MatcherPolicy::Traditional,
    ]
}

/// Parameters for the end-to-end comparison.
#[derive(Debug, Clone)]
pub struct EndToEndParams {
    /// Worker count (paper: 750).
    pub n_workers: usize,
    /// Total tasks (paper: 8371).
    pub total_tasks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EndToEndParams {
    fn default() -> Self {
        EndToEndParams {
            n_workers: 750,
            total_tasks: 8371,
            seed: 42,
        }
    }
}

impl EndToEndParams {
    /// Reduced setup for tests/CI.
    pub fn quick() -> Self {
        EndToEndParams {
            n_workers: 80,
            total_tasks: 400,
            seed: 42,
        }
    }
}

/// Runs the three-policy comparison.
pub fn run(params: &EndToEndParams) -> Vec<RunReport> {
    paper_policies()
        .into_iter()
        .map(|policy| {
            let mut sc = Scenario::paper_fig5(policy, params.seed);
            sc.n_workers = params.n_workers;
            sc.total_tasks = params.total_tasks;
            // Keep the arrival rate proportional when scaled down so the
            // load regime matches the paper's.
            sc.arrival_rate *= params.n_workers as f64 / 750.0;
            ScenarioRunner::new(sc).run()
        })
        .collect()
}

/// The comparison as shared KPI rows (one schema serves the summary
/// table, the CSV and the experiment suite). Counter-backed columns use
/// the obs-catalog names.
pub fn kpi_rows(reports: &[RunReport]) -> Vec<KpiRow> {
    reports
        .iter()
        .map(|r| {
            KpiRow::new()
                .label("policy", r.matcher_name)
                .int("kpi.received", r.received as i64)
                .int("deadlines.met", r.met_deadline as i64)
                .pct("kpi.deadline_hit_rate", r.deadline_ratio())
                .int("feedback.positive", r.positive_feedback as i64)
                .pct("kpi.positive_rate", r.positive_ratio())
                .int("tasks.reassigned", r.reassignments as i64)
                .float("kpi.avg_exec_s", r.avg_exec_time())
                .float("kpi.avg_total_s", r.avg_total_time())
                .float("matching.seconds", r.total_matching_seconds)
                .int("batches.run", r.batches as i64)
        })
        .collect()
}

/// Prints the Figs. 5–8 tables and archives CSVs (summary + the two
/// cumulative curves, thinned to ≤ 200 points each).
pub fn report(reports: &[RunReport], sink: &OutputSink) -> String {
    let kpi = KpiReport::from_rows(kpi_rows(reports));
    sink.write("fig5_8_summary", &kpi.to_csv_rows(None));
    let summary = kpi.table("Figures 5-8 — end-to-end comparison", None);

    // Curve CSVs (Figs. 5 and 6).
    for (name, series_of) in [
        ("fig5_deadline_curve", 0usize),
        ("fig6_feedback_curve", 1usize),
    ] {
        let mut rows = vec![vec![
            "policy".to_string(),
            "received".to_string(),
            "cumulative".to_string(),
        ]];
        for r in reports {
            let series = if series_of == 0 {
                &r.series_met
            } else {
                &r.series_positive
            };
            for (x, y) in series.thin(200) {
                rows.push(vec![r.matcher_name.to_string(), num(x), num(y)]);
            }
        }
        sink.write(name, &rows);
    }

    let mut out = summary.render();
    // Terminal rendition of the Fig. 5 curves (thinned).
    let thinned: Vec<(&str, Vec<(f64, f64)>)> = reports
        .iter()
        .map(|r| (r.matcher_name, r.series_met.thin(120)))
        .collect();
    let series: Vec<ChartSeries<'_>> = thinned
        .iter()
        .map(|(name, points)| ChartSeries { name, points })
        .collect();
    out.push('\n');
    out.push_str(&ascii_chart(
        "Figure 5 — cumulative tasks before deadline (y) vs tasks received (x)",
        &series,
        72,
        18,
    ));
    // Headline comparisons the paper calls out in its abstract.
    if let (Some(react), Some(trad)) = (
        reports.iter().find(|r| r.matcher_name == "react"),
        reports.iter().find(|r| r.matcher_name == "traditional"),
    ) {
        if trad.met_deadline > 0 {
            out.push_str(&format!(
                "\nREACT meets {} deadlines vs Traditional {} → {:.0}% more tasks in time \
                 (paper: 6091 vs 4264, \"up to 61%\")\n",
                react.met_deadline,
                trad.met_deadline,
                100.0 * (react.met_deadline as f64 / trad.met_deadline as f64 - 1.0)
            ));
        }
        if trad.avg_total_time() > 0.0 {
            out.push_str(&format!(
                "REACT average total time {:.1}s vs Traditional {:.1}s → {:.0}% reduction \
                 (paper: \"up to 45%\")\n",
                react.avg_total_time(),
                trad.avg_total_time(),
                100.0 * (1.0 - react.avg_total_time() / trad.avg_total_time())
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_reports() -> Vec<RunReport> {
        run(&EndToEndParams::quick())
    }

    #[test]
    fn three_policies_run() {
        let rs = quick_reports();
        assert_eq!(rs.len(), 3);
        let names: Vec<&str> = rs.iter().map(|r| r.matcher_name).collect();
        assert_eq!(names, vec!["react", "greedy", "traditional"]);
        for r in &rs {
            assert_eq!(r.received, 400);
            assert!(r.completed > 0);
        }
    }

    #[test]
    fn fig5_shape_react_beats_traditional() {
        let rs = quick_reports();
        let react = &rs[0];
        let trad = &rs[2];
        assert!(
            react.met_deadline > trad.met_deadline,
            "react {} vs traditional {}",
            react.met_deadline,
            trad.met_deadline
        );
    }

    #[test]
    fn fig6_shape_react_earns_more_positive_feedback() {
        let rs = quick_reports();
        assert!(rs[0].positive_feedback > rs[2].positive_feedback);
    }

    #[test]
    fn fig7_fig8_shape_traditional_slowest() {
        let rs = quick_reports();
        let react = &rs[0];
        let trad = &rs[2];
        assert!(
            trad.avg_exec_time() > react.avg_exec_time(),
            "traditional exec {:.1} must exceed react {:.1}",
            trad.avg_exec_time(),
            react.avg_exec_time()
        );
        assert!(trad.avg_total_time() > react.avg_total_time());
    }

    #[test]
    fn report_renders_and_archives() {
        let rs = quick_reports();
        let dir = std::env::temp_dir().join("react_e2e_test");
        let text = report(&rs, &OutputSink::to_dir(&dir));
        assert!(text.contains("Figures 5-8"));
        assert!(text.contains("more tasks in time"));
        assert!(dir.join("fig5_8_summary.csv").exists());
        assert!(dir.join("fig5_deadline_curve.csv").exists());
        assert!(dir.join("fig6_feedback_curve.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
