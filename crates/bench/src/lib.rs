//! Experiment harness regenerating every evaluation figure of
//! *"Crowdsourcing under Real-Time Constraints"*.
//!
//! Each module regenerates one part of the paper's evaluation (see the
//! experiment index in `DESIGN.md`); the `react-experiments` binary
//! drives them from the command line and archives CSVs under
//! `results/`:
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig34`] | Fig. 3 (matching time) and Fig. 4 (matching weight) |
//! | [`endtoend`] | Figs. 5–8 (deadline curve, feedback curve, execution times) |
//! | [`sweep`] | Figs. 9–10 (scalability sweep) |
//! | [`regions`] | serial-vs-parallel region execution and graph build |
//! | [`hotpath`] | scheduling hot-path micro-benchmarks (no paper counterpart: cold vs incremental graph build, matcher cycles/s, tick throughput → `BENCH_hotpath.json`) |
//! | [`casestudy`] | the Sec. V-C CrowdFlower case-study statistics |
//! | [`ablation`] | the design-choice ablations listed in `DESIGN.md` |
//! | [`chaos`] | fault-injection sweep (no paper counterpart: REACT vs baselines under worker dropout, stragglers, message loss) |
//! | [`cluster`] | sharded cluster-mode scaling sweep (no paper counterpart: ticks/sec across 1–16 shards + fallback identities → `BENCH_cluster.json`) |

#![warn(missing_docs)]

pub mod ablation;
pub mod casestudy;
pub mod chaos;
pub mod cluster;
pub mod endtoend;
pub mod fig34;
pub mod hotpath;
pub mod regions;
pub mod report;
pub mod sweep;
