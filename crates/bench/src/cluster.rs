//! Cluster scaling sweep (`BENCH_cluster.json`).
//!
//! Two measurements of the sharded cluster mode:
//!
//! 1. **Shard scaling** — end-to-end cluster ticks/second (submit →
//!    route → per-shard batch → commit → complete, plus the handoff and
//!    rebalance passes) for growing worker pools across 1–16 shards.
//!    Matching cost is quadratic in per-shard membership, so with the
//!    same workload an `S`-shard cluster does ~`1/S` the edge work of a
//!    monolith — the sweep should show near-linear throughput scaling
//!    even with the shards ticking *serially*.
//! 2. **Fallback identity** — the degenerate single-tier mode must
//!    reproduce `react_crowd::MultiRegionRunner` bit-for-bit, the
//!    coupled mode must conserve every task, and serial vs parallel
//!    shard execution must be bit-identical.
//!
//! The `react-experiments cluster` subcommand renders the tables and
//! archives the machine-readable summary as `BENCH_cluster.json` at the
//! repository root.

// analyze: allow-file(no-wall-clock) — benchmark harness: wall-clock
// timing IS the measurement here, and react-bench has no react-runtime
// dependency to borrow a Stopwatch from.

use crate::report::OutputSink;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react_cluster::{
    grid_cluster, AdmissionPolicy, ClusterPolicy, ClusterRunner, ClusterScenario, HandoffPolicy,
    RebalancePolicy, Submission,
};
use react_core::{BatchTrigger, Config, MatcherPolicy, Task, TaskCategory, TaskId};
use react_crowd::{MultiRegionRunner, MultiRegionScenario, Scenario};
use react_geo::BoundingBox;
use react_metrics::{write_stamped, ArtifactOutcome, KpiReport, KpiRow, Provenance};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Worker-pool sizes to sweep (cluster-wide totals).
    pub pools: Vec<usize>,
    /// Shard grids to sweep (`rows × cols` = shard count).
    pub grids: Vec<(u32, u32)>,
    /// Cluster ticks driven per point.
    pub ticks: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            pools: vec![300, 600, 1200],
            grids: vec![(1, 1), (1, 2), (2, 2), (2, 4), (4, 4)],
            ticks: 60,
            seed: 42,
        }
    }
}

impl ClusterParams {
    /// Shortened sweep for tests/CI (still spans 1–8 shards).
    pub fn quick() -> Self {
        ClusterParams {
            pools: vec![120, 300],
            grids: vec![(1, 1), (2, 2), (2, 4)],
            ticks: 24,
            seed: 42,
        }
    }
}

/// One (pool, grid) throughput measurement.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Cluster-wide worker-pool size.
    pub workers: usize,
    /// Shard count (= rows × cols; no splitting in the sweep).
    pub shards: usize,
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Tasks submitted per cluster tick.
    pub tasks_per_tick: usize,
    /// Cluster ticks per wall second (shards ticking serially).
    pub ticks_per_sec: f64,
    /// Tasks completed over the drive.
    pub completed: u64,
    /// Cross-shard handoffs performed.
    pub handoffs: u64,
    /// Workers relocated by the rebalance passes.
    pub rebalanced: u64,
    /// Tasks refused at the admission caps.
    pub admission_shed: u64,
    /// Whether every submitted task is accounted for (must hold).
    pub conserved: bool,
}

/// The fallback identity checks (run once per report).
#[derive(Debug, Clone)]
pub struct FallbackPoint {
    /// Single-tier cluster run ≡ `MultiRegionRunner`, bit-for-bit.
    pub single_tier_identical: bool,
    /// The coupled run satisfies the conservation identity.
    pub coupled_conserved: bool,
    /// Serial and parallel shard execution are bit-identical.
    pub serial_parallel_identical: bool,
}

/// The cluster sweep report.
#[derive(Debug, Clone)]
pub struct ClusterBenchReport {
    /// Throughput points, pool-major then grid order.
    pub scaling: Vec<ScalingPoint>,
    /// The fallback identity checks.
    pub fallback: FallbackPoint,
    /// Whether the quick parameter set produced this report.
    pub quick: bool,
}

impl ClusterBenchReport {
    /// Throughput of `shards` shards over 1 shard at the largest pool
    /// (the headline scaling number), when both points exist.
    pub fn speedup_over_monolith(&self, shards: usize) -> Option<f64> {
        let pool = self.scaling.iter().map(|p| p.workers).max()?;
        let tps = |n: usize| {
            self.scaling
                .iter()
                .find(|p| p.workers == pool && p.shards == n)
                .map(|p| p.ticks_per_sec)
        };
        Some(tps(shards)? / tps(1)?.max(1e-9))
    }
}

/// The covered area; grids subdivide it into equal shard cells.
fn area() -> BoundingBox {
    BoundingBox::new(0.0, 4.0, 0.0, 4.0).expect("static bounds")
}

/// The standard bench config: REACT matcher, eager batch trigger, free
/// matching time (ticks measure wall throughput, not modelled delay).
fn bench_config() -> Config {
    let mut config = Config::with_matcher(MatcherPolicy::React { cycles: 200 });
    config.batch = BatchTrigger {
        min_unassigned: 1,
        period: None,
    };
    config.charge_matching_time = false;
    config
}

/// The sweep policy: all three cluster mechanisms live (so their pass
/// overhead is part of the measurement), no splitting (shard count stays
/// exactly `rows × cols`), admission cap far above the steady-state
/// queue (uniform load should not shed).
fn sweep_policy() -> ClusterPolicy {
    ClusterPolicy {
        split_threshold: u64::MAX,
        handoff: Some(HandoffPolicy {
            pool_floor: 3,
            max_per_tick: 8,
        }),
        rebalance: Some(RebalancePolicy {
            period_ticks: 5,
            min_idle: 2,
            max_moves: 4,
        }),
        admission: Some(AdmissionPolicy {
            max_open_tasks: 4096,
        }),
    }
}

/// Drives one cluster through the tick loop: every tick submits a
/// pool-scaled batch of tasks, runs the full cluster control step
/// (serial shard ticking, so scaling is algorithmic rather than
/// thread-count), and immediately completes whatever got assigned with
/// per-worker latencies. Mirrors `hotpath::drive_ticks` at cluster
/// scale.
fn measure(pool: usize, rows: u32, cols: u32, ticks: usize, seed: u64) -> ScalingPoint {
    use react_core::WorkerId;
    let mut cluster = grid_cluster(
        area(),
        rows,
        cols,
        bench_config(),
        seed,
        sweep_policy(),
        SmallRng::seed_from_u64(seed ^ 0x5eba),
    )
    .expect("bench config is valid");
    let mut place_rng = SmallRng::seed_from_u64(seed ^ pool as u64);
    for w in 0..pool as u64 {
        let location = area().random_point(&mut place_rng);
        cluster.register_worker(WorkerId(w), location);
    }
    let tasks_per_tick = (pool / 12).max(2);
    let mut task_rng = SmallRng::seed_from_u64(seed ^ 0x7a5c ^ pool as u64);
    let mut next_task = 0u64;
    let mut submitted = 0u64;
    let mut shed = 0u64;
    let mut completed = 0u64;
    let mut retired = 0u64;

    let t0 = Instant::now();
    for step in 0..ticks {
        let now = step as f64;
        for _ in 0..tasks_per_tick {
            let task = Task::new(
                TaskId(next_task),
                area().random_point(&mut task_rng),
                90.0 + (next_task % 4) as f64 * 30.0,
                0.05,
                TaskCategory((next_task % 2) as u32),
                "bench",
            );
            next_task += 1;
            match cluster.submit_task(task, now) {
                Submission::Accepted(_) => submitted += 1,
                Submission::Shed(_) => shed += 1,
                Submission::Unroutable => {}
            }
        }
        let outcome = cluster.tick_serial(now);
        for (server, tick) in &outcome.shard_ticks {
            retired += (tick.expired.len() + tick.shed.len()) as u64;
            for &(worker, task) in &tick.assignments {
                // Sub-tick completion latency keyed to the worker, so
                // the estimators see a spread and keep their fits warm.
                let exec = 0.1 + 0.1 * (worker.0 % 7) as f64;
                if cluster
                    .complete_task(*server, task, worker, now + exec, true)
                    .is_ok()
                {
                    completed += 1;
                }
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();

    let open_end: usize = cluster
        .server_ids()
        .iter()
        .map(|&id| {
            cluster
                .server(id)
                .expect("shard exists")
                .tasks()
                .open_count()
        })
        .sum();
    let admission_shed: u64 = cluster.admission_shed().iter().sum();
    ScalingPoint {
        workers: pool,
        shards: cluster.shard_count(),
        rows,
        cols,
        tasks_per_tick,
        ticks_per_sec: ticks as f64 / secs.max(1e-9),
        completed,
        handoffs: cluster.handoffs_out().iter().sum(),
        rebalanced: cluster.workers_rebalanced(),
        admission_shed,
        conserved: submitted == completed + retired + open_end as u64 && shed == admission_shed,
    }
}

/// The shard-scaling sweep: every pool against every grid.
pub fn scaling(params: &ClusterParams) -> Vec<ScalingPoint> {
    let mut points = Vec::new();
    for &pool in &params.pools {
        for &(rows, cols) in &params.grids {
            points.push(measure(pool, rows, cols, params.ticks, params.seed));
        }
    }
    points
}

/// The fallback identity checks, on the smoke-scenario scale.
pub fn fallback(seed: u64, quick: bool) -> FallbackPoint {
    let (n_workers, total_tasks) = if quick { (30, 90) } else { (60, 240) };
    let mut global = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
    global.n_workers = n_workers;
    global.arrival_rate = 4.0;
    global.total_tasks = total_tasks;

    let single = ClusterScenario {
        global: global.clone(),
        rows: 2,
        cols: 2,
        policy: ClusterPolicy::single_tier(),
    };
    let from_cluster = ClusterRunner::new(single).run_single_tier();
    let from_multi = MultiRegionRunner::new(MultiRegionScenario {
        global: global.clone(),
        rows: 2,
        cols: 2,
    })
    .run_serial();
    let single_tier_identical = from_cluster.identical(&from_multi);

    let coupled = ClusterScenario {
        global,
        rows: 2,
        cols: 2,
        policy: ClusterPolicy::coupled(),
    };
    let runner = ClusterRunner::new(coupled);
    let serial = runner.run_serial();
    let parallel = runner.run_parallel();
    FallbackPoint {
        single_tier_identical,
        coupled_conserved: serial.conserved(),
        serial_parallel_identical: serial.identical(&parallel),
    }
}

/// Runs both measurements.
pub fn run(params: &ClusterParams, quick: bool) -> ClusterBenchReport {
    ClusterBenchReport {
        scaling: scaling(params),
        fallback: fallback(params.seed, quick),
        quick,
    }
}

/// The canonical location of the benchmark artifact: the repository
/// root, next to `ROADMAP.md`.
pub fn default_json_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cluster.json")
}

/// Serializes the report as the `BENCH_cluster.json` document
/// (hand-rolled JSON; the workspace carries no serializer dependency).
pub fn to_json(report: &ClusterBenchReport) -> String {
    to_json_with(report, None)
}

/// [`to_json`] with an optional embedded provenance stamp.
pub fn to_json_with(report: &ClusterBenchReport, provenance: Option<&Provenance>) -> String {
    let scaling: Vec<String> = report
        .scaling
        .iter()
        .map(|p| {
            format!(
                "    {{\"workers\": {}, \"shards\": {}, \"grid\": \"{}x{}\", \
                 \"tasks_per_tick\": {}, \"ticks_per_sec\": {:.1}, \
                 \"completed\": {}, \"handoffs\": {}, \"rebalanced\": {}, \
                 \"admission_shed\": {}, \"conserved\": {}}}",
                p.workers,
                p.shards,
                p.rows,
                p.cols,
                p.tasks_per_tick,
                p.ticks_per_sec,
                p.completed,
                p.handoffs,
                p.rebalanced,
                p.admission_shed,
                p.conserved
            )
        })
        .collect();
    let stamp = provenance.map_or(String::new(), |p| {
        format!("  \"provenance\": {},\n", p.to_json())
    });
    format!(
        "{{\n  \"schema\": \"react-cluster-v1\",\n{}  \"quick\": {},\n  \
         \"threads\": {},\n  \"scaling\": [\n{}\n  ],\n  \
         \"fallback\": {{\"single_tier_identical\": {}, \
         \"coupled_conserved\": {}, \"serial_parallel_identical\": {}, \
         \"speedup_8_over_1\": {:.3}}}\n}}\n",
        stamp,
        report.quick,
        react_core::par::parallelism(),
        scaling.join(",\n"),
        report.fallback.single_tier_identical,
        report.fallback.coupled_conserved,
        report.fallback.serial_parallel_identical,
        report.speedup_over_monolith(8).unwrap_or(0.0)
    )
}

/// Writes the JSON artifact, creating parent directories as needed.
pub fn write_json(report: &ClusterBenchReport, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, to_json(report))
}

/// Writes the JSON artifact with an embedded provenance stamp, backing
/// up a differing prior artifact as `<stem>.prev.json` instead of
/// silently overwriting it.
pub fn write_json_stamped(
    report: &ClusterBenchReport,
    path: &Path,
    provenance: &Provenance,
) -> std::io::Result<ArtifactOutcome> {
    write_stamped(path, &to_json_with(report, Some(provenance)))
}

/// The shard-scaling points as shared KPI rows. Counter-backed columns
/// use the obs-catalog names.
pub fn kpi_rows(points: &[ScalingPoint]) -> Vec<KpiRow> {
    points
        .iter()
        .map(|p| {
            KpiRow::new()
                .int("workers", p.workers as i64)
                .int("shards", p.shards as i64)
                .label("grid", format!("{}x{}", p.rows, p.cols))
                .int("tasks_per_tick", p.tasks_per_tick as i64)
                .float("kpi.ticks_per_sec", p.ticks_per_sec)
                .int("tasks.completed", p.completed as i64)
                .int("shard.handoffs", p.handoffs as i64)
                .int("shard.workers_rebalanced", p.rebalanced as i64)
                .int("shard.admission_shed", p.admission_shed as i64)
                .flag("conserved", p.conserved)
        })
        .collect()
}

/// The fallback identity checks as shared KPI rows (one per check).
pub fn fallback_kpi_rows(fallback: &FallbackPoint) -> Vec<KpiRow> {
    [
        ("single_tier_identical", fallback.single_tier_identical),
        ("coupled_conserved", fallback.coupled_conserved),
        (
            "serial_parallel_identical",
            fallback.serial_parallel_identical,
        ),
    ]
    .into_iter()
    .map(|(name, holds)| KpiRow::new().label("check", name).flag("holds", holds))
    .collect()
}

/// Renders the tables and archives the CSVs.
pub fn render(report: &ClusterBenchReport, sink: &OutputSink) -> String {
    let scaling_kpi = KpiReport::from_rows(kpi_rows(&report.scaling));
    sink.write("cluster_scaling", &scaling_kpi.to_csv_rows(None));
    let scaling_table = scaling_kpi.table(
        "Cluster — ticks/sec by shard count (serial shard execution)",
        None,
    );

    let fallback_kpi = KpiReport::from_rows(fallback_kpi_rows(&report.fallback));
    sink.write("cluster_fallback", &fallback_kpi.to_csv_rows(None));
    let fallback_table = fallback_kpi.table("Cluster — fallback and determinism identities", None);

    let speedup = report
        .speedup_over_monolith(8)
        .map_or("n/a".to_string(), |s| format!("{s:.2}x"));
    format!(
        "{}\n{}\n# 8-shard speedup over monolith at largest pool: {}",
        scaling_table.render(),
        fallback_table.render(),
        speedup
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ClusterParams {
        ClusterParams {
            pools: vec![40, 80],
            grids: vec![(1, 1), (2, 2)],
            ticks: 10,
            seed: 42,
        }
    }

    #[test]
    fn scaling_points_conserve_and_progress() {
        for p in scaling(&tiny()) {
            assert!(p.conserved, "{}w/{}s not conserved", p.workers, p.shards);
            assert!(p.ticks_per_sec > 0.0);
            assert!(
                p.completed > 0,
                "{}w/{}s completed nothing",
                p.workers,
                p.shards
            );
        }
    }

    #[test]
    fn fallback_identities_hold() {
        let f = fallback(42, true);
        assert!(
            f.single_tier_identical,
            "single-tier must match multiregion"
        );
        assert!(f.coupled_conserved, "coupled run must conserve");
        assert!(f.serial_parallel_identical, "shard exec paths must agree");
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let report = run(&tiny(), true);
        let json = to_json(&report);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for key in [
            "\"schema\"",
            "\"scaling\"",
            "\"fallback\"",
            "\"speedup_8_over_1\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches("\"workers\"").count(), 4, "2 pools × 2 grids");
        let dir = std::env::temp_dir().join("react_cluster_bench_test");
        let path = dir.join("BENCH_cluster.json");
        write_json(&report, &path).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_archives_csvs() {
        let report = run(&tiny(), true);
        let dir = std::env::temp_dir().join("react_cluster_bench_render_test");
        let text = render(&report, &OutputSink::to_dir(&dir));
        assert!(text.contains("Cluster"));
        assert!(text.contains("fallback") || text.contains("identities"));
        for csv in ["cluster_scaling", "cluster_fallback"] {
            assert!(dir.join(format!("{csv}.csv")).exists(), "{csv} missing");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
