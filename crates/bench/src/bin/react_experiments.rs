//! `react-experiments` — regenerate every figure of the REACT paper.
//!
//! ```text
//! USAGE: react-experiments [COMMAND] [--quick] [--seed N] [--out DIR] [--no-csv] [--observe]
//!
//! COMMANDS
//!   fig3, fig4      matching time / matching weight micro-benchmarks
//!   fig5 … fig8     end-to-end comparison (one run serves all four)
//!   fig9, fig10     scalability sweep
//!   regions         serial vs parallel region execution / graph build
//!   hotpath         scheduling hot-path micro-benchmarks (BENCH_hotpath.json)
//!   case            CrowdFlower case-study statistics
//!   ablation        all design-choice ablations
//!   chaos           fault-injection sweep (deadline misses + recovery latency)
//!   cluster         sharded cluster-mode scaling sweep (BENCH_cluster.json)
//!   all             everything above (default)
//!
//! OPTIONS
//!   --quick         reduced sizes (seconds instead of minutes)
//!   --seed N        master RNG seed (default 42)
//!   --out DIR       CSV output directory (default results/)
//!   --no-csv        don't write CSVs
//!   --observe       (regions) also measure NullObserver vs
//!                   RecordingObserver overhead and print the telemetry
//! ```
//!
//! Run with `--release`; the full suite at paper scale takes a few
//! minutes, `--quick` a few seconds.

use react_bench::{
    ablation, casestudy, chaos, cluster, endtoend, fig34, hotpath, regions, report::OutputSink,
    sweep,
};
use std::process::ExitCode;

#[derive(Debug)]
struct Cli {
    command: String,
    quick: bool,
    seed: u64,
    observe: bool,
    sink: OutputSink,
}

fn parse_args() -> Result<Cli, String> {
    let mut command: Option<String> = None;
    let mut quick = false;
    let mut observe = false;
    let mut seed = 42u64;
    let mut out: Option<String> = Some("results".to_string());
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--observe" => observe = true,
            "--no-csv" => out = None,
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
            }
            "--out" => {
                let v = args.next().ok_or("--out needs a value")?;
                out = Some(v);
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            c if !c.starts_with('-') && command.is_none() => command = Some(c.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(Cli {
        command: command.unwrap_or_else(|| "all".to_string()),
        quick,
        seed,
        observe,
        sink: out.map_or_else(OutputSink::discard, OutputSink::to_dir),
    })
}

const USAGE: &str = "usage: react-experiments \
[fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|regions|hotpath|case|ablation|chaos|cluster|all] \
[--quick] [--seed N] [--out DIR] [--no-csv] [--observe]";

fn run_fig34(cli: &Cli) {
    let mut params = if cli.quick {
        fig34::Fig34Params::quick()
    } else {
        fig34::Fig34Params::default()
    };
    params.seed = cli.seed;
    println!("{}", fig34::report(&fig34::run(&params), &cli.sink));
}

fn run_endtoend(cli: &Cli) {
    let mut params = if cli.quick {
        endtoend::EndToEndParams::quick()
    } else {
        endtoend::EndToEndParams::default()
    };
    params.seed = cli.seed;
    println!("{}", endtoend::report(&endtoend::run(&params), &cli.sink));
}

fn run_sweep(cli: &Cli) {
    let mut params = if cli.quick {
        sweep::SweepParams::quick()
    } else {
        sweep::SweepParams::default()
    };
    params.seed = cli.seed;
    println!("{}", sweep::report(&sweep::run(&params), &cli.sink));
}

fn run_regions(cli: &Cli) {
    let mut params = if cli.quick {
        regions::RegionSweepParams::quick()
    } else {
        regions::RegionSweepParams::default()
    };
    params.seed = cli.seed;
    let points = regions::run(&params);
    let pools: &[usize] = if cli.quick {
        &[40, 120]
    } else {
        &[100, 300, 1000]
    };
    let builds = regions::build_scaling(pools, if cli.quick { 30 } else { 100 });
    println!("{}", regions::report(&points, &builds, &cli.sink));
    if cli.observe {
        let observed = regions::observe(&params);
        println!("{}", regions::observe_report(&observed, &cli.sink));
    }
}

fn run_hotpath(cli: &Cli) {
    let mut params = if cli.quick {
        hotpath::HotpathParams::quick()
    } else {
        hotpath::HotpathParams::default()
    };
    params.seed = cli.seed;
    let report = hotpath::run(&params, cli.quick);
    println!("{}", hotpath::render(&report, &cli.sink));
    let path = hotpath::default_json_path();
    match hotpath::write_json(&report, &path) {
        Ok(()) => println!("# JSON → {}", path.display()),
        Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
    }
}

fn run_cluster(cli: &Cli) {
    let mut params = if cli.quick {
        cluster::ClusterParams::quick()
    } else {
        cluster::ClusterParams::default()
    };
    params.seed = cli.seed;
    let report = cluster::run(&params, cli.quick);
    println!("{}", cluster::render(&report, &cli.sink));
    let path = cluster::default_json_path();
    match cluster::write_json(&report, &path) {
        Ok(()) => println!("# JSON → {}", path.display()),
        Err(e) => eprintln!("# failed to write {}: {e}", path.display()),
    }
}

fn run_chaos(cli: &Cli) {
    let mut params = if cli.quick {
        chaos::ChaosParams::quick()
    } else {
        chaos::ChaosParams::default()
    };
    params.seed = cli.seed;
    println!("{}", chaos::report(&chaos::run(&params), &cli.sink));
}

fn run_case(cli: &Cli) {
    let n = if cli.quick { 5_000 } else { 50_000 };
    println!(
        "{}",
        casestudy::report(&casestudy::run(n, cli.seed), &cli.sink)
    );
}

fn run_ablation(cli: &Cli) {
    let mut params = if cli.quick {
        ablation::AblationParams::quick()
    } else {
        ablation::AblationParams::default()
    };
    params.seed = cli.seed;
    println!("{}", ablation::conflict_rule(&params, &cli.sink));
    println!("{}", ablation::adaptive_cycles(&params, &cli.sink));
    println!("{}", ablation::edge_threshold(&params, &cli.sink));
    ablation::reassign_threshold(&params, &cli.sink);
    println!("{}", ablation::weight_function(&params, &cli.sink));
    println!("{}", ablation::batch_trigger(&params, &cli.sink));
    println!("{}", ablation::frontier(&params, &cli.sink));
    println!("{}", ablation::region_decomposition(&params, &cli.sink));
    println!("{}", ablation::latency_model(&params, &cli.sink));
    println!("{}", ablation::model_kind(&params, &cli.sink));
    println!("{}", ablation::replication(&params, &cli.sink));
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = cli.sink.dir() {
        println!("# CSVs → {}/\n", dir.display());
    }
    match cli.command.as_str() {
        "fig3" | "fig4" => run_fig34(&cli),
        "fig5" | "fig6" | "fig7" | "fig8" => run_endtoend(&cli),
        "fig9" | "fig10" => run_sweep(&cli),
        "regions" => run_regions(&cli),
        "hotpath" => run_hotpath(&cli),
        "case" => run_case(&cli),
        "ablation" => run_ablation(&cli),
        "chaos" => run_chaos(&cli),
        "cluster" => run_cluster(&cli),
        "all" => {
            run_fig34(&cli);
            run_endtoend(&cli);
            run_sweep(&cli);
            run_regions(&cli);
            run_hotpath(&cli);
            run_case(&cli);
            run_ablation(&cli);
            run_chaos(&cli);
            run_cluster(&cli);
        }
        other => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
