//! Criterion bench for the ablation frontier — the cost side of the
//! quality-vs-time trade-off between the exact, near-optimal and
//! heuristic matchers (quality numbers come from
//! `react-experiments ablation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react_matching::{
    AuctionMatcher, BipartiteGraph, GreedyMatcher, HungarianMatcher, Matcher, ReactMatcher,
};
use std::hint::black_box;

fn bench_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_frontier");
    group.sample_size(10);
    for &side in &[50usize, 150] {
        let mut w_rng = SmallRng::seed_from_u64(7);
        let graph = BipartiteGraph::full(side, side, |_, _| w_rng.gen::<f64>()).expect("valid");
        let matchers: Vec<(&str, Box<dyn Matcher>)> = vec![
            ("hungarian", Box::new(HungarianMatcher)),
            ("auction", Box::new(AuctionMatcher::default())),
            ("greedy", Box::new(GreedyMatcher)),
            ("react-1000", Box::new(ReactMatcher::with_cycles(1000))),
            (
                "react-adaptive",
                Box::new(ReactMatcher::adaptive(&graph, 0.2)),
            ),
        ];
        for (name, matcher) in matchers {
            group.bench_with_input(BenchmarkId::new(name, side), &graph, |b, g| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(1);
                    black_box(matcher.assign(g, &mut rng))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_frontier);
criterion_main!(benches);
