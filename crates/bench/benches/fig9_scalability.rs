//! Criterion bench for Figs. 9–10 — simulation cost across the paper's
//! scalability sweep endpoints (the full 5-point ratio sweep is
//! `react-experiments fig9`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use react_core::MatcherPolicy;
use react_crowd::{Scenario, ScenarioRunner};
use std::hint::black_box;

fn bench_sweep_points(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_scalability");
    group.sample_size(10);
    for &(workers, rate) in &[(100usize, 1.5f64), (500, 6.25)] {
        for (policy, name) in [
            (MatcherPolicy::React { cycles: 1000 }, "react"),
            (MatcherPolicy::Traditional, "traditional"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, workers),
                &(workers, rate, policy),
                |b, &(workers, rate, policy)| {
                    b.iter(|| {
                        let mut sc = Scenario::paper_fig9(workers, rate, policy, 42);
                        sc.total_tasks = sc.total_tasks.min(600);
                        black_box(ScenarioRunner::new(sc).run())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_points);
criterion_main!(benches);
