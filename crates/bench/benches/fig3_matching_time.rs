//! Criterion bench for Fig. 3 — wall-clock matching time of each WBGM
//! algorithm on full bipartite graphs of growing size (this Rust
//! implementation; the paper-calibrated *modelled* times are printed by
//! `react-experiments fig3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react_matching::{BipartiteGraph, GreedyMatcher, Matcher, MetropolisMatcher, ReactMatcher};
use std::hint::black_box;

fn full_graph(workers: usize, tasks: usize) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(42);
    BipartiteGraph::full(workers, tasks, |_, _| rng.gen::<f64>()).expect("valid")
}

fn bench_matching_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_matching_time");
    group.sample_size(10);
    for &tasks in &[100usize, 400, 1000] {
        let graph = full_graph(1000, tasks);
        group.bench_with_input(BenchmarkId::new("greedy", tasks), &graph, |b, g| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                black_box(GreedyMatcher.assign(g, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("react-1000", tasks), &graph, |b, g| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                black_box(ReactMatcher::with_cycles(1000).assign(g, &mut rng))
            })
        });
        group.bench_with_input(BenchmarkId::new("react-3000", tasks), &graph, |b, g| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                black_box(ReactMatcher::with_cycles(3000).assign(g, &mut rng))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("metropolis-1000", tasks),
            &graph,
            |b, g| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(1);
                    black_box(MetropolisMatcher::with_cycles(1000).assign(g, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_matching_time);
criterion_main!(benches);
