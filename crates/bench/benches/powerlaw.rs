//! Criterion bench for the probability substrate — the per-tick cost of
//! the Dynamic Assignment Component (Eq. 2 over every in-flight task)
//! depends on these primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use react_prob::{DeadlineModel, DeadlineModelConfig, FitMethod, PowerLaw};
use std::hint::black_box;

fn bench_powerlaw(c: &mut Criterion) {
    let truth = PowerLaw::new(2.3, 2.0).unwrap();
    let mut rng = SmallRng::seed_from_u64(1);

    let mut group = c.benchmark_group("powerlaw");
    for &n in &[10usize, 100, 1000] {
        let samples = truth.sample_n(&mut rng, n);
        group.bench_with_input(BenchmarkId::new("fit_paper", n), &samples, |b, s| {
            b.iter(|| black_box(PowerLaw::fit(s, 2.0, FitMethod::Paper).unwrap()))
        });
    }
    group.bench_function("sample", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(truth.sample(&mut rng)))
    });
    group.bench_function("ccdf", |b| {
        b.iter(|| black_box(truth.ccdf(black_box(17.3))))
    });
    let model = DeadlineModel::new(DeadlineModelConfig::default());
    group.bench_function("eq2_in_flight_check", |b| {
        b.iter(|| black_box(model.check_in_flight(&truth, black_box(12.0), black_box(60.0))))
    });
    group.finish();
}

criterion_group!(benches, bench_powerlaw);
criterion_main!(benches);
