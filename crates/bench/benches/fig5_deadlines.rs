//! Criterion bench for Figs. 5–8 — one end-to-end simulated run per
//! policy at reduced scale (the full 750-worker/8371-task reproduction
//! is `react-experiments fig5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use react_core::MatcherPolicy;
use react_crowd::{Scenario, ScenarioRunner};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_end_to_end");
    group.sample_size(10);
    for (policy, name) in [
        (MatcherPolicy::React { cycles: 1000 }, "react"),
        (MatcherPolicy::Greedy, "greedy"),
        (MatcherPolicy::Traditional, "traditional"),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            b.iter(|| {
                let mut sc = Scenario::paper_fig5(policy, 42);
                sc.n_workers = 150;
                sc.total_tasks = 1000;
                sc.arrival_rate = 1.875;
                black_box(ScenarioRunner::new(sc).run())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
