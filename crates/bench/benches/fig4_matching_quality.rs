//! Criterion bench for Fig. 4 — cost of reaching a given matching
//! quality. Before timing, prints the achieved weights so the quality
//! ordering (Greedy ≈ optimal > REACT > Metropolis at equal cycles) can
//! be read off alongside the timings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use react_matching::{BipartiteGraph, GreedyMatcher, Matcher, MetropolisMatcher, ReactMatcher};
use std::hint::black_box;

fn contended_graph(side: usize) -> BipartiteGraph {
    let mut rng = SmallRng::seed_from_u64(7);
    BipartiteGraph::full(side, side, |_, _| rng.gen::<f64>()).expect("valid")
}

fn bench_quality(c: &mut Criterion) {
    let side = 300;
    let graph = contended_graph(side);
    // One-off quality readout.
    let mut rng = SmallRng::seed_from_u64(5);
    println!("fig4 quality on {side}×{side} full graph:");
    println!(
        "  greedy          Σw = {:.2}",
        GreedyMatcher.assign(&graph, &mut rng).total_weight
    );
    for cycles in [1000usize, 3000] {
        println!(
            "  react@{cycles:<6} Σw = {:.2}",
            ReactMatcher::with_cycles(cycles)
                .assign(&graph, &mut rng)
                .total_weight
        );
        println!(
            "  metropolis@{cycles:<6} Σw = {:.2}",
            MetropolisMatcher::with_cycles(cycles)
                .assign(&graph, &mut rng)
                .total_weight
        );
    }

    let mut group = c.benchmark_group("fig4_matching_quality");
    group.sample_size(20);
    for cycles in [1000usize, 3000] {
        group.bench_with_input(BenchmarkId::new("react", cycles), &cycles, |b, &cycles| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                black_box(ReactMatcher::with_cycles(cycles).assign(&graph, &mut rng))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("metropolis", cycles),
            &cycles,
            |b, &cycles| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(1);
                    black_box(MetropolisMatcher::with_cycles(cycles).assign(&graph, &mut rng))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
