//! `react-live` — run the REACT middleware on real threads from the
//! command line.
//!
//! ```text
//! USAGE: react-live [--workers N] [--tasks N] [--rate R] [--scale S]
//!                   [--policy react|greedy|traditional] [--seed N]
//!
//!   --workers N   worker-host threads (default 40)
//!   --tasks N     tasks to submit (default 200)
//!   --rate R      crowd arrival rate, tasks/second (default 4)
//!   --scale S     crowd-seconds per wall-second (default 120)
//!   --policy P    matching policy (default react)
//!   --seed N      RNG seed (default 2013)
//! ```

use react_core::MatcherPolicy;
use react_runtime::{LiveConfig, LiveRuntime};
use std::process::ExitCode;

const USAGE: &str = "usage: react-live [--workers N] [--tasks N] [--rate R] \
[--scale S] [--policy react|greedy|traditional] [--seed N]";

fn parse() -> Result<LiveConfig, String> {
    let mut lc = LiveConfig {
        n_workers: 40,
        total_tasks: 200,
        arrival_rate: 4.0,
        time_scale: 120.0,
        seed: 2013,
        ..LiveConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workers" => {
                lc.n_workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--tasks" => {
                lc.total_tasks = value("--tasks")?
                    .parse()
                    .map_err(|e| format!("--tasks: {e}"))?
            }
            "--rate" => {
                lc.arrival_rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--scale" => {
                lc.time_scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?
            }
            "--seed" => {
                lc.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--policy" => {
                lc.config.matcher = match value("--policy")?.as_str() {
                    "react" => MatcherPolicy::React { cycles: 1000 },
                    "greedy" => MatcherPolicy::Greedy,
                    "traditional" => MatcherPolicy::Traditional,
                    other => return Err(format!("unknown policy '{other}'\n{USAGE}")),
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if lc.n_workers == 0 || lc.total_tasks == 0 {
        return Err("--workers and --tasks must be positive".to_string());
    }
    Ok(lc)
}

fn main() -> ExitCode {
    let lc = match parse() {
        Ok(lc) => lc,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "react-live: {} workers, {} tasks @ {}/crowd-s, {}x compression, policy {}",
        lc.n_workers,
        lc.total_tasks,
        lc.arrival_rate,
        lc.time_scale,
        lc.config.matcher.name()
    );
    let t0 = react_runtime::Stopwatch::start();
    let report = LiveRuntime::new(lc).run();
    let wall = t0.elapsed_secs();
    println!("\nfinished in {wall:.1} wall-seconds");
    println!("  submitted          {}", report.submitted);
    println!("  completed          {}", report.completed);
    println!(
        "  met deadline       {} ({:.1}%)",
        report.met_deadline,
        100.0 * report.met_deadline as f64 / report.submitted.max(1) as f64
    );
    println!("  positive feedback  {}", report.positive_feedback);
    println!("  Eq.(2) recalls     {}", report.recalls);
    println!("  expired in queue   {}", report.expired);
    println!("  matching batches   {}", report.batches);
    ExitCode::SUCCESS
}
