//! The live runtime: requester + scheduler + worker hosts on real
//! threads.

use crate::clock::ScaledClock;
use crate::messages::{Completion, WorkerCommand};
use crate::worker_host::run_worker_host;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use rand::Rng;
use react_core::{Config, ReactServer, Task, TaskCategory, TaskId, WorkerId};
use react_crowd::{generate_population, BehaviorParams, TaskGenerator, WorkerBehavior};
use react_faults::FaultSchedule;
use react_geo::BoundingBox;
use react_obs::{null_observer, ObserverHandle};
use react_sim::RngStreams;
use std::collections::HashMap;
use std::thread;

/// Task ids at or above this base are injected burst tasks (matches the
/// DES runner's convention in `react-crowd`).
const BURST_ID_BASE: u64 = 1 << 40;

/// A timed fault the scheduler loop applies when the scaled clock
/// reaches its instant.
enum FaultAction {
    /// A worker's connectivity drops: recall its work, stop assigning.
    Offline(usize),
    /// The worker reconnects.
    Online(usize),
    /// A burst of extra tasks arrives at once.
    Burst(Vec<Task>),
}

/// Configuration of a live run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Number of worker-host threads.
    pub n_workers: usize,
    /// Tasks the requester submits.
    pub total_tasks: usize,
    /// Poisson arrival rate in crowd tasks/second.
    pub arrival_rate: f64,
    /// Deadline range in crowd seconds.
    pub deadline_range: (f64, f64),
    /// Crowd behaviour parameters.
    pub behavior: BehaviorParams,
    /// Middleware configuration.
    pub config: Config,
    /// Crowd-seconds per wall-second (time compression).
    pub time_scale: f64,
    /// Scheduler control-loop period, in crowd seconds.
    pub tick_interval: f64,
    /// RNG seed.
    pub seed: u64,
    /// Fault-injection plan replayed at the `WorkerCommand` level
    /// (`None` = fault-free). Plans that abandon assignments or lose
    /// completions strand in-flight tasks; enable a recovery ladder
    /// (`config.recovery`) so the run can terminate.
    pub faults: Option<react_faults::FaultPlan>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        let mut config = Config::paper_defaults();
        // In a live run the matcher's real wall time *is* the latency;
        // don't also charge the modelled PlanetLab-era cost.
        config.charge_matching_time = false;
        LiveConfig {
            n_workers: 25,
            total_tasks: 100,
            arrival_rate: 3.0,
            deadline_range: (60.0, 120.0),
            behavior: BehaviorParams::default(),
            config,
            time_scale: 60.0,
            tick_interval: 1.0,
            seed: 7,
            faults: None,
        }
    }
}

/// Outcome counters of a live run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveReport {
    /// Tasks submitted by the requester thread.
    pub submitted: u64,
    /// Tasks that completed (any time).
    pub completed: u64,
    /// Tasks completed before their deadline.
    pub met_deadline: u64,
    /// Positive feedbacks recorded.
    pub positive_feedback: u64,
    /// Eq. (2) recalls issued.
    pub recalls: u64,
    /// Tasks that expired waiting in the queue.
    pub expired: u64,
    /// Matching batches run.
    pub batches: u64,
    /// Fault-shim events applied (dropouts, abandons, losses,
    /// duplications, burst tasks). Zero on a fault-free run.
    pub fault_events: u64,
}

/// Orchestrates one live run.
pub struct LiveRuntime {
    config: LiveConfig,
    observer: ObserverHandle,
}

impl LiveRuntime {
    /// Creates a runtime for the given configuration.
    pub fn new(config: LiveConfig) -> Self {
        LiveRuntime {
            config,
            observer: null_observer(),
        }
    }

    /// Attaches an observability sink; the scheduler-side server
    /// reports its stage spans, matcher counters and latency
    /// histograms to it. Write-only: scheduling is unaffected.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Runs the full scenario to completion and returns the report.
    ///
    /// Spawns `n_workers + 1` threads (hosts + requester); the calling
    /// thread acts as the scheduler. All threads are joined before
    /// returning.
    pub fn run(self) -> LiveReport {
        let lc = self.config;
        let observer = self.observer;
        let clock = ScaledClock::start(lc.time_scale);
        let streams = RngStreams::new(lc.seed);
        let mut pop_rng = streams.stream("population");
        let region = BoundingBox::new(37.8, 38.2, 23.5, 24.0).expect("static bounds");

        let behaviors: Vec<WorkerBehavior> =
            generate_population(lc.n_workers, &lc.behavior, &mut pop_rng);
        let schedule = match &lc.faults {
            Some(plan) if !plan.is_noop() => plan.materialize(&streams, lc.n_workers),
            _ => FaultSchedule::none(),
        };
        // Timed faults, sorted by firing instant (crowd seconds).
        let mut timeline: Vec<(f64, FaultAction)> = Vec::new();
        for d in schedule.dropouts() {
            if d.worker >= lc.n_workers {
                continue;
            }
            timeline.push((d.at, FaultAction::Offline(d.worker)));
            if let Some(rejoin) = d.rejoin_at {
                timeline.push((rejoin, FaultAction::Online(d.worker)));
            }
        }
        let mut burst_rng = streams.stream("fault.burst-tasks");
        let mut burst_seq = 0u64;
        for &(at, size) in schedule.bursts() {
            let tasks = (0..size)
                .map(|_| {
                    let id = TaskId(BURST_ID_BASE + burst_seq);
                    burst_seq += 1;
                    let deadline = burst_rng.gen_range(lc.deadline_range.0..lc.deadline_range.1);
                    let reward = burst_rng.gen_range(0.01..0.10);
                    Task::new(
                        id,
                        region.random_point(&mut burst_rng),
                        deadline,
                        reward,
                        TaskCategory(0),
                        "burst",
                    )
                })
                .collect();
            timeline.push((at, FaultAction::Burst(tasks)));
        }
        timeline.sort_by(|a, b| a.0.total_cmp(&b.0));

        // Scheduler-side server.
        let mut server = ReactServer::builder(lc.config.clone())
            .seed(lc.seed ^ 0xbeef)
            .observer(observer)
            .build()
            .expect("live config carries a valid middleware config");
        let (done_tx, done_rx) = unbounded::<Completion>();
        let mut mailboxes: Vec<Sender<WorkerCommand>> = Vec::with_capacity(lc.n_workers);
        let mut hosts = Vec::with_capacity(lc.n_workers);
        for (i, b) in behaviors.iter().enumerate() {
            let id = WorkerId(i as u64);
            server.register_worker(id, region.random_point(&mut pop_rng));
            let (tx, rx) = unbounded::<WorkerCommand>();
            mailboxes.push(tx);
            let done_tx = done_tx.clone();
            let quality = b.quality;
            hosts.push(thread::spawn(move || {
                run_worker_host(id, quality, clock, rx, done_tx)
            }));
        }
        drop(done_tx);

        // Requester thread: Poisson schedule compressed onto the wall
        // clock.
        let (task_tx, task_rx) = bounded::<Task>(1024);
        let requester = {
            let mut workload_rng = streams.stream("workload");
            let mut generator = TaskGenerator::new(lc.arrival_rate, region)
                .with_deadline_range(lc.deadline_range.0, lc.deadline_range.1);
            let total = lc.total_tasks;
            thread::spawn(move || {
                for _ in 0..total {
                    let (at, task) = generator.next(&mut workload_rng);
                    // Sleep until the arrival's crowd timestamp.
                    let wait = (at - clock.now()).max(0.0);
                    thread::sleep(clock.to_wall(wait));
                    if task_tx.send(task).is_err() {
                        return; // scheduler gone
                    }
                }
            })
        };

        let report = Self::scheduler_loop(
            &lc,
            clock,
            &mut server,
            &behaviors,
            streams,
            &mailboxes,
            &task_rx,
            &done_rx,
            &schedule,
            timeline,
        );

        for tx in &mailboxes {
            let _ = tx.send(WorkerCommand::Shutdown);
        }
        for h in hosts {
            h.join().expect("worker host panicked");
        }
        requester.join().expect("requester panicked");
        report
    }

    /// The scheduler control loop (runs on the calling thread).
    #[allow(clippy::too_many_arguments)]
    fn scheduler_loop(
        lc: &LiveConfig,
        clock: ScaledClock,
        server: &mut ReactServer,
        behaviors: &[WorkerBehavior],
        streams: RngStreams,
        mailboxes: &[Sender<WorkerCommand>],
        task_rx: &Receiver<Task>,
        done_rx: &Receiver<Completion>,
        schedule: &FaultSchedule,
        timeline: Vec<(f64, FaultAction)>,
    ) -> LiveReport {
        let mut behavior_rng = streams.stream("behavior");
        let mut report = LiveReport::default();
        // Tracks the current live assignment so stale completions (from
        // a race between a recall and a finish) are dropped.
        let mut live_assignment: HashMap<TaskId, WorkerId> = HashMap::new();
        // Per-task assignment attempt counter, keying the hash-based
        // per-event fault decisions (same convention as the DES runner).
        let mut attempts: HashMap<TaskId, u32> = HashMap::new();
        let mut timeline = timeline;
        let mut requester_done = false;

        loop {
            // Gather external events for up to one tick. Once the
            // requester hangs up, its closed channel would make select
            // return instantly forever (a busy spin), so it is dropped
            // from the select set after that.
            let deadline = clock.to_wall(lc.tick_interval);
            let handle_done = |done: Completion,
                               server: &mut ReactServer,
                               live: &mut HashMap<TaskId, WorkerId>,
                               attempts: &HashMap<TaskId, u32>,
                               report: &mut LiveReport| {
                if live.get(&done.task) == Some(&done.worker) {
                    let attempt = attempts.get(&done.task).copied().unwrap_or(0);
                    if schedule.loses_completion(done.task.0, attempt) {
                        // The completion message is lost in flight: the
                        // assignment stays live until the timeout ladder
                        // recalls it.
                        report.fault_events += 1;
                        return;
                    }
                    live.remove(&done.task);
                    if let Ok(out) =
                        server.complete_task(done.task, done.worker, clock.now(), done.quality_ok)
                    {
                        report.completed += 1;
                        if out.met_deadline {
                            report.met_deadline += 1;
                        }
                        if out.positive_feedback {
                            report.positive_feedback += 1;
                        }
                        if schedule.duplicates_completion(done.task.0, attempt) {
                            // Deliver the same completion a second time;
                            // the server must reject it.
                            report.fault_events += 1;
                            let dup = server.complete_task(
                                done.task,
                                done.worker,
                                clock.now(),
                                done.quality_ok,
                            );
                            debug_assert!(dup.is_err(), "duplicate completion must be rejected");
                            let _ = dup;
                        }
                    }
                }
            };
            if requester_done {
                match done_rx.recv_timeout(deadline) {
                    Ok(done) => {
                        handle_done(done, server, &mut live_assignment, &attempts, &mut report)
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            } else {
                crossbeam::channel::select! {
                    recv(task_rx) -> msg => match msg {
                        Ok(task) => {
                            report.submitted += 1;
                            server.submit_task(task, clock.now());
                        }
                        Err(_) => requester_done = true,
                    },
                    recv(done_rx) -> msg => {
                        if let Ok(done) = msg {
                            handle_done(done, server, &mut live_assignment, &attempts, &mut report);
                        }
                    },
                    default(deadline) => {}
                }
            }

            // Apply timed faults whose instant has passed.
            let now = clock.now();
            while timeline.first().is_some_and(|(at, _)| *at <= now) {
                let (_, action) = timeline.remove(0);
                match action {
                    FaultAction::Offline(w) => {
                        report.fault_events += 1;
                        for task in server.worker_offline(WorkerId(w as u64), now) {
                            live_assignment.remove(&task);
                            let _ = mailboxes[w].send(WorkerCommand::Recall { task });
                        }
                    }
                    FaultAction::Online(w) => {
                        let _ = server.worker_online(WorkerId(w as u64));
                    }
                    FaultAction::Burst(tasks) => {
                        for task in tasks {
                            report.submitted += 1;
                            report.fault_events += 1;
                            server.submit_task(task, now);
                        }
                    }
                }
            }

            // Control step.
            let outcome = server.tick(now);
            report.expired += outcome.expired.len() as u64;
            report.expired += outcome.shed.len() as u64;
            for recall in &outcome.recalls {
                report.recalls += 1;
                live_assignment.remove(&recall.task);
                let _ = mailboxes[recall.worker.0 as usize]
                    .send(WorkerCommand::Recall { task: recall.task });
            }
            for &(worker, task) in &outcome.assignments {
                let attempt = {
                    let a = attempts.entry(task).or_insert(0);
                    *a += 1;
                    *a
                };
                let w = worker.0 as usize;
                let exec =
                    behaviors[w].sample_exec_time(&mut behavior_rng) * schedule.slowdown_factor(w);
                live_assignment.insert(task, worker);
                if schedule.abandons(task.0, attempt) {
                    // Silent abandonment: the Assign never reaches the
                    // host; only the timeout ladder frees the task.
                    report.fault_events += 1;
                    continue;
                }
                let _ = mailboxes[w].send(WorkerCommand::Assign {
                    task,
                    exec_crowd_secs: exec,
                });
            }

            let drained = requester_done && task_rx.is_empty();
            let idle =
                server.tasks().unassigned_count() == 0 && server.tasks().assigned_count() == 0;
            if drained && idle {
                break;
            }
        }
        report.batches = server.batches_run();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_core::{BatchTrigger, MatcherPolicy};

    fn fast_config(matcher: MatcherPolicy) -> LiveConfig {
        let mut config = Config::with_matcher(matcher);
        config.charge_matching_time = false;
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: Some(1.0),
        };
        LiveConfig {
            n_workers: 10,
            total_tasks: 40,
            arrival_rate: 4.0,
            time_scale: 600.0, // 10 crowd-min/wall-s: whole run ≲ 3 s
            config,
            seed: 11,
            ..LiveConfig::default()
        }
    }

    #[test]
    fn live_run_completes_all_tasks() {
        let report = LiveRuntime::new(fast_config(MatcherPolicy::React { cycles: 200 })).run();
        assert_eq!(report.submitted, 40);
        assert_eq!(
            report.completed + report.expired,
            40,
            "every task completes or expires: {report:?}"
        );
        assert!(report.completed > 0);
        assert!(report.met_deadline <= report.completed);
        assert!(report.positive_feedback <= report.met_deadline);
        assert!(report.batches > 0);
    }

    #[test]
    fn live_run_traditional_policy() {
        let report = LiveRuntime::new(fast_config(MatcherPolicy::Traditional)).run();
        assert_eq!(report.submitted, 40);
        assert_eq!(report.recalls, 0, "traditional never recalls");
        assert!(report.completed > 0);
    }

    #[test]
    fn live_run_replays_fault_plans_and_recovers() {
        use react_core::RecoveryConfig;
        use react_faults::{DropoutPlan, FaultPlan};
        let mut lc = fast_config(MatcherPolicy::React { cycles: 200 });
        lc.total_tasks = 30;
        lc.faults = Some(FaultPlan {
            dropout: Some(DropoutPlan {
                probability: 0.5,
                window: (5.0, 40.0),
                offline_range: Some((10.0, 20.0)),
            }),
            abandon_probability: 0.3,
            loss_probability: 0.1,
            duplication_probability: 0.2,
            ..FaultPlan::none()
        });
        lc.config.recovery = RecoveryConfig::aggressive(20.0);
        let report = LiveRuntime::new(lc).run();
        assert_eq!(report.submitted, 30);
        assert!(report.fault_events > 0, "shims must fire: {report:?}");
        assert_eq!(
            report.completed + report.expired,
            30,
            "recovery must drain every faulted task: {report:?}"
        );
    }

    #[test]
    fn live_run_with_recalls_still_terminates() {
        // High time compression + slow workers force Eq. (2) recalls.
        let mut lc = fast_config(MatcherPolicy::React { cycles: 200 });
        lc.behavior.delay_probability = 0.9;
        lc.total_tasks = 30;
        let report = LiveRuntime::new(lc).run();
        assert_eq!(report.submitted, 30);
        assert_eq!(report.completed + report.expired, 30);
    }
}
