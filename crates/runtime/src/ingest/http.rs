//! Hand-rolled HTTP/1.1 framing for the ingest front-end.
//!
//! The workspace vendors every dependency, so the wire layer is a
//! deliberately minimal subset of RFC 9112: request line + headers +
//! `Content-Length`-delimited bodies, persistent connections by
//! default, `Connection: close` honoured, no chunked transfer coding.
//! Every limit is explicit (header block and body byte caps) and every
//! parse failure maps to a concrete status code so malformed input is
//! rejected rather than panicking the acceptor.

use std::io::{BufRead, Write};

/// Longest accepted request body, in bytes.
pub const MAX_BODY_BYTES: usize = 4096;
/// Longest accepted header block (request line included), in bytes.
pub const MAX_HEADER_BYTES: usize = 8192;

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, as written (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, e.g. `/tasks/17`.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the client asked for `Connection: close`.
    pub close: bool,
}

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed (or stalled past its read timeout) in the
    /// middle of a request.
    Truncated,
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// The header block exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// A header line had no `:` separator.
    BadHeader,
    /// `Content-Length` was not a non-negative integer.
    BadContentLength,
    /// The declared body length exceeded [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// The request used framing this subset does not speak
    /// (`Transfer-Encoding`).
    Unsupported,
}

impl HttpError {
    /// The status line to answer this error with. Truncated requests
    /// get no response (there is no well-formed request to answer).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Truncated => None,
            HttpError::BadRequestLine | HttpError::BadHeader | HttpError::BadContentLength => {
                Some((400, "Bad Request"))
            }
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::Unsupported => Some((501, "Not Implemented")),
        }
    }
}

/// Reads one request off `reader`.
///
/// Returns `Ok(None)` on a clean end-of-stream before any byte of a
/// next request (normal keep-alive teardown). I/O errors — including
/// read timeouts on an idle persistent connection — surface as
/// [`HttpError::Truncated`]; the caller closes the connection either
/// way.
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, HttpError> {
    let mut header_bytes = 0usize;
    let request_line = match read_line(reader, &mut header_bytes)? {
        Some(line) => line,
        None => return Ok(None),
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequestLine);
    }
    if !method.chars().all(|c| c.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }

    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let line = match read_line(reader, &mut header_bytes)? {
            Some(line) => line,
            None => return Err(HttpError::Truncated),
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| HttpError::BadContentLength)?;
                if content_length > MAX_BODY_BYTES {
                    return Err(HttpError::BodyTooLarge);
                }
            }
            "transfer-encoding" => return Err(HttpError::Unsupported),
            "connection" if value.eq_ignore_ascii_case("close") => close = true,
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader
            .read_exact(&mut body)
            .map_err(|_| HttpError::Truncated)?;
    }
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        close,
    }))
}

/// Reads one CRLF (or bare LF) terminated line, charging its bytes
/// against the header budget. `None` = end of stream at a line start.
fn read_line<R: BufRead>(
    reader: &mut R,
    header_bytes: &mut usize,
) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let n = reader
        .read_until(b'\n', &mut raw)
        .map_err(|_| HttpError::Truncated)?;
    if n == 0 {
        return Ok(None);
    }
    *header_bytes += n;
    if *header_bytes > MAX_HEADER_BYTES {
        return Err(HttpError::HeadersTooLarge);
    }
    if raw.last() != Some(&b'\n') {
        // Stream ended mid-line.
        return Err(HttpError::Truncated);
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadHeader)
}

/// One response, always `Content-Length`-framed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// JSON body text.
    pub body: String,
    /// `Retry-After` header value, for 429 shed responses.
    pub retry_after: Option<u32>,
    /// Whether the server will close the connection after this
    /// response (`Connection: close`).
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, reason: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            reason,
            body: body.into(),
            retry_after: None,
            close: false,
        }
    }

    /// Marks the response as connection-closing.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Attaches a `Retry-After` header (seconds).
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }

    /// Serialises the response onto `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            self.status,
            self.reason,
            self.body.len()
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("retry-after: {secs}\r\n"));
        }
        head.push_str(if self.close {
            "connection: close\r\n\r\n"
        } else {
            "connection: keep-alive\r\n\r\n"
        });
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// Fields a `POST /tasks` body may carry. Absent fields fall back to
/// the front-end's configured defaults.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SubmitBody {
    /// Soft deadline in crowd seconds from submission.
    pub deadline: Option<f64>,
    /// Reward offered for the task.
    pub reward: Option<f64>,
    /// Task latitude.
    pub lat: Option<f64>,
    /// Task longitude.
    pub lon: Option<f64>,
    /// Task category index.
    pub category: Option<u32>,
}

/// Parses the flat-JSON submission body: an object of known numeric
/// fields, e.g. `{"deadline":90.0,"reward":0.05,"lat":37.9,"lon":23.7}`.
/// An empty body means "all defaults". Unknown keys, non-numeric
/// values, or trailing garbage are rejected with `None` (the caller
/// answers 400).
pub fn parse_submit_body(bytes: &[u8]) -> Option<SubmitBody> {
    let text = std::str::from_utf8(bytes).ok()?.trim();
    let mut out = SubmitBody::default();
    if text.is_empty() {
        return Some(out);
    }
    let inner = text.strip_prefix('{')?.strip_suffix('}')?.trim();
    if inner.is_empty() {
        return Some(out);
    }
    for pair in inner.split(',') {
        let (key, value) = pair.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        let number: f64 = value.parse().ok()?;
        if !number.is_finite() {
            return None;
        }
        match key {
            "deadline" => out.deadline = Some(number),
            "reward" => out.reward = Some(number),
            "lat" => out.lat = Some(number),
            "lon" => out.lon = Some(number),
            "category" => {
                // analyze: allow(no-float-eq) integrality check: a category id must be an exact integer
                if number < 0.0 || number.fract() != 0.0 || number > u32::MAX as f64 {
                    return None;
                }
                out.category = Some(number as u32);
            }
            _ => return None,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        parse_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /tasks HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tasks");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close);
    }

    #[test]
    fn parses_bare_lf_and_connection_close() {
        let req = parse(b"GET /report HTTP/1.1\nConnection: close\n\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.close);
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none_but_midstream_eof_is_truncated() {
        assert_eq!(parse(b""), Ok(None));
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nhost: x"),
            Err(HttpError::Truncated)
        );
        assert_eq!(
            parse(b"POST /tasks HTTP/1.1\r\ncontent-length: 9\r\n\r\nabc"),
            Err(HttpError::Truncated)
        );
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert_eq!(parse(b"NONSENSE\r\n\r\n"), Err(HttpError::BadRequestLine));
        assert_eq!(
            parse(b"GET /x HTTP/1.1 extra\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        );
        assert_eq!(
            parse(b"get /x HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        );
        assert_eq!(
            parse(b"GET x HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        );
        assert_eq!(
            parse(b"GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        );
    }

    #[test]
    fn rejects_bad_headers_and_bad_lengths() {
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nno separator\r\n\r\n"),
            Err(HttpError::BadHeader)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: nope\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: -4\r\n\r\n"),
            Err(HttpError::BadContentLength)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(HttpError::Unsupported)
        );
    }

    #[test]
    fn enforces_body_and_header_caps() {
        let oversized = format!(
            "POST /tasks HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(oversized.as_bytes()), Err(HttpError::BodyTooLarge));

        let mut huge = String::from("GET / HTTP/1.1\r\n");
        while huge.len() <= MAX_HEADER_BYTES {
            huge.push_str("x-pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        huge.push_str("\r\n");
        assert_eq!(parse(huge.as_bytes()), Err(HttpError::HeadersTooLarge));
    }

    #[test]
    fn response_serialises_with_retry_after() {
        let mut buf = Vec::new();
        Response::json(429, "Too Many Requests", "{\"state\":\"shed\"}")
            .with_retry_after(1)
            .write_to(&mut buf)
            .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(text.contains("content-length: 16\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"state\":\"shed\"}"), "{text}");
    }

    #[test]
    fn submit_body_parses_fields_and_rejects_garbage() {
        let body = parse_submit_body(
            b"{\"deadline\":90.5,\"reward\":0.05,\"lat\":37.9,\"lon\":23.7,\"category\":2}",
        )
        .unwrap();
        assert_eq!(body.deadline, Some(90.5));
        assert_eq!(body.reward, Some(0.05));
        assert_eq!(body.category, Some(2));
        assert_eq!(parse_submit_body(b""), Some(SubmitBody::default()));
        assert_eq!(parse_submit_body(b"{}"), Some(SubmitBody::default()));
        assert!(parse_submit_body(b"{\"deadline\":}").is_none());
        assert!(parse_submit_body(b"{\"unknown\":1}").is_none());
        assert!(parse_submit_body(b"{\"deadline\":\"soon\"}").is_none());
        assert!(parse_submit_body(b"{\"category\":1.5}").is_none());
        assert!(parse_submit_body(b"not json").is_none());
        assert!(parse_submit_body(b"{\"deadline\":inf}").is_none());
    }
}
