//! Live TCP ingest: an HTTP/1.1 front-end over the live runtime.
//!
//! This is the wire boundary the paper's middleware implies but the
//! in-process [`crate::LiveRuntime`] demo lacked: requesters submit
//! tasks with `POST /tasks` and poll with `GET /tasks/<id>`; acceptor
//! threads apply the admission-control ladder (framing → backlog
//! watermark → bounded queue, see [`server`]) and hand admitted tasks
//! to the scheduler thread over a *bounded* channel — the backpressure
//! edge between the door and the middleware. The scheduler drives the
//! same `ReactServer` tick pipeline and worker-host fleet as the live
//! runtime, publishes its backlog back to the door every tick, and
//! records door-to-assignment latencies for the load generator's
//! p50/p99/p999 report.
//!
//! `std::net` usage is sanctioned here (and in `react-load`) by the
//! `react-analyze` `net-boundary` rule; the rest of the workspace
//! stays socket-free.

pub mod http;
pub mod server;

use crate::clock::ScaledClock;
use crate::messages::{Completion, WorkerCommand};
use crate::worker_host::run_worker_host;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::Rng;
use react_core::{verify_lifecycles, Config, ReactServer, Task, TaskCategory, TaskId, WorkerId};
use react_crowd::{generate_population, BehaviorParams, WorkerBehavior};
use react_faults::{FaultPlan, FaultSchedule};
use react_geo::BoundingBox;
use react_obs::{null_observer, HistogramKind, ObserverHandle};
use react_sim::RngStreams;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub use server::{DoorStats, IngestTask, Shared, TaskStatus};

/// Task ids at or above this base are injected burst tasks (same
/// convention as the DES runner and the live runtime).
const BURST_ID_BASE: u64 = 1 << 40;

/// A timed fault applied when the scaled clock reaches its instant.
enum FaultAction {
    Offline(usize),
    Online(usize),
    Burst(Vec<Task>),
}

/// Configuration of the ingest front-end + scheduler + worker fleet.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Number of worker-host threads.
    pub n_workers: usize,
    /// Crowd behaviour parameters.
    pub behavior: BehaviorParams,
    /// Middleware configuration.
    pub config: Config,
    /// Crowd-seconds per wall-second (time compression).
    pub time_scale: f64,
    /// Scheduler control-loop period, in crowd seconds.
    pub tick_interval: f64,
    /// RNG seed (worker population, exec times, burst tasks).
    pub seed: u64,
    /// Fault-injection plan (`None` = fault-free).
    pub faults: Option<FaultPlan>,
    /// Capacity of the bounded door→scheduler queue.
    pub queue_capacity: usize,
    /// Backlog (queue + unassigned pool) above which the door sheds.
    pub backlog_watermark: usize,
    /// Acceptor threads sharing the listener.
    pub acceptors: usize,
    /// Bind address; use port 0 for an ephemeral port.
    pub bind_addr: String,
    /// Deadline (crowd seconds) for submissions that give none.
    pub default_deadline: f64,
    /// Reward for submissions that give none.
    pub default_reward: f64,
    /// Deadline range for fault-plan burst tasks.
    pub burst_deadline_range: (f64, f64),
    /// Keep-alive read timeout (wall time) on idle connections.
    pub idle_timeout: Duration,
    /// Crowd seconds the scheduler keeps draining in-flight work after
    /// shutdown begins before force-shedding what remains.
    pub drain_grace: f64,
    /// Record the full task-lifecycle audit log and verify it at
    /// teardown (panics on an illegal transition — test/debug tool).
    pub audit: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        let mut config = Config::paper_defaults();
        // As in the live runtime: real wall time is the latency here.
        config.charge_matching_time = false;
        // A live front-end also matches on a period: the paper's
        // threshold-only trigger (>10 unassigned) would starve a
        // trickle of submissions below the threshold forever.
        config.batch.period = Some(5.0);
        IngestConfig {
            n_workers: 25,
            behavior: BehaviorParams::default(),
            config,
            time_scale: 60.0,
            tick_interval: 1.0,
            seed: 7,
            faults: None,
            queue_capacity: 256,
            backlog_watermark: 512,
            acceptors: 2,
            bind_addr: "127.0.0.1:0".to_string(),
            default_deadline: 90.0,
            default_reward: 0.05,
            burst_deadline_range: (60.0, 120.0),
            idle_timeout: Duration::from_millis(500),
            drain_grace: 600.0,
            audit: false,
        }
    }
}

/// Outcome of one ingest run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// `POST /tasks` requests the door received.
    pub offered: u64,
    /// Submissions admitted into the scheduler queue.
    pub accepted: u64,
    /// Submissions shed at the door with 429.
    pub shed_door: u64,
    /// Malformed/unroutable requests answered 4xx/5xx.
    pub rejected: u64,
    /// Status polls served.
    pub polls: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Tasks that completed (any time).
    pub completed: u64,
    /// Tasks completed before their deadline.
    pub met_deadline: u64,
    /// Tasks that expired waiting in the queue.
    pub expired: u64,
    /// Tasks shed by the scheduler (pool collapse or forced drain).
    pub shed_server: u64,
    /// Recalls issued (Eq. (2) + timeout ladder).
    pub recalls: u64,
    /// Burst tasks injected by the fault plan.
    pub injected_burst: u64,
    /// Fault-shim events applied.
    pub fault_events: u64,
    /// Matching batches run.
    pub batches: u64,
    /// Tasks still in flight when the drain grace expired (should be 0
    /// on a clean run; counted so conservation always closes).
    pub stranded: u64,
    /// Peak bounded-queue depth sampled at ticks.
    pub peak_queue_depth: usize,
    /// Peak door-visible backlog (queue + unassigned) sampled at ticks.
    pub peak_backlog: usize,
    /// Door-to-first-assignment latencies, crowd seconds, sorted.
    pub assign_latencies: Vec<f64>,
    /// Audit events recorded (0 unless `audit` was enabled).
    pub audit_events: u64,
}

impl IngestReport {
    /// The conservation identity: every task the scheduler admitted
    /// (door-accepted + fault bursts) ends exactly one way.
    pub fn conserved(&self) -> bool {
        self.accepted + self.injected_burst
            == self.completed + self.expired + self.shed_server + self.stranded
    }

    /// Offered submissions that were shed at the door, in [0, 1].
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed_door as f64 / self.offered as f64
        }
    }
}

/// The ingest runtime: front-end + scheduler + worker fleet.
pub struct IngestRuntime {
    config: IngestConfig,
    observer: ObserverHandle,
}

/// A running ingest stack. Submit over TCP; call
/// [`IngestHandle::shutdown`] to drain and collect the report.
pub struct IngestHandle {
    addr: SocketAddr,
    clock: ScaledClock,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    scheduler: JoinHandle<IngestReport>,
    n_acceptors: usize,
}

impl IngestRuntime {
    /// Creates a runtime for the given configuration.
    pub fn new(config: IngestConfig) -> Self {
        IngestRuntime {
            config,
            observer: null_observer(),
        }
    }

    /// Attaches an observability sink (`ingest.*` + scheduler catalog).
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Binds the listener, spawns acceptors + scheduler + worker hosts,
    /// and returns a handle to the running stack.
    pub fn start(self) -> std::io::Result<IngestHandle> {
        let lc = self.config;
        let observer = self.observer;
        let clock = ScaledClock::start(lc.time_scale);
        let region = BoundingBox::new(37.8, 38.2, 23.5, 24.0).expect("static bounds");
        let (submit_tx, submit_rx) = bounded::<IngestTask>(lc.queue_capacity.max(1));
        let shared = Arc::new(Shared {
            clock,
            observer: observer.clone(),
            draining: AtomicBool::new(false),
            backlog: AtomicUsize::new(0),
            watermark: lc.backlog_watermark,
            next_id: AtomicU64::new(0),
            stats: DoorStats::default(),
            statuses: Mutex::new(HashMap::new()),
            submit_tx,
            default_location: region.center(),
            default_deadline: lc.default_deadline,
            default_reward: lc.default_reward,
        });
        let n_acceptors = lc.acceptors.max(1);
        let (addr, acceptors) = server::start_acceptors(
            &lc.bind_addr,
            n_acceptors,
            lc.idle_timeout,
            Arc::clone(&shared),
        )?;
        let stop = Arc::new(AtomicBool::new(false));
        let scheduler = {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ingest-scheduler".to_string())
                .spawn(move || {
                    scheduler_thread(lc, clock, region, observer, shared, submit_rx, stop)
                })
                .expect("spawn scheduler thread")
        };
        Ok(IngestHandle {
            addr,
            clock,
            shared,
            stop,
            acceptors,
            scheduler,
            n_acceptors,
        })
    }
}

impl IngestHandle {
    /// The bound listen address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The run's scaled clock (for wall↔crowd conversions in callers).
    pub fn clock(&self) -> ScaledClock {
        self.clock
    }

    /// Current depth of the door-visible backlog.
    pub fn backlog(&self) -> usize {
        self.shared.backlog.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains in-flight work (bounded by the
    /// configured grace), joins every thread, and returns the report.
    pub fn shutdown(self) -> IngestReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        server::wake_acceptors(self.addr, self.n_acceptors);
        for handle in self.acceptors {
            handle.join().expect("acceptor thread panicked");
        }
        self.stop.store(true, Ordering::SeqCst);
        self.scheduler.join().expect("scheduler thread panicked")
    }
}

/// Builds the fault timeline (dropout/online/burst instants) from a
/// materialized schedule. Burst task ids live above [`BURST_ID_BASE`].
fn fault_timeline(
    schedule: &FaultSchedule,
    streams: &RngStreams,
    n_workers: usize,
    region: BoundingBox,
    deadline_range: (f64, f64),
) -> Vec<(f64, FaultAction)> {
    let mut timeline: Vec<(f64, FaultAction)> = Vec::new();
    for d in schedule.dropouts() {
        if d.worker >= n_workers {
            continue;
        }
        timeline.push((d.at, FaultAction::Offline(d.worker)));
        if let Some(rejoin) = d.rejoin_at {
            timeline.push((rejoin, FaultAction::Online(d.worker)));
        }
    }
    let mut burst_rng = streams.stream("fault.burst-tasks");
    let mut burst_seq = 0u64;
    for &(at, size) in schedule.bursts() {
        let tasks = (0..size)
            .map(|_| {
                let id = TaskId(BURST_ID_BASE + burst_seq);
                burst_seq += 1;
                let deadline = burst_rng.gen_range(deadline_range.0..deadline_range.1);
                let reward = burst_rng.gen_range(0.01..0.10);
                Task::new(
                    id,
                    region.random_point(&mut burst_rng),
                    deadline,
                    reward,
                    TaskCategory(0),
                    "burst",
                )
            })
            .collect();
        timeline.push((at, FaultAction::Burst(tasks)));
    }
    timeline.sort_by(|a, b| a.0.total_cmp(&b.0));
    timeline
}

/// The scheduler thread: middleware + worker fleet + drain logic.
fn scheduler_thread(
    lc: IngestConfig,
    clock: ScaledClock,
    region: BoundingBox,
    observer: ObserverHandle,
    shared: Arc<Shared>,
    submit_rx: Receiver<IngestTask>,
    stop: Arc<AtomicBool>,
) -> IngestReport {
    let streams = RngStreams::new(lc.seed);
    let mut pop_rng = streams.stream("population");
    let behaviors: Vec<WorkerBehavior> =
        generate_population(lc.n_workers, &lc.behavior, &mut pop_rng);
    let schedule = match &lc.faults {
        Some(plan) if !plan.is_noop() => plan.materialize(&streams, lc.n_workers),
        _ => FaultSchedule::none(),
    };
    let mut timeline = fault_timeline(
        &schedule,
        &streams,
        lc.n_workers,
        region,
        lc.burst_deadline_range,
    );

    let mut server = ReactServer::builder(lc.config.clone())
        .seed(lc.seed ^ 0xbeef)
        .audit(lc.audit)
        .observer(observer.clone())
        .build()
        .expect("ingest config carries a valid middleware config");
    let (done_tx, done_rx) = unbounded::<Completion>();
    let mut mailboxes: Vec<Sender<WorkerCommand>> = Vec::with_capacity(lc.n_workers);
    let mut hosts = Vec::with_capacity(lc.n_workers);
    for (i, b) in behaviors.iter().enumerate() {
        let id = WorkerId(i as u64);
        server.register_worker(id, region.random_point(&mut pop_rng));
        let (tx, rx) = unbounded::<WorkerCommand>();
        mailboxes.push(tx);
        let done_tx = done_tx.clone();
        let quality = b.quality;
        hosts.push(std::thread::spawn(move || {
            run_worker_host(id, quality, clock, rx, done_tx)
        }));
    }
    drop(done_tx);

    let mut behavior_rng = streams.stream("behavior");
    let mut report = IngestReport::default();
    let mut live_assignment: HashMap<TaskId, WorkerId> = HashMap::new();
    let mut attempts: HashMap<TaskId, u32> = HashMap::new();
    let mut accepted_at: HashMap<u64, f64> = HashMap::new();
    let mut latency_recorded: HashSet<u64> = HashSet::new();
    let mut drain_started: Option<f64> = None;

    loop {
        let deadline = clock.to_wall(lc.tick_interval);
        crossbeam::channel::select! {
            recv(submit_rx) -> msg => {
                if let Ok(incoming) = msg {
                    let id = incoming.task.id.0;
                    accepted_at.insert(id, incoming.accepted_at);
                    server.submit_task(incoming.task, clock.now());
                }
            },
            recv(done_rx) -> msg => {
                if let Ok(done) = msg {
                    handle_completion(
                        done,
                        &mut server,
                        &clock,
                        &schedule,
                        &shared,
                        &mut live_assignment,
                        &attempts,
                        &mut report,
                    );
                }
            },
            default(deadline) => {}
        }

        // Apply timed faults whose instant has passed.
        let now = clock.now();
        while timeline.first().is_some_and(|(at, _)| *at <= now) {
            let (_, action) = timeline.remove(0);
            match action {
                FaultAction::Offline(w) => {
                    report.fault_events += 1;
                    for task in server.worker_offline(WorkerId(w as u64), now) {
                        live_assignment.remove(&task);
                        shared.set_status(task.0, TaskStatus::Queued);
                        let _ = mailboxes[w].send(WorkerCommand::Recall { task });
                    }
                }
                FaultAction::Online(w) => {
                    let _ = server.worker_online(WorkerId(w as u64));
                }
                FaultAction::Burst(tasks) => {
                    for task in tasks {
                        report.injected_burst += 1;
                        report.fault_events += 1;
                        shared.set_status(task.id.0, TaskStatus::Queued);
                        server.submit_task(task, now);
                    }
                }
            }
        }

        // Control step.
        let outcome = server.tick(now);
        for task in &outcome.expired {
            report.expired += 1;
            shared.set_status(task.0, TaskStatus::Expired);
        }
        for task in &outcome.shed {
            report.shed_server += 1;
            shared.set_status(task.0, TaskStatus::Shed);
        }
        for recall in &outcome.recalls {
            report.recalls += 1;
            live_assignment.remove(&recall.task);
            shared.set_status(recall.task.0, TaskStatus::Queued);
            let _ = mailboxes[recall.worker.0 as usize]
                .send(WorkerCommand::Recall { task: recall.task });
        }
        for &(worker, task) in &outcome.assignments {
            let attempt = {
                let a = attempts.entry(task).or_insert(0);
                *a += 1;
                *a
            };
            let w = worker.0 as usize;
            let exec =
                behaviors[w].sample_exec_time(&mut behavior_rng) * schedule.slowdown_factor(w);
            live_assignment.insert(task, worker);
            shared.set_status(task.0, TaskStatus::Assigned);
            if latency_recorded.insert(task.0) {
                if let Some(&at) = accepted_at.get(&task.0) {
                    report.assign_latencies.push((now - at).max(0.0));
                }
            }
            if schedule.abandons(task.0, attempt) {
                report.fault_events += 1;
                continue;
            }
            let _ = mailboxes[w].send(WorkerCommand::Assign {
                task,
                exec_crowd_secs: exec,
            });
        }

        // Publish backpressure state back to the door.
        let queue_depth = submit_rx.len();
        let backlog = queue_depth + server.tasks().unassigned_count();
        shared.backlog.store(backlog, Ordering::Relaxed);
        report.peak_queue_depth = report.peak_queue_depth.max(queue_depth);
        report.peak_backlog = report.peak_backlog.max(backlog);
        if observer.enabled() {
            observer.observe(HistogramKind::IngestQueueDepth, queue_depth as f64);
        }

        // Teardown: drain until idle, bounded by the grace window.
        if stop.load(Ordering::SeqCst) {
            let drained = submit_rx.is_empty();
            let idle =
                server.tasks().unassigned_count() == 0 && server.tasks().assigned_count() == 0;
            if drained && idle {
                break;
            }
            let started = *drain_started.get_or_insert(now);
            if now - started > lc.drain_grace {
                force_drain(
                    &mut server,
                    &clock,
                    &shared,
                    &mailboxes,
                    &mut live_assignment,
                    &mut report,
                );
                break;
            }
        }
    }

    report.batches = server.batches_run();
    for tx in &mailboxes {
        let _ = tx.send(WorkerCommand::Shutdown);
    }
    for h in hosts {
        h.join().expect("worker host panicked");
    }
    // A worker that finished in the teardown window may have raced a
    // completion into the channel after the loop stopped consuming.
    // Discard anything that is not a live assignment *without* touching
    // the server: applying it would append a Completed audit event
    // after the recall/seal — the orphan the wire boundary surfaced.
    while let Ok(done) = done_rx.try_recv() {
        if live_assignment.get(&done.task) == Some(&done.worker) {
            live_assignment.remove(&done.task);
            if apply_completion(done, &mut server, &clock, &shared, &mut report) {
                report.stranded = report.stranded.saturating_sub(1);
            }
        }
    }
    if let Some(log) = server.audit() {
        report.audit_events = log.len() as u64;
        verify_lifecycles(log);
    }

    // Close out door counters.
    report.offered = shared.stats.offered.load(Ordering::Relaxed);
    report.accepted = shared.stats.accepted.load(Ordering::Relaxed);
    report.shed_door = shared.stats.shed.load(Ordering::Relaxed);
    report.rejected = shared.stats.rejected.load(Ordering::Relaxed);
    report.polls = shared.stats.polls.load(Ordering::Relaxed);
    report.connections = shared.stats.connections.load(Ordering::Relaxed);
    report.assign_latencies.sort_by(|a, b| a.total_cmp(b));
    report
}

/// Applies one completion to the server; returns true on success.
fn apply_completion(
    done: Completion,
    server: &mut ReactServer,
    clock: &ScaledClock,
    shared: &Shared,
    report: &mut IngestReport,
) -> bool {
    match server.complete_task(done.task, done.worker, clock.now(), done.quality_ok) {
        Ok(out) => {
            report.completed += 1;
            if out.met_deadline {
                report.met_deadline += 1;
            }
            shared.set_status(
                done.task.0,
                TaskStatus::Completed {
                    met_deadline: out.met_deadline,
                },
            );
            true
        }
        Err(_) => false,
    }
}

/// Handles a completion message during the main loop, applying the
/// loss/duplication fault shims.
#[allow(clippy::too_many_arguments)]
fn handle_completion(
    done: Completion,
    server: &mut ReactServer,
    clock: &ScaledClock,
    schedule: &FaultSchedule,
    shared: &Shared,
    live_assignment: &mut HashMap<TaskId, WorkerId>,
    attempts: &HashMap<TaskId, u32>,
    report: &mut IngestReport,
) {
    if live_assignment.get(&done.task) != Some(&done.worker) {
        return; // stale: recalled or unknown
    }
    let attempt = attempts.get(&done.task).copied().unwrap_or(0);
    if schedule.loses_completion(done.task.0, attempt) {
        report.fault_events += 1;
        return; // lost in flight; the timeout ladder recovers it
    }
    live_assignment.remove(&done.task);
    if apply_completion(done, server, clock, shared, report)
        && schedule.duplicates_completion(done.task.0, attempt)
    {
        report.fault_events += 1;
        let dup = server.complete_task(done.task, done.worker, clock.now(), done.quality_ok);
        debug_assert!(dup.is_err(), "duplicate completion must be rejected");
        let _ = dup;
    }
}

/// Force-drains the middleware when the grace window expires: recalls
/// every in-flight assignment, sheds the queue, and counts what could
/// not be closed out as stranded.
fn force_drain(
    server: &mut ReactServer,
    clock: &ScaledClock,
    shared: &Shared,
    mailboxes: &[Sender<WorkerCommand>],
    live_assignment: &mut HashMap<TaskId, WorkerId>,
    report: &mut IngestReport,
) {
    let now = clock.now();
    for (w, mailbox) in mailboxes.iter().enumerate() {
        for task in server.worker_offline(WorkerId(w as u64), now) {
            live_assignment.remove(&task);
            shared.set_status(task.0, TaskStatus::Queued);
            let _ = mailbox.send(WorkerCommand::Recall { task });
        }
    }
    for (task, _) in server.evict_unassigned(usize::MAX, now) {
        report.shed_server += 1;
        shared.set_status(task.id.0, TaskStatus::Shed);
    }
    // Whatever the recall sweep could not free (it should free all).
    report.stranded += server.tasks().assigned_count() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    /// Sends one HTTP request on `stream` and reads one response,
    /// returning (status, body).
    fn roundtrip(stream: &mut TcpStream, request: &str) -> (u16, String) {
        stream.write_all(request.as_bytes()).expect("write request");
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> (u16, String) {
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header line");
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some(v) = trimmed.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf8 body"))
    }

    fn quick_config() -> IngestConfig {
        IngestConfig {
            n_workers: 4,
            time_scale: 600.0,
            tick_interval: 2.0,
            seed: 11,
            queue_capacity: 64,
            backlog_watermark: 128,
            acceptors: 1,
            ..IngestConfig::default()
        }
    }

    #[test]
    fn submits_over_tcp_flow_through_to_completion() {
        let handle = IngestRuntime::new(quick_config()).start().expect("start");
        let addr = handle.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut ids = Vec::new();
        for _ in 0..5 {
            let body = "{\"deadline\": 120, \"reward\": 0.05}";
            let req = format!(
                "POST /tasks HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            let (status, resp) = roundtrip(&mut stream, &req);
            assert_eq!(status, 202, "submit accepted: {resp}");
            let id: u64 = resp
                .split("\"task\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.trim().parse().ok())
                .expect("task id in response");
            ids.push(id);
        }
        // Poll until every task reaches a terminal-or-assigned state,
        // bounded by a generous crowd-time budget.
        let clock = handle.clock();
        let budget = 600.0; // crowd seconds == 1 wall second at scale 600
        while clock.now() < budget {
            let (status, body) = roundtrip(
                &mut stream,
                &format!("GET /tasks/{} HTTP/1.1\r\n\r\n", ids[4]),
            );
            assert_eq!(status, 200);
            if body.contains("completed") || body.contains("expired") {
                break;
            }
            std::thread::sleep(clock.to_wall(5.0));
        }
        let (status, body) = roundtrip(&mut stream, "GET /report HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains("\"offered\":5"),
            "report counts offers: {body}"
        );
        drop(stream);
        let report = handle.shutdown();
        assert_eq!(report.offered, 5);
        assert_eq!(report.accepted, 5);
        assert!(report.conserved(), "conservation identity: {report:?}");
        assert!(report.completed + report.expired + report.shed_server == 5);
        assert!(!report.assign_latencies.is_empty(), "latencies recorded");
    }

    #[test]
    fn unknown_task_poll_is_a_404_and_malformed_submit_a_400() {
        let handle = IngestRuntime::new(quick_config()).start().expect("start");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        let (status, _) = roundtrip(&mut stream, "GET /tasks/999 HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = roundtrip(
            &mut stream,
            "POST /tasks HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot-json!",
        );
        assert_eq!(status, 400);
        drop(stream);
        let report = handle.shutdown();
        assert_eq!(report.offered, 1);
        assert_eq!(report.accepted, 0);
        // The unknown-id 404 counts as a poll; only the bad body is a
        // rejection.
        assert_eq!(report.rejected, 1);
        assert_eq!(report.polls, 1);
        assert!(report.conserved());
    }

    /// Regression test for the worker-host shutdown race: an external
    /// shutdown arriving while workers hold in-flight assignments must
    /// not leave an orphaned audit event (a Completed after the task
    /// was recalled/sealed). `verify_lifecycles` runs inside
    /// `shutdown()` when auditing is on and panics on any illegal
    /// transition, so a clean return *is* the assertion.
    #[test]
    fn external_shutdown_mid_flight_leaves_a_clean_audit_log() {
        let mut config = quick_config();
        config.audit = true;
        config.seed = 23;
        let handle = IngestRuntime::new(config).start().expect("start");
        let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
        for i in 0..12 {
            let body = format!("{{\"deadline\": {}, \"reward\": 0.05}}", 60 + i * 10);
            let req = format!(
                "POST /tasks HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            let (status, _) = roundtrip(&mut stream, &req);
            assert_eq!(status, 202);
        }
        drop(stream);
        // Shut down immediately: tasks are still queued or executing,
        // so completions race the teardown path.
        let report = handle.shutdown();
        assert!(report.audit_events > 0, "audit log was recorded");
        assert!(report.conserved(), "conservation identity: {report:?}");
    }

    #[test]
    fn draining_door_rejects_new_submissions() {
        let handle = IngestRuntime::new(quick_config()).start().expect("start");
        let addr = handle.local_addr();
        // Open the connection first: once draining is set, *new*
        // connections are closed unserved, while in-flight ones get an
        // explicit 503 so clients can tell shutdown from a crash.
        let mut stream = TcpStream::connect(addr).expect("connect");
        // Complete one request so the connection is known to be served
        // (a stream merely sitting in the accept backlog when draining
        // flips would be closed unserved).
        let (status, _) = roundtrip(&mut stream, "GET /report HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        handle.shared.draining.store(true, Ordering::SeqCst);
        let (status, _) = roundtrip(
            &mut stream,
            "POST /tasks HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}",
        );
        assert_eq!(status, 503);
        drop(stream);
        let report = handle.shutdown();
        assert_eq!(report.accepted, 0);
        assert!(report.conserved());
    }

    #[test]
    fn conservation_identity_arithmetic() {
        let mut r = IngestReport {
            accepted: 10,
            injected_burst: 2,
            completed: 7,
            expired: 3,
            shed_server: 1,
            stranded: 1,
            ..IngestReport::default()
        };
        assert!(r.conserved());
        r.stranded = 0;
        assert!(!r.conserved());
        r.offered = 20;
        r.shed_door = 5;
        assert!((r.shed_rate() - 0.25).abs() < 1e-12);
    }
}
