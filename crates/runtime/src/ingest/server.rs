//! The TCP acceptor side of the ingest front-end.
//!
//! Acceptor threads share one `TcpListener`; each serves its
//! connection's requests in order (keep-alive) and applies the
//! admission-control ladder to `POST /tasks`:
//!
//! 1. **Framing** — malformed requests are answered with 4xx and
//!    counted as rejected; the connection closes when framing is no
//!    longer trustworthy.
//! 2. **Watermark** — when the scheduler-published backlog exceeds the
//!    configured watermark the submission is shed at the door with
//!    `429 Too Many Requests` + `Retry-After` *before* any state is
//!    allocated.
//! 3. **Bounded queue** — otherwise the task is `try_send`-ed into the
//!    bounded scheduler queue; a full queue sheds with 429 instead of
//!    blocking the acceptor (backpressure never propagates into the
//!    kernel accept queue as unbounded latency).
//!
//! Everything is instrumented through the `ingest.*` observer catalog.

use super::http::{parse_request, parse_submit_body, Request, Response};
use crate::clock::ScaledClock;
use crossbeam::channel::{Sender, TrySendError};
use parking_lot::Mutex;
use react_core::{Task, TaskCategory, TaskId};
use react_geo::GeoPoint;
use react_obs::{CounterKind, ObserverHandle, SpanKind, SpanTimer};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Where an ingested task currently stands, as reported to status
/// polls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskStatus {
    /// Accepted at the door; waiting for the scheduler.
    Queued,
    /// Executing at a worker.
    Assigned,
    /// A worker returned a result.
    Completed {
        /// Whether the result arrived before the deadline.
        met_deadline: bool,
    },
    /// The deadline passed before a result.
    Expired,
    /// Dropped by the scheduler's graceful-degradation ladder.
    Shed,
}

impl TaskStatus {
    /// Stable wire name for status-poll responses.
    pub fn wire_name(self) -> &'static str {
        match self {
            TaskStatus::Queued => "queued",
            TaskStatus::Assigned => "assigned",
            TaskStatus::Completed { .. } => "completed",
            TaskStatus::Expired => "expired",
            TaskStatus::Shed => "shed",
        }
    }
}

/// Door-side counters, shared between acceptors and the scheduler.
/// All relaxed: they are reporting totals, never scheduling inputs.
#[derive(Debug, Default)]
pub struct DoorStats {
    /// `POST /tasks` requests received (parse succeeded or not).
    pub offered: AtomicU64,
    /// Submissions admitted into the bounded queue.
    pub accepted: AtomicU64,
    /// Submissions shed with 429 (watermark or full queue).
    pub shed: AtomicU64,
    /// Malformed requests answered 4xx/5xx.
    pub rejected: AtomicU64,
    /// Status polls served.
    pub polls: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

/// A task accepted at the door, en route to the scheduler.
#[derive(Debug, Clone)]
pub struct IngestTask {
    /// The fully built task.
    pub task: Task,
    /// Crowd-time instant the door accepted it (assignment-latency
    /// base; includes any time spent queued behind the scheduler).
    pub accepted_at: f64,
}

/// State shared between the acceptor threads and the scheduler thread.
pub struct Shared {
    /// The scaled clock all timestamps come from.
    pub clock: ScaledClock,
    /// Telemetry sink.
    pub observer: ObserverHandle,
    /// Set once teardown begins: submissions are answered 503.
    pub draining: AtomicBool,
    /// Scheduler-published backlog (bounded queue + unassigned pool),
    /// refreshed every tick; the door sheds above the watermark.
    pub backlog: AtomicUsize,
    /// Backlog level above which the door sheds.
    pub watermark: usize,
    /// Next task id to allocate.
    pub next_id: AtomicU64,
    /// Door counters.
    pub stats: DoorStats,
    /// Per-task status table for `GET /tasks/<id>`.
    pub statuses: Mutex<HashMap<u64, TaskStatus>>,
    /// The bounded queue into the scheduler.
    pub submit_tx: Sender<IngestTask>,
    /// Default task location when the body gives none.
    pub default_location: GeoPoint,
    /// Default deadline (crowd seconds) when the body gives none.
    pub default_deadline: f64,
    /// Default reward when the body gives none.
    pub default_reward: f64,
}

impl Shared {
    /// Snapshot of a task's status, if the id is known.
    pub fn status_of(&self, id: u64) -> Option<TaskStatus> {
        self.statuses.lock().get(&id).copied()
    }

    /// Records a status transition.
    pub fn set_status(&self, id: u64, status: TaskStatus) {
        self.statuses.lock().insert(id, status);
    }
}

/// Binds the listener and spawns `acceptors` acceptor threads.
pub fn start_acceptors(
    bind_addr: &str,
    acceptors: usize,
    idle_timeout: Duration,
    shared: Arc<Shared>,
) -> std::io::Result<(SocketAddr, Vec<JoinHandle<()>>)> {
    let listener = TcpListener::bind(bind_addr)?;
    let addr = listener.local_addr()?;
    let mut handles = Vec::with_capacity(acceptors);
    for i in 0..acceptors.max(1) {
        let listener = listener.try_clone()?;
        let shared = Arc::clone(&shared);
        handles.push(
            std::thread::Builder::new()
                .name(format!("ingest-acceptor-{i}"))
                .spawn(move || acceptor_loop(&listener, idle_timeout, &shared))
                .expect("spawn acceptor thread"),
        );
    }
    Ok((addr, handles))
}

/// Wakes `acceptors` threads blocked in `accept()` during teardown by
/// handing each a throwaway connection.
pub fn wake_acceptors(addr: SocketAddr, acceptors: usize) {
    for _ in 0..acceptors.max(1) {
        let _ = TcpStream::connect(addr);
    }
}

fn acceptor_loop(listener: &TcpListener, idle_timeout: Duration, shared: &Shared) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.draining.load(Ordering::SeqCst) {
            // Teardown wake-up connection (or a late client): serve
            // nothing, close immediately.
            return;
        }
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        if shared.observer.enabled() {
            shared.observer.incr(CounterKind::IngestConnections, 1);
        }
        serve_connection(stream, idle_timeout, shared);
    }
}

/// Serves one keep-alive connection until close, error, or teardown.
fn serve_connection(stream: TcpStream, idle_timeout: Duration, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(idle_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let timer = SpanTimer::start();
        let request = match parse_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return,
            Err(err) => {
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                if shared.observer.enabled() {
                    shared.observer.incr(CounterKind::IngestRejected, 1);
                }
                if let Some((status, reason)) = err.status() {
                    let body = format!("{{\"error\":\"{}\"}}", reason.to_ascii_lowercase());
                    let _ = Response::json(status, reason, body)
                        .closing()
                        .write_to(&mut writer);
                }
                // Framing is no longer trustworthy: close.
                return;
            }
        };
        let client_close = request.close;
        let response = route(&request, shared);
        let close = response.close || client_close;
        let ok = response.write_to(&mut writer).is_ok();
        timer.finish(shared.observer.as_ref(), SpanKind::IngestRequest);
        if !ok || close || shared.draining.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatches one well-framed request to its endpoint.
fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/tasks") => submit(request, shared),
        ("GET", "/report") => report(shared),
        ("GET", path) if path.starts_with("/tasks/") => poll(&path["/tasks/".len()..], shared),
        ("GET", "/tasks") | ("POST", _) | ("GET", _) => {
            count_rejected(shared);
            Response::json(404, "Not Found", "{\"error\":\"not found\"}")
        }
        _ => {
            count_rejected(shared);
            Response::json(
                405,
                "Method Not Allowed",
                "{\"error\":\"method not allowed\"}",
            )
        }
    }
}

fn count_rejected(shared: &Shared) {
    shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
    if shared.observer.enabled() {
        shared.observer.incr(CounterKind::IngestRejected, 1);
    }
}

fn shed_response(shared: &Shared) -> Response {
    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
    if shared.observer.enabled() {
        shared.observer.incr(CounterKind::IngestShed, 1);
    }
    Response::json(429, "Too Many Requests", "{\"state\":\"shed\"}").with_retry_after(1)
}

/// `POST /tasks`: the admission-control ladder.
fn submit(request: &Request, shared: &Shared) -> Response {
    shared.stats.offered.fetch_add(1, Ordering::Relaxed);
    if shared.draining.load(Ordering::SeqCst) {
        count_rejected(shared);
        return Response::json(503, "Service Unavailable", "{\"state\":\"draining\"}").closing();
    }
    // Rung 2: shed at the door while the scheduler lags, before
    // allocating any per-task state.
    if shared.backlog.load(Ordering::Relaxed) > shared.watermark {
        return shed_response(shared);
    }
    // Rung 1 (body validation) — framing already passed.
    let Some(body) = parse_submit_body(&request.body) else {
        count_rejected(shared);
        return Response::json(400, "Bad Request", "{\"error\":\"bad body\"}");
    };
    let deadline = body.deadline.unwrap_or(shared.default_deadline);
    let reward = body.reward.unwrap_or(shared.default_reward);
    if !(deadline.is_finite() && deadline > 0.0 && reward.is_finite() && reward >= 0.0) {
        count_rejected(shared);
        return Response::json(400, "Bad Request", "{\"error\":\"bad deadline or reward\"}");
    }
    let location = match (body.lat, body.lon) {
        (Some(lat), Some(lon))
            if (-90.0..=90.0).contains(&lat) && (-180.0..=180.0).contains(&lon) =>
        {
            GeoPoint::new(lat, lon)
        }
        (None, None) => shared.default_location,
        _ => {
            count_rejected(shared);
            return Response::json(400, "Bad Request", "{\"error\":\"bad location\"}");
        }
    };
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let task = Task::new(
        TaskId(id),
        location,
        deadline,
        reward,
        TaskCategory(body.category.unwrap_or(0)),
        "ingest",
    );
    shared.set_status(id, TaskStatus::Queued);
    // Rung 3: the bounded queue. A full queue sheds instead of
    // blocking the acceptor.
    match shared.submit_tx.try_send(IngestTask {
        task,
        accepted_at: shared.clock.now(),
    }) {
        Ok(()) => {
            shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
            if shared.observer.enabled() {
                shared.observer.incr(CounterKind::IngestAccepted, 1);
            }
            Response::json(
                202,
                "Accepted",
                format!("{{\"task\":{id},\"state\":\"queued\"}}"),
            )
        }
        Err(TrySendError::Full(_)) => {
            shared.statuses.lock().remove(&id);
            shed_response(shared)
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.statuses.lock().remove(&id);
            count_rejected(shared);
            Response::json(503, "Service Unavailable", "{\"state\":\"draining\"}").closing()
        }
    }
}

/// `GET /tasks/<id>`: status poll.
fn poll(id_text: &str, shared: &Shared) -> Response {
    shared.stats.polls.fetch_add(1, Ordering::Relaxed);
    if shared.observer.enabled() {
        shared.observer.incr(CounterKind::IngestPolls, 1);
    }
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::json(404, "Not Found", "{\"error\":\"bad task id\"}");
    };
    match shared.status_of(id) {
        Some(status) => {
            let met = match status {
                TaskStatus::Completed { met_deadline } => {
                    format!(",\"met_deadline\":{met_deadline}")
                }
                _ => String::new(),
            };
            Response::json(
                200,
                "OK",
                format!(
                    "{{\"task\":{id},\"state\":\"{}\"{met}}}",
                    status.wire_name()
                ),
            )
        }
        None => Response::json(404, "Not Found", "{\"error\":\"unknown task\"}"),
    }
}

/// `GET /report`: door-counter snapshot.
fn report(shared: &Shared) -> Response {
    let s = &shared.stats;
    Response::json(
        200,
        "OK",
        format!(
            "{{\"offered\":{},\"accepted\":{},\"shed\":{},\"rejected\":{},\"polls\":{},\"connections\":{},\"backlog\":{},\"draining\":{}}}",
            s.offered.load(Ordering::Relaxed),
            s.accepted.load(Ordering::Relaxed),
            s.shed.load(Ordering::Relaxed),
            s.rejected.load(Ordering::Relaxed),
            s.polls.load(Ordering::Relaxed),
            s.connections.load(Ordering::Relaxed),
            shared.backlog.load(Ordering::Relaxed),
            shared.draining.load(Ordering::SeqCst),
        ),
    )
}
