//! Message types exchanged between the runtime's threads.

use react_core::{TaskId, WorkerId};

/// Commands delivered to a worker-host thread's mailbox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerCommand {
    /// Execute this task; the host sleeps for its sampled service time
    /// unless recalled first.
    Assign {
        /// The task to execute.
        task: TaskId,
        /// Pre-sampled execution time in crowd seconds (sampled on the
        /// scheduler side so runs with one RNG seed stay reproducible
        /// regardless of thread interleaving).
        exec_crowd_secs: f64,
    },
    /// Abandon the given task (Eq. 2 recall) — whether it is currently
    /// executing or still waiting in the host's local queue.
    Recall {
        /// The task to abandon.
        task: TaskId,
    },
    /// Terminate the host thread.
    Shutdown,
}

/// A worker's completion report back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// Who finished.
    pub worker: WorkerId,
    /// Which task.
    pub task: TaskId,
    /// The worker's intrinsic quality verdict for this result.
    pub quality_ok: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_shapes() {
        let cmd = WorkerCommand::Assign {
            task: TaskId(1),
            exec_crowd_secs: 5.0,
        };
        assert!(matches!(cmd, WorkerCommand::Assign { .. }));
        assert_ne!(cmd, WorkerCommand::Recall { task: TaskId(1) });
        let done = Completion {
            worker: WorkerId(2),
            task: TaskId(1),
            quality_ok: true,
        };
        assert_eq!(done.worker, WorkerId(2));
    }
}
