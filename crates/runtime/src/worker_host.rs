//! The worker-host thread: one per crowd worker.
//!
//! Executes [`WorkerCommand::Assign`] by sleeping for the task's service
//! time — *interruptibly*: the sleep is a `recv_deadline` on the same
//! mailbox, so a [`WorkerCommand::Recall`] arriving mid-execution aborts
//! the task immediately (the scheduler already rerouted it elsewhere).
//!
//! The host keeps a local FIFO of pending assignments: availability-aware
//! policies never send more than one task at a time, but the Traditional
//! (AMT-style) policy assigns blindly, and the extra tasks queue behind
//! the current one exactly like a marketplace worker's personal to-do
//! list.

use crate::clock::ScaledClock;
use crate::messages::{Completion, WorkerCommand};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use react_core::{TaskId, WorkerId};
use std::collections::VecDeque;

/// What the post-service mailbox sweep decided about the finished task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Settle {
    /// No countermanding command was pending: report the completion.
    Report,
    /// A recall for the finished task was already waiting: the
    /// scheduler rerouted it, so the local result is stale.
    Suppress,
    /// Teardown was already underway: drop the completion and stop.
    Stop,
}

/// Sweeps commands that raced with the end of the service time.
///
/// `recv_deadline` delivers queued commands before it reports a
/// timeout, but a `Recall` or `Shutdown` can still arrive in the window
/// between the timeout and the completion send. Before the wire-ingest
/// front-end that race was invisible; with external teardown it left an
/// orphaned `Completed` audit event for a task the scheduler had
/// already recalled or sealed. Draining the mailbox non-blockingly
/// right before reporting closes the window: a pending `Shutdown` (or a
/// hung-up scheduler) stops the host without reporting, a pending
/// recall of the finished task suppresses the stale result, and any
/// other commands are applied exactly as the service-time loop would
/// have.
fn settle_after_service(
    mailbox: &Receiver<WorkerCommand>,
    queue: &mut VecDeque<(TaskId, f64)>,
    task: TaskId,
) -> Settle {
    let mut settle = Settle::Report;
    loop {
        match mailbox.try_recv() {
            Err(TryRecvError::Empty) => return settle,
            Err(TryRecvError::Disconnected) | Ok(WorkerCommand::Shutdown) => return Settle::Stop,
            Ok(WorkerCommand::Assign {
                task: assigned,
                exec_crowd_secs,
            }) => {
                if assigned != task && !queue.iter().any(|&(t, _)| t == assigned) {
                    queue.push_back((assigned, exec_crowd_secs));
                }
            }
            Ok(WorkerCommand::Recall { task: recalled }) => {
                queue.retain(|&(t, _)| t != recalled);
                if recalled == task {
                    settle = Settle::Suppress;
                }
            }
        }
    }
}

/// Runs a worker host until [`WorkerCommand::Shutdown`] or the mailbox
/// closes. `quality` is the worker's intrinsic positive-feedback
/// probability; verdicts are derived from a per-worker counter hash so
/// the host needs no RNG state.
pub fn run_worker_host(
    id: WorkerId,
    quality: f64,
    clock: ScaledClock,
    mailbox: Receiver<WorkerCommand>,
    completions: Sender<Completion>,
) {
    let mut verdict_counter: u64 = 0;
    let mut queue: VecDeque<(TaskId, f64)> = VecDeque::new();
    loop {
        // Pick up the next work item: local queue first, then block on
        // the mailbox.
        let (task, exec_crowd_secs) = match queue.pop_front() {
            Some(item) => item,
            None => match mailbox.recv() {
                Ok(WorkerCommand::Assign {
                    task,
                    exec_crowd_secs,
                }) => (task, exec_crowd_secs),
                Ok(WorkerCommand::Recall { .. }) => continue, // stale
                Ok(WorkerCommand::Shutdown) | Err(_) => return,
            },
        };

        // Interruptible "human work": wait out the service time while
        // still reacting to commands.
        let deadline = clock.deadline_after(exec_crowd_secs);
        let finished = loop {
            match mailbox.recv_deadline(deadline) {
                Err(RecvTimeoutError::Timeout) => break true,
                Err(RecvTimeoutError::Disconnected) => return,
                Ok(WorkerCommand::Shutdown) => return,
                Ok(WorkerCommand::Assign {
                    task: assigned,
                    exec_crowd_secs: assigned_secs,
                }) => {
                    // A duplicated Assign (scheduler retry, fault
                    // injection) must not make the worker do the same
                    // task twice.
                    if assigned != task && !queue.iter().any(|&(t, _)| t == assigned) {
                        queue.push_back((assigned, assigned_secs));
                    }
                }
                Ok(WorkerCommand::Recall { task: recalled }) => {
                    // Purge the pending FIFO *before* deciding about the
                    // task in hand: a recall must be idempotent. Breaking
                    // first used to leave a queued copy of the recalled
                    // task behind, and the host would replay it later —
                    // completing a task the scheduler had already
                    // reassigned (or seen completed) elsewhere.
                    queue.retain(|&(t, _)| t != recalled);
                    if recalled == task {
                        break false; // abandon the one in hand
                    }
                }
            }
        };
        if finished {
            match settle_after_service(&mailbox, &mut queue, task) {
                Settle::Stop => return,
                Settle::Suppress => continue,
                Settle::Report => {}
            }
            verdict_counter += 1;
            let quality_ok = verdict(id, verdict_counter) < quality;
            // The scheduler hanging up mid-run is a normal shutdown
            // race, not an error.
            let _ = completions.send(Completion {
                worker: id,
                task,
                quality_ok,
            });
        }
    }
}

/// Deterministic per-(worker, completion) pseudo-uniform in [0, 1).
fn verdict(id: WorkerId, counter: u64) -> f64 {
    let mut z = id.0 ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    fn spawn_host(
        quality: f64,
    ) -> (
        Sender<WorkerCommand>,
        Receiver<Completion>,
        std::thread::JoinHandle<()>,
        ScaledClock,
    ) {
        let (cmd_tx, cmd_rx) = unbounded();
        let (done_tx, done_rx) = unbounded();
        let clock = ScaledClock::start(1000.0); // 1 crowd-sec = 1 wall-ms
        let handle = std::thread::spawn(move || {
            run_worker_host(WorkerId(1), quality, clock, cmd_rx, done_tx)
        });
        (cmd_tx, done_rx, handle, clock)
    }

    #[test]
    fn completes_assignment_after_service_time() {
        let (cmd, done, handle, _clock) = spawn_host(1.0);
        cmd.send(WorkerCommand::Assign {
            task: TaskId(7),
            exec_crowd_secs: 20.0, // 20 wall-ms
        })
        .unwrap();
        let completion = done.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(completion.task, TaskId(7));
        assert_eq!(completion.worker, WorkerId(1));
        assert!(completion.quality_ok, "quality 1.0 is always positive");
        cmd.send(WorkerCommand::Shutdown).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn recall_aborts_execution() {
        let (cmd, done, handle, clock) = spawn_host(1.0);
        cmd.send(WorkerCommand::Assign {
            task: TaskId(1),
            exec_crowd_secs: 60_000.0, // one crowd-minute: must not finish
        })
        .unwrap();
        std::thread::sleep(clock.to_wall(20.0));
        cmd.send(WorkerCommand::Recall { task: TaskId(1) }).unwrap();
        // A recalled task must produce no completion.
        assert!(done.recv_timeout(Duration::from_millis(100)).is_err());
        // The host is idle again and can take new work.
        cmd.send(WorkerCommand::Assign {
            task: TaskId(2),
            exec_crowd_secs: 5.0,
        })
        .unwrap();
        let completion = done.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(completion.task, TaskId(2));
        drop(cmd);
        handle.join().unwrap();
    }

    #[test]
    fn double_booked_tasks_queue_fifo() {
        let (cmd, done, handle, _clock) = spawn_host(1.0);
        for t in [1u64, 2, 3] {
            cmd.send(WorkerCommand::Assign {
                task: TaskId(t),
                exec_crowd_secs: 10.0,
            })
            .unwrap();
        }
        let order: Vec<TaskId> = (0..3)
            .map(|_| done.recv_timeout(Duration::from_secs(5)).unwrap().task)
            .collect();
        assert_eq!(order, vec![TaskId(1), TaskId(2), TaskId(3)]);
        drop(cmd);
        handle.join().unwrap();
    }

    #[test]
    fn recall_of_queued_task_removes_it() {
        let (cmd, done, handle, _clock) = spawn_host(1.0);
        cmd.send(WorkerCommand::Assign {
            task: TaskId(1),
            exec_crowd_secs: 50.0,
        })
        .unwrap();
        cmd.send(WorkerCommand::Assign {
            task: TaskId(2),
            exec_crowd_secs: 5.0,
        })
        .unwrap();
        cmd.send(WorkerCommand::Recall { task: TaskId(2) }).unwrap();
        // Task 1 completes; task 2 never does.
        let completion = done.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(completion.task, TaskId(1));
        assert!(done.recv_timeout(Duration::from_millis(150)).is_err());
        drop(cmd);
        handle.join().unwrap();
    }

    #[test]
    fn stale_recall_is_harmless_and_drop_terminates() {
        let (cmd, done, handle, _clock) = spawn_host(0.0);
        cmd.send(WorkerCommand::Recall { task: TaskId(9) }).unwrap();
        cmd.send(WorkerCommand::Assign {
            task: TaskId(3),
            exec_crowd_secs: 1.0,
        })
        .unwrap();
        let completion = done.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(!completion.quality_ok, "quality 0.0 is never positive");
        drop(cmd); // channel closes → host exits
        handle.join().unwrap();
    }

    #[test]
    fn recall_purges_queued_copy_of_the_task_in_hand() {
        // Regression: a duplicated Assign left a stale copy of the
        // recalled task in the pending FIFO; the host replayed it and
        // completed a task the scheduler had already rerouted.
        let (cmd, done, handle, clock) = spawn_host(1.0);
        cmd.send(WorkerCommand::Assign {
            task: TaskId(1),
            exec_crowd_secs: 60_000.0,
        })
        .unwrap();
        std::thread::sleep(clock.to_wall(20.0));
        // Duplicate delivery of the same assignment…
        cmd.send(WorkerCommand::Assign {
            task: TaskId(1),
            exec_crowd_secs: 60_000.0,
        })
        .unwrap();
        // …then the recall: both the in-hand copy and any queued copy
        // must die together.
        cmd.send(WorkerCommand::Recall { task: TaskId(1) }).unwrap();
        assert!(
            done.recv_timeout(Duration::from_millis(150)).is_err(),
            "a recalled task must never complete, even from a queued copy"
        );
        // The host is idle and healthy.
        cmd.send(WorkerCommand::Assign {
            task: TaskId(2),
            exec_crowd_secs: 5.0,
        })
        .unwrap();
        assert_eq!(
            done.recv_timeout(Duration::from_secs(5)).unwrap().task,
            TaskId(2)
        );
        drop(cmd);
        handle.join().unwrap();
    }

    #[test]
    fn duplicate_assign_completes_once() {
        let (cmd, done, handle, clock) = spawn_host(1.0);
        cmd.send(WorkerCommand::Assign {
            task: TaskId(3),
            exec_crowd_secs: 40.0,
        })
        .unwrap();
        std::thread::sleep(clock.to_wall(10.0));
        cmd.send(WorkerCommand::Assign {
            task: TaskId(3),
            exec_crowd_secs: 40.0,
        })
        .unwrap();
        let completion = done.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(completion.task, TaskId(3));
        assert!(
            done.recv_timeout(Duration::from_millis(150)).is_err(),
            "the duplicated assignment must not run a second time"
        );
        drop(cmd);
        handle.join().unwrap();
    }

    #[test]
    fn settle_reports_when_no_command_raced_the_finish() {
        let (_tx, rx) = unbounded::<WorkerCommand>();
        let mut queue = VecDeque::new();
        assert_eq!(
            settle_after_service(&rx, &mut queue, TaskId(1)),
            Settle::Report
        );
    }

    #[test]
    fn settle_suppresses_completion_when_recall_raced_the_finish() {
        // Regression for the teardown race surfaced by the wire
        // boundary: the scheduler recalls the task in the instant the
        // service time runs out. The host must not report a completion
        // for it — doing so produced a Completed audit event after the
        // Recalled one.
        let (tx, rx) = unbounded();
        tx.send(WorkerCommand::Recall { task: TaskId(7) }).unwrap();
        let mut queue = VecDeque::new();
        assert_eq!(
            settle_after_service(&rx, &mut queue, TaskId(7)),
            Settle::Suppress
        );
        assert!(rx.is_empty(), "the raced recall must be consumed");
    }

    #[test]
    fn settle_stops_without_reporting_when_shutdown_raced_the_finish() {
        let (tx, rx) = unbounded();
        tx.send(WorkerCommand::Shutdown).unwrap();
        let mut queue = VecDeque::new();
        assert_eq!(
            settle_after_service(&rx, &mut queue, TaskId(7)),
            Settle::Stop
        );

        // A hung-up scheduler is the same teardown signal.
        let (tx2, rx2) = unbounded::<WorkerCommand>();
        drop(tx2);
        assert_eq!(
            settle_after_service(&rx2, &mut queue, TaskId(7)),
            Settle::Stop
        );
    }

    #[test]
    fn settle_applies_raced_assigns_and_unrelated_recalls() {
        let (tx, rx) = unbounded();
        tx.send(WorkerCommand::Assign {
            task: TaskId(2),
            exec_crowd_secs: 5.0,
        })
        .unwrap();
        tx.send(WorkerCommand::Assign {
            task: TaskId(3),
            exec_crowd_secs: 6.0,
        })
        .unwrap();
        tx.send(WorkerCommand::Recall { task: TaskId(3) }).unwrap();
        let mut queue = VecDeque::new();
        assert_eq!(
            settle_after_service(&rx, &mut queue, TaskId(1)),
            Settle::Report
        );
        assert_eq!(
            queue.iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![TaskId(2)]
        );
    }

    #[test]
    fn host_survives_shutdown_racing_a_completion_burst() {
        // End-to-end variant of the settle tests: hammer a host with
        // instant tasks while tearing it down. Whatever interleaving the
        // scheduler's Shutdown lands in, no completion may arrive after
        // the host exits, and the host must exit at all.
        for round in 0u64..20 {
            let (cmd, done, handle, _clock) = spawn_host(1.0);
            for t in 0..5u64 {
                cmd.send(WorkerCommand::Assign {
                    task: TaskId(round * 10 + t),
                    exec_crowd_secs: 0.0,
                })
                .unwrap();
            }
            cmd.send(WorkerCommand::Shutdown).unwrap();
            handle.join().unwrap();
            // Once the host has exited, the completion stream is sealed:
            // draining it must terminate (sender dropped with the host).
            let drained: Vec<Completion> = done.iter().collect();
            assert!(drained.len() <= 5);
        }
    }

    #[test]
    fn verdict_is_uniform_ish() {
        let n = 10_000;
        let below_half =
            (0..n).filter(|&i| verdict(WorkerId(9), i) < 0.5).count() as f64 / n as f64;
        assert!((below_half - 0.5).abs() < 0.03, "fraction {below_half}");
    }
}
