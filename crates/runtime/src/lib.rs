//! Live (wall-clock) deployment of the REACT middleware.
//!
//! The paper deployed REACT as a Java middleware on PlanetLab. This crate
//! is the equivalent *running system* in Rust: real threads exchanging
//! messages over `crossbeam` channels, driven by the wall clock instead
//! of the discrete-event simulator —
//!
//! * a **requester thread** submits tasks on a Poisson schedule,
//! * one **worker-host thread per crowd worker** executes assignments
//!   (sleeping for the sampled human service time, interruptibly so the
//!   scheduler can recall a stalled task), and
//! * the **scheduler thread** owns the [`react_core::ReactServer`] and
//!   runs its control loop: ingestion, Eq. (2) recalls, batch matching.
//!
//! Simulated "human seconds" are compressed by a configurable
//! [`LiveConfig::time_scale`] so a 15-minute crowd scenario demos in
//! seconds. The discrete-event runner in `react-crowd` remains the tool
//! for the paper's figures (deterministic, fast); this runtime exists to
//! show the middleware really schedules asynchronously end-to-end.
//!
//! The `tokio` crate suggested by the reproduction hint was deliberately
//! avoided: the dispatch pattern (mpmc queues + per-worker mailboxes)
//! maps directly onto OS threads and `crossbeam` channels, which are on
//! the approved dependency list (see `DESIGN.md`).

#![warn(missing_docs)]

pub mod clock;
pub mod ingest;
pub mod messages;
pub mod runtime;
pub mod worker_host;

pub use clock::{ScaledClock, Stopwatch};
pub use ingest::{IngestConfig, IngestHandle, IngestReport, IngestRuntime};
pub use messages::{Completion, WorkerCommand};
pub use runtime::{LiveConfig, LiveReport, LiveRuntime};
