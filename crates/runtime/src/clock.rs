//! A wall clock with time compression.

use std::time::{Duration, Instant};

/// Maps wall-clock time to "crowd seconds": `crowd = wall × scale`.
///
/// A scale of 60 runs one simulated minute per wall second, letting the
/// live demo replay the paper's 60–120 s deadlines in seconds.
#[derive(Debug, Clone, Copy)]
pub struct ScaledClock {
    start: Instant,
    scale: f64,
}

impl ScaledClock {
    /// Starts the clock now.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite scale (static config).
    pub fn start(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be positive and finite, got {scale}"
        );
        ScaledClock {
            start: Instant::now(),
            scale,
        }
    }

    /// The compression factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Crowd seconds elapsed since [`ScaledClock::start`].
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * self.scale
    }

    /// Converts a crowd-seconds duration into the wall [`Duration`] to
    /// actually sleep/wait.
    pub fn to_wall(&self, crowd_secs: f64) -> Duration {
        Duration::from_secs_f64((crowd_secs / self.scale).max(0.0))
    }

    /// The wall-clock [`Instant`] lying `crowd_secs` crowd seconds in
    /// the future — the deadline to hand to `recv_deadline`-style waits.
    ///
    /// This is the sanctioned way for runtime code to obtain an
    /// `Instant`; reading `Instant::now()` directly elsewhere trips the
    /// `no-wall-clock` lint (see `react-analyze`).
    pub fn deadline_after(&self, crowd_secs: f64) -> Instant {
        Instant::now() + self.to_wall(crowd_secs)
    }
}

/// A wall-clock stopwatch for progress and latency *reporting* (never
/// for simulation semantics — those run on virtual time or a
/// [`ScaledClock`]).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Wall seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_advances_scaled() {
        let clock = ScaledClock::start(100.0);
        // analyze: allow(no-sleep-in-tests) this test measures the wall→crowd scaling itself
        std::thread::sleep(Duration::from_millis(30));
        let t = clock.now();
        // 30 ms wall × 100 = 3 crowd-seconds, with generous slack for CI.
        assert!(t >= 2.0, "crowd time {t} too small");
        assert!(t < 60.0, "crowd time {t} far too large");
    }

    #[test]
    fn wall_conversion_inverts_scale() {
        let clock = ScaledClock::start(50.0);
        assert_eq!(clock.to_wall(100.0), Duration::from_secs(2));
        assert_eq!(clock.to_wall(-5.0), Duration::ZERO);
        assert_eq!(clock.scale(), 50.0);
    }

    #[test]
    #[should_panic(expected = "time scale")]
    fn rejects_zero_scale() {
        let _ = ScaledClock::start(0.0);
    }
}
