//! Online per-worker execution-time estimator.
//!
//! The Profiling Component of the REACT server stores, for every worker,
//! the execution times of the tasks they completed. The Dynamic Assignment
//! Component then needs a fitted power law over those times. Refitting on
//! every observation would be wasteful (the fit is `O(n)`), so the
//! estimator caches the fitted model and invalidates it on new samples.

use crate::empirical::{EmpiricalDist, FittedModel};
use crate::powerlaw::{FitMethod, PowerLaw};

/// Configuration for an [`ExecTimeEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Minimum number of completed tasks before a model is produced.
    /// The paper requires 3 completed tasks before the probabilistic
    /// reassignment model activates.
    pub min_samples: usize,
    /// Keep only the most recent `window` samples (`None` = unbounded).
    /// A sliding window lets the profile track workers whose behaviour
    /// drifts over a long session.
    pub window: Option<usize>,
    /// Which MLE variant to use for the exponent.
    pub fit_method: FitMethod,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            min_samples: 3,
            window: None,
            fit_method: FitMethod::Paper,
        }
    }
}

/// Stores a worker's observed execution times and lazily fits a
/// [`PowerLaw`] over them.
///
/// `k_min` is always the smallest retained sample, matching the paper:
/// *"The lower bound `k_min` is set as the worker's lowest measured
/// execution time for a task."*
#[derive(Debug, Clone)]
pub struct ExecTimeEstimator {
    config: EstimatorConfig,
    samples: Vec<f64>,
    /// Cached fit; cleared whenever `samples` changes.
    cached: Option<PowerLaw>,
    dirty: bool,
    /// Reused by the KS goodness-of-fit check in [`Self::auto_model`] so
    /// every refit does not allocate and sort a fresh sample copy.
    ks_scratch: Vec<f64>,
}

impl ExecTimeEstimator {
    /// Creates an empty estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        ExecTimeEstimator {
            config,
            samples: Vec::new(),
            cached: None,
            dirty: false,
            ks_scratch: Vec::new(),
        }
    }

    /// Creates an estimator with the paper's defaults (3-sample warm-up,
    /// unbounded history, paper fit formula).
    pub fn with_defaults() -> Self {
        Self::new(EstimatorConfig::default())
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Records one completed-task execution time (seconds).
    ///
    /// Non-finite or non-positive observations are ignored: execution
    /// times are measured durations and a zero/negative value indicates a
    /// measurement bug upstream, not a real completion.
    pub fn observe(&mut self, exec_time: f64) {
        if !exec_time.is_finite() || exec_time <= 0.0 {
            return;
        }
        self.samples.push(exec_time);
        if let Some(w) = self.config.window {
            if self.samples.len() > w {
                let excess = self.samples.len() - w;
                self.samples.drain(..excess);
            }
        }
        self.dirty = true;
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// True once enough samples exist for [`Self::model`] to return one.
    pub fn is_warm(&self) -> bool {
        self.samples.len() >= self.config.min_samples.max(1)
    }

    /// The smallest retained sample (the `k_min` the fit will use).
    pub fn k_min(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |m| m.min(s)))
            })
    }

    /// The retained samples, in arrival order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Returns the fitted power law, refitting if the sample set changed.
    ///
    /// Returns `None` until [`Self::is_warm`]. Fitting failures cannot
    /// occur for warmed-up estimators because `observe` filters invalid
    /// samples and `k_min` is taken from the samples themselves.
    pub fn model(&mut self) -> Option<PowerLaw> {
        if !self.is_warm() {
            return None;
        }
        if self.dirty || self.cached.is_none() {
            let k_min = self.k_min()?;
            self.cached = PowerLaw::fit(&self.samples, k_min, self.config.fit_method).ok();
            self.dirty = false;
        }
        self.cached
    }

    /// The empirical (step-CCDF) distribution of the retained samples —
    /// the model-free alternative to [`Self::model`]. `None` until warm.
    pub fn empirical(&self) -> Option<EmpiricalDist> {
        if !self.is_warm() {
            return None;
        }
        EmpiricalDist::from_samples(&self.samples)
    }

    /// Model selection: the power-law fit when its Kolmogorov–Smirnov
    /// statistic against the samples is at most `ks_threshold`, the
    /// empirical distribution otherwise. `None` until warm.
    ///
    /// This guards the paper's parametric assumption: a worker whose
    /// latencies are *not* power-law shaped (bimodal, say) falls back to
    /// the distribution-free CCDF instead of a badly-fitted tail.
    pub fn auto_model(&mut self, ks_threshold: f64) -> Option<FittedModel> {
        let model = self.model()?;
        if model.ks_statistic_with(&self.samples, &mut self.ks_scratch) <= ks_threshold {
            Some(FittedModel::PowerLaw(model))
        } else {
            self.empirical().map(FittedModel::Empirical)
        }
    }

    /// Drops all samples and the cached model.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.cached = None;
        self.dirty = false;
    }

    /// Sample mean of retained execution times (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cold_until_min_samples() {
        let mut est = ExecTimeEstimator::with_defaults();
        est.observe(5.0);
        est.observe(7.0);
        assert!(!est.is_warm());
        assert!(est.model().is_none());
        est.observe(9.0);
        assert!(est.is_warm());
        assert!(est.model().is_some());
    }

    #[test]
    fn ignores_invalid_observations() {
        let mut est = ExecTimeEstimator::with_defaults();
        est.observe(f64::NAN);
        est.observe(f64::INFINITY);
        est.observe(-1.0);
        est.observe(0.0);
        assert!(est.is_empty());
    }

    #[test]
    fn k_min_tracks_smallest_sample() {
        let mut est = ExecTimeEstimator::with_defaults();
        for s in [9.0, 4.0, 11.0] {
            est.observe(s);
        }
        assert_eq!(est.k_min(), Some(4.0));
        let model = est.model().unwrap();
        assert_eq!(model.k_min(), 4.0);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut est = ExecTimeEstimator::new(EstimatorConfig {
            min_samples: 1,
            window: Some(3),
            fit_method: FitMethod::Continuous,
        });
        for s in [1.0, 2.0, 3.0, 4.0, 5.0] {
            est.observe(s);
        }
        assert_eq!(est.samples(), &[3.0, 4.0, 5.0]);
        assert_eq!(est.k_min(), Some(3.0));
    }

    #[test]
    fn model_is_cached_until_new_sample() {
        let mut est = ExecTimeEstimator::with_defaults();
        for s in [2.0, 4.0, 8.0] {
            est.observe(s);
        }
        let m1 = est.model().unwrap();
        let m2 = est.model().unwrap();
        assert_eq!(m1, m2);
        est.observe(16.0);
        let m3 = est.model().unwrap();
        assert_ne!(m1, m3, "new sample must invalidate the cached fit");
    }

    #[test]
    fn recovers_synthetic_worker_profile() {
        // A worker whose times follow a power law: the estimator's fitted
        // exponent should be close to the truth.
        let truth = crate::PowerLaw::new(2.2, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut est = ExecTimeEstimator::new(EstimatorConfig {
            min_samples: 3,
            window: None,
            fit_method: FitMethod::Continuous,
        });
        for _ in 0..5_000 {
            est.observe(truth.sample(&mut rng));
        }
        let fitted = est.model().unwrap();
        assert!(
            (fitted.alpha() - 2.2).abs() < 0.15,
            "α = {}",
            fitted.alpha()
        );
    }

    #[test]
    fn empirical_distribution_when_warm() {
        let mut est = ExecTimeEstimator::with_defaults();
        est.observe(4.0);
        est.observe(2.0);
        assert!(est.empirical().is_none(), "cold estimator");
        est.observe(8.0);
        let emp = est.empirical().unwrap();
        assert_eq!(emp.len(), 3);
        assert_eq!(emp.min(), 2.0);
        use crate::empirical::LatencyCcdf;
        assert!((emp.ccdf(4.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auto_model_keeps_good_power_law_fit() {
        // Continuous fit on continuous samples: the well-specified case.
        // (The paper's −½-offset estimator is biased on continuous data
        // and would need a looser threshold.)
        let truth = crate::PowerLaw::new(2.3, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(21);
        let mut est = ExecTimeEstimator::new(EstimatorConfig {
            min_samples: 3,
            window: None,
            fit_method: FitMethod::Continuous,
        });
        for _ in 0..2_000 {
            est.observe(truth.sample(&mut rng));
        }
        let m = est.auto_model(0.05).unwrap();
        assert!(m.is_power_law(), "good fit should stay parametric");
    }

    #[test]
    fn auto_model_falls_back_on_bad_fit() {
        // Sharply bimodal latencies (2 s or 100 s, nothing between) are
        // poorly described by any power law.
        let mut est = ExecTimeEstimator::with_defaults();
        for i in 0..400 {
            est.observe(if i % 2 == 0 { 2.0 } else { 100.0 });
        }
        let m = est.auto_model(0.05).unwrap();
        assert!(!m.is_power_law(), "bimodal data must fall back");
        // A permissive threshold keeps the parametric model.
        let m = est.auto_model(1.0).unwrap();
        assert!(m.is_power_law());
    }

    #[test]
    fn reset_clears_everything() {
        let mut est = ExecTimeEstimator::with_defaults();
        for s in [2.0, 4.0, 8.0] {
            est.observe(s);
        }
        assert!(est.model().is_some());
        est.reset();
        assert!(est.is_empty());
        assert!(est.model().is_none());
        assert_eq!(est.k_min(), None);
    }

    #[test]
    fn mean_of_samples() {
        let mut est = ExecTimeEstimator::with_defaults();
        assert_eq!(est.mean(), None);
        for s in [2.0, 4.0] {
            est.observe(s);
        }
        assert_eq!(est.mean(), Some(3.0));
    }
}
