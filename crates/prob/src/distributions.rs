//! Auxiliary distributions for the workload generators.
//!
//! Only the approved `rand` crate is available offline, so the handful of
//! distributions the REACT workloads need (uniform ranges, exponential
//! inter-arrivals for Poisson processes, Bernoulli coin flips, bounded
//! Pareto tails for the case-study trace) are implemented here directly
//! via inverse-transform sampling.

use rand::Rng;

/// A closed uniform range `[lo, hi]` over `f64`.
///
/// Workers in the paper's evaluation each draw their service time from a
/// personal `[min, max]` range, itself drawn uniformly from `[1, 20]` s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates the range, swapping the bounds if given in reverse order.
    pub fn new(lo: f64, hi: f64) -> Self {
        if lo <= hi {
            UniformRange { lo, hi }
        } else {
            UniformRange { lo: hi, hi: lo }
        }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width of the range.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the range.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Draws a value uniformly from `[lo, hi]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lo == self.hi {
            return self.lo;
        }
        rng.gen_range(self.lo..=self.hi)
    }

    /// True when `x` lies inside the closed range.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`), the
/// inter-arrival law of a Poisson process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda > 0`.
    ///
    /// # Panics
    /// Panics when `lambda` is not strictly positive or not finite; the
    /// rate is always a static configuration value in this codebase.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0 && lambda.is_finite(),
            "exponential rate must be positive and finite, got {lambda}"
        );
        Exponential { lambda }
    }

    /// Creates an exponential with the given mean (`1/rate`).
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.lambda
    }

    /// The mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Inverse-transform sample: `−ln(u)/λ`, `u ~ U(0,1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - rng.gen::<f64>(); // (0, 1]
        -u.ln() / self.lambda
    }

    /// CDF `1 − e^{−λx}` (0 for negative `x`).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.lambda * x).exp()
        }
    }
}

/// A Bernoulli coin with success probability `p ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the coin, clamping `p` into `[0, 1]`.
    pub fn new(p: f64) -> Self {
        Bernoulli {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Flips the coin.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p >= 1.0 {
            true
        } else if self.p <= 0.0 {
            false
        } else {
            rng.gen::<f64>() < self.p
        }
    }
}

/// A Pareto distribution truncated to `[lo, hi]` — used to synthesise the
/// CrowdFlower case-study response times (fast head, hours-long tail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto with shape `alpha > 0` on `[lo, hi]`,
    /// `0 < lo < hi`.
    ///
    /// # Panics
    /// Panics on invalid static parameters.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "invalid shape {alpha}");
        assert!(0.0 < lo && lo < hi, "invalid bounds [{lo}, {hi}]");
        BoundedPareto { alpha, lo, hi }
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Inverse-transform sample from the truncated Pareto.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // Inverse CDF of the truncated Pareto.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }

    /// CDF of the bounded Pareto.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        (1.0 - la * x.powf(-self.alpha)) / (1.0 - la / ha)
    }
}

/// A homogeneous Poisson arrival process with a fixed rate, producing an
/// increasing stream of arrival timestamps.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    inter: Exponential,
    now: f64,
}

impl PoissonProcess {
    /// Creates a process with `rate` arrivals per second starting at t=0.
    pub fn new(rate: f64) -> Self {
        PoissonProcess {
            inter: Exponential::new(rate),
            now: 0.0,
        }
    }

    /// Arrival rate (events per second).
    pub fn rate(&self) -> f64 {
        self.inter.rate()
    }

    /// The timestamp of the most recent arrival (0 before any).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances to and returns the next arrival timestamp.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.now += self.inter.sample(rng);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(123)
    }

    #[test]
    fn uniform_range_basics() {
        let r = UniformRange::new(3.0, 7.0);
        assert_eq!(r.lo(), 3.0);
        assert_eq!(r.hi(), 7.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.mid(), 5.0);
        assert!(r.contains(3.0) && r.contains(7.0) && r.contains(5.0));
        assert!(!r.contains(2.999) && !r.contains(7.001));
    }

    #[test]
    fn uniform_range_swaps_reversed_bounds() {
        let r = UniformRange::new(9.0, 2.0);
        assert_eq!((r.lo(), r.hi()), (2.0, 9.0));
    }

    #[test]
    fn uniform_samples_stay_in_range_and_cover_it() {
        let r = UniformRange::new(1.0, 20.0);
        let mut g = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| r.sample(&mut g)).collect();
        assert!(samples.iter().all(|&s| r.contains(s)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.5).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn degenerate_uniform_range() {
        let r = UniformRange::new(4.0, 4.0);
        let mut g = rng();
        assert_eq!(r.sample(&mut g), 4.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let e = Exponential::with_mean(8.0);
        assert!((e.rate() - 0.125).abs() < 1e-12);
        let mut g = rng();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut g)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "exponential rate")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn exponential_cdf() {
        let e = Exponential::new(2.0);
        assert_eq!(e.cdf(-1.0), 0.0);
        assert_eq!(e.cdf(0.0), 0.0);
        assert!((e.cdf(1.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_frequency() {
        let b = Bernoulli::new(0.7);
        let mut g = rng();
        let hits = (0..20_000).filter(|_| b.sample(&mut g)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.7).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes_and_clamping() {
        let mut g = rng();
        assert!(Bernoulli::new(1.0).sample(&mut g));
        assert!(!Bernoulli::new(0.0).sample(&mut g));
        assert_eq!(Bernoulli::new(2.0).p(), 1.0);
        assert_eq!(Bernoulli::new(-1.0).p(), 0.0);
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let p = BoundedPareto::new(1.1, 2.0, 21_600.0);
        let mut g = rng();
        for _ in 0..10_000 {
            let s = p.sample(&mut g);
            assert!((2.0..=21_600.0).contains(&s));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_headed() {
        // Most mass near the lower bound: the case-study shape (half the
        // responses in seconds, the tail in hours).
        let p = BoundedPareto::new(1.0, 2.0, 21_600.0);
        let mut g = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| p.sample(&mut g)).collect();
        let below20 = samples.iter().filter(|&&s| s < 20.0).count() as f64 / 20_000.0;
        assert!(below20 > 0.2, "head fraction {below20}");
        let above_hour = samples.iter().filter(|&&s| s > 3_600.0).count();
        assert!(above_hour > 0, "tail must reach hours");
    }

    #[test]
    fn bounded_pareto_cdf_monotone() {
        let p = BoundedPareto::new(1.3, 1.0, 1_000.0);
        assert_eq!(p.cdf(0.5), 0.0);
        assert_eq!(p.cdf(2_000.0), 1.0);
        let mut last = 0.0;
        for x in [1.0, 2.0, 5.0, 50.0, 500.0, 999.0] {
            let c = p.cdf(x);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn bounded_pareto_rejects_bad_bounds() {
        let _ = BoundedPareto::new(1.0, 5.0, 5.0);
    }

    #[test]
    fn poisson_process_rate() {
        // 9.375 tasks/s is the paper's Fig. 5 arrival rate.
        let mut p = PoissonProcess::new(9.375);
        let mut g = rng();
        let mut last = 0.0;
        let n = 40_000;
        for _ in 0..n {
            let t = p.next_arrival(&mut g);
            assert!(t > last, "arrivals must strictly increase");
            last = t;
        }
        let measured_rate = n as f64 / last;
        assert!(
            (measured_rate - 9.375).abs() / 9.375 < 0.03,
            "rate {measured_rate}"
        );
    }
}
