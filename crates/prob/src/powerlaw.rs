//! Continuous power-law distribution with maximum-likelihood fitting.
//!
//! A quantity `k` follows a power law when it is drawn from
//! `p(k) ∝ k^{−α}` for `k ≥ k_min > 0`. The REACT paper uses the
//! complementary CDF
//!
//! ```text
//! P(k) = Pr(K ≥ k) = (k / k_min)^{−α + 1}
//! ```
//!
//! to estimate the probability that a worker's next execution time exceeds
//! a given bound, and estimates the exponent from observed execution times
//! `k_1 … k_n` as
//!
//! ```text
//! α = 1 + n · [ Σ_i ln( k_i / (k_min − ½) ) ]^{-1}          (paper / CSN discrete)
//! α = 1 + n · [ Σ_i ln( k_i / k_min ) ]^{-1}                (CSN continuous)
//! ```
//!
//! Both estimators are available via [`FitMethod`]; the discrete variant
//! falls back to the continuous one when `k_min ≤ ½` (where its offset
//! would make the logarithm undefined).

use rand::Rng;
use std::fmt;

/// Errors produced by power-law construction and fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerLawError {
    /// `alpha` must be strictly greater than 1 for the CCDF to decay.
    InvalidAlpha(f64),
    /// `k_min` must be strictly positive.
    InvalidKMin(f64),
    /// Fitting needs at least one sample (callers usually demand more).
    NotEnoughSamples {
        /// Samples provided.
        have: usize,
        /// Samples required.
        need: usize,
    },
    /// A sample was not positive or below `k_min` at fit time.
    InvalidSample(f64),
}

impl fmt::Display for PowerLawError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerLawError::InvalidAlpha(a) => {
                write!(f, "power-law exponent must be > 1, got {a}")
            }
            PowerLawError::InvalidKMin(k) => {
                write!(f, "power-law lower bound k_min must be > 0, got {k}")
            }
            PowerLawError::NotEnoughSamples { have, need } => {
                write!(
                    f,
                    "power-law fit needs at least {need} samples, have {have}"
                )
            }
            PowerLawError::InvalidSample(s) => {
                write!(f, "power-law sample must be positive and ≥ k_min, got {s}")
            }
        }
    }
}

impl std::error::Error for PowerLawError {}

/// Which maximum-likelihood estimator to use for the exponent `α`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitMethod {
    /// The estimator printed in the REACT paper (the Clauset–Shalizi–Newman
    /// discrete approximation): `α = 1 + n [Σ ln(k_i/(k_min − ½))]⁻¹`.
    ///
    /// Falls back to [`FitMethod::Continuous`] when `k_min ≤ ½`.
    #[default]
    Paper,
    /// The continuous CSN estimator: `α = 1 + n [Σ ln(k_i/k_min)]⁻¹`.
    Continuous,
}

/// A continuous power-law (Pareto type-I) distribution `p(k) ∝ k^{−α}`,
/// supported on `[k_min, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    alpha: f64,
    k_min: f64,
    /// Cached `−1/(α−1)`: the exponent shared by [`PowerLaw::quantile`]
    /// and inverse-transform sampling, computed once at construction.
    inv_exp: f64,
}

impl PowerLaw {
    /// Creates a power law with exponent `alpha > 1` and lower bound
    /// `k_min > 0`.
    pub fn new(alpha: f64, k_min: f64) -> Result<Self, PowerLawError> {
        if alpha <= 1.0 || !alpha.is_finite() {
            return Err(PowerLawError::InvalidAlpha(alpha));
        }
        if k_min <= 0.0 || !k_min.is_finite() {
            return Err(PowerLawError::InvalidKMin(k_min));
        }
        Ok(PowerLaw {
            alpha,
            k_min,
            inv_exp: -1.0 / (alpha - 1.0),
        })
    }

    /// The scaling exponent `α`.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The lower bound of power-law behaviour, `k_min`.
    #[inline]
    pub fn k_min(&self) -> f64 {
        self.k_min
    }

    /// Probability density `p(k) = (α−1)/k_min · (k/k_min)^{−α}` for
    /// `k ≥ k_min`, 0 otherwise.
    pub fn pdf(&self, k: f64) -> f64 {
        if k < self.k_min {
            return 0.0;
        }
        (self.alpha - 1.0) / self.k_min * (k / self.k_min).powf(-self.alpha)
    }

    /// Complementary CDF `P(k) = Pr(K ≥ k) = (k/k_min)^{−α+1}`.
    ///
    /// For `k < k_min` the CCDF is 1 (all mass lies above `k_min`).
    pub fn ccdf(&self, k: f64) -> f64 {
        if k <= self.k_min {
            return 1.0;
        }
        (k / self.k_min).powf(1.0 - self.alpha)
    }

    /// CDF `Pr(K < k) = 1 − P(k)`.
    pub fn cdf(&self, k: f64) -> f64 {
        1.0 - self.ccdf(k)
    }

    /// Mean of the distribution; `None` when `α ≤ 2` (infinite mean).
    pub fn mean(&self) -> Option<f64> {
        if self.alpha > 2.0 {
            Some((self.alpha - 1.0) / (self.alpha - 2.0) * self.k_min)
        } else {
            None
        }
    }

    /// The `q`-quantile (`0 ≤ q < 1`): the value `k` with `cdf(k) = q`.
    pub fn quantile(&self, q: f64) -> f64 {
        debug_assert!((0.0..1.0).contains(&q));
        self.k_min * (1.0 - q).powf(self.inv_exp)
    }

    /// Median of the distribution.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Draws one sample via inverse-transform sampling:
    /// `k = k_min · u^{−1/(α−1)}` with `u ~ U(0,1]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `gen::<f64>()` yields [0,1); flip to (0,1] so the power is finite.
        let u = 1.0 - rng.gen::<f64>();
        self.k_min * u.powf(self.inv_exp)
    }

    /// Draws `n` samples into a fresh vector.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fits a power law to `samples` with the given lower bound and
    /// estimator. All samples must be ≥ `k_min` and positive.
    ///
    /// Returns [`PowerLawError::NotEnoughSamples`] for an empty slice and
    /// [`PowerLawError::InvalidSample`] if any sample is invalid.
    pub fn fit(samples: &[f64], k_min: f64, method: FitMethod) -> Result<Self, PowerLawError> {
        if samples.is_empty() {
            return Err(PowerLawError::NotEnoughSamples { have: 0, need: 1 });
        }
        if k_min <= 0.0 || !k_min.is_finite() {
            return Err(PowerLawError::InvalidKMin(k_min));
        }
        // The paper's discrete approximation offsets the denominator by ½;
        // that is only meaningful when k_min > ½.
        let denom_base = match method {
            FitMethod::Paper if k_min > 0.5 => k_min - 0.5,
            _ => k_min,
        };
        let mut log_sum = 0.0;
        for &s in samples {
            if s <= 0.0 || !s.is_finite() || s < k_min {
                return Err(PowerLawError::InvalidSample(s));
            }
            log_sum += (s / denom_base).ln();
        }
        let n = samples.len() as f64;
        // All samples equal to k_min (continuous method) gives log_sum = 0
        // → α = ∞. Clamp to a large-but-finite exponent: the distribution
        // is then a near-point-mass at k_min, which is the right limit.
        let alpha = if log_sum <= f64::EPSILON {
            MAX_FITTED_ALPHA
        } else {
            (1.0 + n / log_sum).min(MAX_FITTED_ALPHA)
        };
        PowerLaw::new(alpha, k_min)
    }

    /// Fits using the smallest sample as `k_min` (the paper sets `k_min`
    /// to the worker's lowest measured execution time).
    pub fn fit_auto_kmin(samples: &[f64], method: FitMethod) -> Result<Self, PowerLawError> {
        let k_min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        if !k_min.is_finite() {
            return Err(PowerLawError::NotEnoughSamples { have: 0, need: 1 });
        }
        Self::fit(samples, k_min, method)
    }

    /// Kolmogorov–Smirnov statistic between this distribution and the
    /// empirical CDF of `samples` (only samples ≥ `k_min` are compared).
    /// Smaller is a better fit.
    pub fn ks_statistic(&self, samples: &[f64]) -> f64 {
        self.ks_statistic_with(samples, &mut Vec::new())
    }

    /// [`PowerLaw::ks_statistic`] with a caller-owned scratch buffer, so
    /// repeated goodness-of-fit checks (the auto-`k_min` refit loop runs
    /// one per refit) reuse a single allocation instead of building a
    /// fresh filtered copy of the sample set every call.
    pub fn ks_statistic_with(&self, samples: &[f64], scratch: &mut Vec<f64>) -> f64 {
        scratch.clear();
        scratch.extend(samples.iter().copied().filter(|&s| s >= self.k_min));
        if scratch.is_empty() {
            return 1.0;
        }
        scratch.sort_by(f64::total_cmp);
        let n = scratch.len() as f64;
        let mut d = 0.0f64;
        for (i, &x) in scratch.iter().enumerate() {
            let model = self.cdf(x);
            let emp_lo = i as f64 / n;
            let emp_hi = (i + 1) as f64 / n;
            d = d.max((model - emp_lo).abs()).max((model - emp_hi).abs());
        }
        d
    }

    /// Log-likelihood of `samples` under this distribution. Samples below
    /// `k_min` contribute `-inf` (density zero).
    pub fn log_likelihood(&self, samples: &[f64]) -> f64 {
        samples.iter().map(|&s| self.pdf(s).ln()).sum()
    }
}

/// Cap applied to fitted exponents so that degenerate sample sets (all
/// samples equal) produce a usable near-point-mass distribution instead of
/// an error.
pub const MAX_FITTED_ALPHA: f64 = 64.0;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(matches!(
            PowerLaw::new(1.0, 1.0),
            Err(PowerLawError::InvalidAlpha(_))
        ));
        assert!(matches!(
            PowerLaw::new(0.5, 1.0),
            Err(PowerLawError::InvalidAlpha(_))
        ));
        assert!(matches!(
            PowerLaw::new(f64::NAN, 1.0),
            Err(PowerLawError::InvalidAlpha(_))
        ));
        assert!(matches!(
            PowerLaw::new(2.0, 0.0),
            Err(PowerLawError::InvalidKMin(_))
        ));
        assert!(matches!(
            PowerLaw::new(2.0, -3.0),
            Err(PowerLawError::InvalidKMin(_))
        ));
    }

    #[test]
    fn ccdf_boundary_values() {
        let pl = PowerLaw::new(2.5, 2.0).unwrap();
        assert_eq!(pl.ccdf(0.5), 1.0, "below k_min everything survives");
        assert_eq!(pl.ccdf(2.0), 1.0, "at k_min the CCDF is exactly 1");
        assert!((pl.ccdf(4.0) - 2.0f64.powf(-1.5)).abs() < 1e-12);
        assert!(pl.ccdf(1e9) < 1e-10);
    }

    #[test]
    fn cdf_complements_ccdf() {
        let pl = PowerLaw::new(3.0, 1.5).unwrap();
        for k in [1.5, 2.0, 5.0, 100.0] {
            assert!((pl.cdf(k) + pl.ccdf(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let pl = PowerLaw::new(2.5, 1.0).unwrap();
        // Trapezoid rule on log-spaced grid up to a large bound.
        let mut total = 0.0;
        let steps = 200_000;
        let hi: f64 = 1e6;
        let ratio = (hi / 1.0f64).powf(1.0 / steps as f64);
        let mut x = 1.0f64;
        for _ in 0..steps {
            let x2 = x * ratio;
            total += 0.5 * (pl.pdf(x) + pl.pdf(x2)) * (x2 - x);
            x = x2;
        }
        assert!((total - 1.0).abs() < 1e-3, "integral was {total}");
    }

    #[test]
    fn mean_exists_only_above_two() {
        assert!(PowerLaw::new(1.8, 1.0).unwrap().mean().is_none());
        let pl = PowerLaw::new(3.0, 2.0).unwrap();
        // mean = (α−1)/(α−2) · k_min = 2/1 · 2 = 4
        assert!((pl.mean().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let pl = PowerLaw::new(2.2, 3.0).unwrap();
        for q in [0.0, 0.1, 0.5, 0.9, 0.999] {
            let k = pl.quantile(q);
            assert!((pl.cdf(k) - q).abs() < 1e-9, "q={q}");
        }
        assert!((pl.median() - pl.quantile(0.5)).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_theoretical_median() {
        let pl = PowerLaw::new(2.5, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let samples = pl.sample_n(&mut rng, 50_000);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let emp_median = sorted[sorted.len() / 2];
        let theo = pl.median();
        assert!(
            (emp_median - theo).abs() / theo < 0.05,
            "empirical {emp_median} vs theoretical {theo}"
        );
        assert!(samples.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn fit_recovers_exponent_continuous() {
        let truth = PowerLaw::new(2.5, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let samples = truth.sample_n(&mut rng, 20_000);
        let fitted = PowerLaw::fit(&samples, 1.0, FitMethod::Continuous).unwrap();
        assert!(
            (fitted.alpha() - 2.5).abs() < 0.08,
            "fitted α = {}",
            fitted.alpha()
        );
    }

    #[test]
    fn fit_paper_matches_formula() {
        // Hand-computed: samples {2,4,8}, k_min = 2 → denom base 1.5.
        let samples = [2.0, 4.0, 8.0];
        let fitted = PowerLaw::fit(&samples, 2.0, FitMethod::Paper).unwrap();
        let log_sum: f64 = samples.iter().map(|s| (s / 1.5f64).ln()).sum();
        let expected = 1.0 + 3.0 / log_sum;
        assert!((fitted.alpha() - expected).abs() < 1e-12);
    }

    #[test]
    fn fit_paper_falls_back_for_small_kmin() {
        let samples = [0.4, 0.5, 0.9];
        let fitted = PowerLaw::fit(&samples, 0.4, FitMethod::Paper).unwrap();
        let cont = PowerLaw::fit(&samples, 0.4, FitMethod::Continuous).unwrap();
        assert_eq!(fitted, cont);
    }

    #[test]
    fn fit_identical_samples_clamps_alpha() {
        let fitted = PowerLaw::fit(&[3.0, 3.0, 3.0], 3.0, FitMethod::Continuous).unwrap();
        assert_eq!(fitted.alpha(), MAX_FITTED_ALPHA);
        // Near-point-mass: CCDF collapses just above k_min.
        assert!(fitted.ccdf(3.2) < 0.02);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(matches!(
            PowerLaw::fit(&[], 1.0, FitMethod::Continuous),
            Err(PowerLawError::NotEnoughSamples { .. })
        ));
        assert!(matches!(
            PowerLaw::fit(&[0.5], 1.0, FitMethod::Continuous),
            Err(PowerLawError::InvalidSample(_))
        ));
        assert!(matches!(
            PowerLaw::fit(&[-1.0], 1.0, FitMethod::Continuous),
            Err(PowerLawError::InvalidSample(_))
        ));
        assert!(matches!(
            PowerLaw::fit(&[1.0], f64::NAN, FitMethod::Continuous),
            Err(PowerLawError::InvalidKMin(_))
        ));
    }

    #[test]
    fn fit_auto_kmin_uses_smallest_sample() {
        let samples = [5.0, 2.0, 9.0];
        let fitted = PowerLaw::fit_auto_kmin(&samples, FitMethod::Continuous).unwrap();
        assert_eq!(fitted.k_min(), 2.0);
    }

    #[test]
    fn ks_statistic_small_for_own_samples() {
        let truth = PowerLaw::new(2.3, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let samples = truth.sample_n(&mut rng, 10_000);
        let d = truth.ks_statistic(&samples);
        assert!(d < 0.02, "KS statistic {d} too large for own samples");
        // A very different distribution should fit much worse.
        let wrong = PowerLaw::new(5.0, 1.0).unwrap();
        assert!(wrong.ks_statistic(&samples) > 5.0 * d);
    }

    #[test]
    fn ks_statistic_with_scratch_matches_allocating_variant() {
        let truth = PowerLaw::new(2.3, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = truth.sample_n(&mut rng, 2_000);
        let mut scratch = Vec::new();
        for alpha in [1.5, 2.3, 4.0] {
            let pl = PowerLaw::new(alpha, 1.0).unwrap();
            let direct = pl.ks_statistic(&samples);
            let via_scratch = pl.ks_statistic_with(&samples, &mut scratch);
            assert_eq!(direct.to_bits(), via_scratch.to_bits(), "α={alpha}");
        }
        // Below-k_min-only input still reports the worst statistic.
        let pl = PowerLaw::new(2.0, 10.0).unwrap();
        assert_eq!(pl.ks_statistic_with(&[1.0, 2.0], &mut scratch), 1.0);
    }

    #[test]
    fn cached_exponent_matches_direct_computation() {
        let pl = PowerLaw::new(2.7, 1.3).unwrap();
        for q in [0.0f64, 0.1, 0.5, 0.99] {
            let direct = 1.3 * (1.0 - q).powf(-1.0 / (2.7f64 - 1.0));
            assert_eq!(pl.quantile(q).to_bits(), direct.to_bits(), "q={q}");
        }
    }

    #[test]
    fn log_likelihood_prefers_true_model() {
        let truth = PowerLaw::new(2.5, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let samples = truth.sample_n(&mut rng, 5_000);
        let other = PowerLaw::new(4.0, 1.0).unwrap();
        assert!(truth.log_likelihood(&samples) > other.log_likelihood(&samples));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PowerLaw::new(0.0, 1.0).unwrap_err();
        assert!(e.to_string().contains("exponent"));
        let e = PowerLaw::new(2.0, 0.0).unwrap_err();
        assert!(e.to_string().contains("k_min"));
    }
}
