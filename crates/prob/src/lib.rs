//! Probability substrate for the REACT middleware.
//!
//! The REACT paper (Boutsis & Kalogeraki, IPDPS 2013) estimates whether a
//! crowd worker will finish a task before its deadline by fitting a
//! **power-law distribution** to the worker's historical execution times
//! (following the observation of Ipeirotis that AMT task latencies are
//! power-law distributed) and evaluating its complementary CDF.
//!
//! This crate provides:
//!
//! * [`PowerLaw`] — the distribution itself: density, CDF/CCDF, sampling,
//!   and maximum-likelihood fitting (both the continuous
//!   Clauset–Shalizi–Newman estimator and the discrete variant with the
//!   `−½` offset that the paper prints).
//! * [`ExecTimeEstimator`] — an online, per-worker sample store that
//!   lazily refits the distribution as new completion times arrive.
//! * [`DeadlineModel`] — the paper's Eq. (2)/(3): the probability that a
//!   task completes inside `(t, TimeToDeadline)`, used for edge
//!   instantiation and for mid-flight reassignment decisions.
//! * [`distributions`] — the small set of auxiliary distributions needed
//!   by the workload generators (uniform, exponential, Bernoulli,
//!   bounded Pareto) implemented directly on top of `rand`.
//! * [`stats`] — summary statistics, histograms and an empirical CDF used
//!   by the experiment harness.

#![warn(missing_docs)]

pub mod deadline;
pub mod distributions;
pub mod empirical;
pub mod estimator;
pub mod powerlaw;
pub mod stats;

pub use deadline::{DeadlineDecision, DeadlineModel, DeadlineModelConfig, EdgeGate};
pub use empirical::{EmpiricalDist, FittedModel, LatencyCcdf};
pub use estimator::{EstimatorConfig, ExecTimeEstimator};
pub use powerlaw::{FitMethod, PowerLaw, PowerLawError};

/// Result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, PowerLawError>;
