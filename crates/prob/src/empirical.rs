//! Empirical latency distribution — the model-free alternative to the
//! paper's power-law fit.
//!
//! The paper justifies the power law by citing Ipeirotis's AMT analysis,
//! but nothing guarantees an individual worker's latencies follow it.
//! [`EmpiricalDist`] is the distribution-free fallback: the exact step
//! CCDF of the observed samples. [`LatencyCcdf`] abstracts over both so
//! the Eq. (2)/(3) deadline model works with either, and
//! [`FittedModel`] is the tagged union the profiler hands out (including
//! an *auto* mode that keeps the power law only when its KS statistic
//! says the fit is good).

use crate::powerlaw::PowerLaw;

/// Anything that can answer `Pr(K ≥ k)` for a latency variable.
pub trait LatencyCcdf {
    /// The complementary CDF at `k`.
    fn ccdf(&self, k: f64) -> f64;
}

impl LatencyCcdf for PowerLaw {
    fn ccdf(&self, k: f64) -> f64 {
        PowerLaw::ccdf(self, k)
    }
}

/// The empirical (step) distribution of observed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
}

impl EmpiricalDist {
    /// Builds the distribution from samples (non-finite ones are
    /// dropped). Returns `None` when no valid sample remains.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|s| s.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(f64::total_cmp);
        Some(EmpiricalDist { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false — construction requires ≥ 1 sample.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// CDF `Pr(K < k)`: fraction of samples strictly below `k`.
    pub fn cdf(&self, k: f64) -> f64 {
        let below = self.sorted.partition_point(|&s| s < k);
        below as f64 / self.sorted.len() as f64
    }

    /// The samples in ascending order (the step positions of the CCDF).
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

impl LatencyCcdf for EmpiricalDist {
    /// CCDF `Pr(K ≥ k)`: fraction of samples at or above `k`.
    fn ccdf(&self, k: f64) -> f64 {
        1.0 - self.cdf(k)
    }
}

/// A fitted latency model: the paper's power law or the empirical
/// fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum FittedModel {
    /// Parametric power-law fit (the paper's choice).
    PowerLaw(PowerLaw),
    /// Distribution-free empirical CCDF.
    Empirical(EmpiricalDist),
}

impl FittedModel {
    /// True for the power-law variant.
    pub fn is_power_law(&self) -> bool {
        matches!(self, FittedModel::PowerLaw(_))
    }
}

impl LatencyCcdf for FittedModel {
    fn ccdf(&self, k: f64) -> f64 {
        match self {
            FittedModel::PowerLaw(m) => m.ccdf(k),
            FittedModel::Empirical(m) => m.ccdf(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> EmpiricalDist {
        EmpiricalDist::from_samples(&[5.0, 1.0, 3.0, 3.0]).unwrap()
    }

    #[test]
    fn construction_filters_and_sorts() {
        let d = EmpiricalDist::from_samples(&[2.0, f64::NAN, 1.0, f64::INFINITY]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 2.0);
        assert!(EmpiricalDist::from_samples(&[]).is_none());
        assert!(EmpiricalDist::from_samples(&[f64::NAN]).is_none());
        assert!(!dist().is_empty());
    }

    #[test]
    fn step_ccdf_values() {
        let d = dist(); // sorted: 1, 3, 3, 5
        assert_eq!(d.ccdf(0.5), 1.0);
        assert_eq!(d.ccdf(1.0), 1.0, "Pr(K ≥ min) = 1");
        assert_eq!(d.ccdf(2.0), 0.75);
        assert_eq!(d.ccdf(3.0), 0.75, "ties count as ≥");
        assert_eq!(d.ccdf(4.0), 0.25);
        assert_eq!(d.ccdf(5.0), 0.25);
        assert_eq!(d.ccdf(5.1), 0.0);
    }

    #[test]
    fn cdf_complements_ccdf() {
        let d = dist();
        for k in [0.0, 1.0, 2.5, 3.0, 5.0, 9.0] {
            assert!((d.cdf(k) + d.ccdf(k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trait_dispatch_matches_inherent() {
        let pl = PowerLaw::new(2.0, 1.0).unwrap();
        let as_trait: &dyn LatencyCcdf = &pl;
        assert_eq!(as_trait.ccdf(4.0), pl.ccdf(4.0));
        let d = dist();
        let fitted_pl = FittedModel::PowerLaw(pl);
        let fitted_emp = FittedModel::Empirical(d.clone());
        assert!(fitted_pl.is_power_law());
        assert!(!fitted_emp.is_power_law());
        assert_eq!(fitted_emp.ccdf(2.0), d.ccdf(2.0));
        assert_eq!(fitted_pl.ccdf(4.0), pl.ccdf(4.0));
    }

    #[test]
    fn empirical_converges_to_generating_law() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let truth = PowerLaw::new(2.5, 2.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(8);
        let samples = truth.sample_n(&mut rng, 20_000);
        let emp = EmpiricalDist::from_samples(&samples).unwrap();
        for k in [2.5, 4.0, 8.0, 20.0] {
            assert!(
                (emp.ccdf(k) - truth.ccdf(k)).abs() < 0.02,
                "at {k}: empirical {} vs true {}",
                emp.ccdf(k),
                truth.ccdf(k)
            );
        }
    }
}
