//! The paper's probabilistic deadline model (Sec. IV-B, Eqs. 2–3).
//!
//! For a task `j` assigned to worker `i` at time `a`:
//!
//! * `TimeToDeadline_ij` — the interval from assignment until the task's
//!   deadline expires,
//! * `t_ij` — the time elapsed since assignment,
//! * `ExecTime_ij` — the (unknown) total execution time on this worker.
//!
//! Using the worker's fitted power-law CCDF `P(k) = Pr(K ≥ k)`:
//!
//! * **Eq. (3)** — edge instantiation: `Pr(ExecTime < TTD) = 1 − P(TTD)`.
//!   An edge `(worker, task)` only enters the bipartite graph when this
//!   probability exceeds an application-defined lower bound.
//! * **Eq. (2)** — in-flight check:
//!   `Pr(t < ExecTime < TTD) = 1 − (P(TTD) + (1 − P(t))) = P(t) − P(TTD)`.
//!   When this drops below a threshold (10 % in the paper's evaluation)
//!   the task is pulled back from the worker and reassigned.

use crate::empirical::{FittedModel, LatencyCcdf};

/// Thresholds driving the two deadline decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineModelConfig {
    /// Minimum `Pr(ExecTime < TTD)` for a worker↔task edge to be
    /// instantiated at all (graph-construction pruning).
    pub edge_probability_threshold: f64,
    /// Minimum in-flight probability `Pr(t < ExecTime < TTD)` before the
    /// assignment is abandoned and the task reassigned. The paper uses 0.1.
    pub reassign_threshold: f64,
}

impl Default for DeadlineModelConfig {
    fn default() -> Self {
        DeadlineModelConfig {
            edge_probability_threshold: 0.1,
            reassign_threshold: 0.1,
        }
    }
}

/// Outcome of an in-flight deadline check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineDecision {
    /// The assignment still has an acceptable chance of meeting the
    /// deadline; leave it with the current worker.
    Keep {
        /// The evaluated `Pr(t < ExecTime < TTD)`.
        probability: f64,
    },
    /// The probability fell below the threshold: pull the task back and
    /// let the Scheduling Component find a better worker.
    Reassign {
        /// The evaluated `Pr(t < ExecTime < TTD)`.
        probability: f64,
    },
}

impl DeadlineDecision {
    /// True for the [`DeadlineDecision::Reassign`] variant.
    pub fn is_reassign(&self) -> bool {
        matches!(self, DeadlineDecision::Reassign { .. })
    }

    /// The probability the decision was based on.
    pub fn probability(&self) -> f64 {
        match *self {
            DeadlineDecision::Keep { probability } | DeadlineDecision::Reassign { probability } => {
                probability
            }
        }
    }
}

/// Stateless evaluator of the paper's Eq. (2)/(3) over a fitted worker
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeadlineModel {
    config: DeadlineModelConfig,
}

impl DeadlineModel {
    /// Creates a model with the given thresholds.
    pub fn new(config: DeadlineModelConfig) -> Self {
        DeadlineModel { config }
    }

    /// The thresholds in use.
    pub fn config(&self) -> &DeadlineModelConfig {
        &self.config
    }

    /// **Eq. (3)**: probability that this worker completes a fresh task
    /// within `time_to_deadline` seconds, i.e. `1 − P(TTD)`.
    ///
    /// Works with any latency model (the paper's power law or the
    /// empirical fallback). Degenerate horizons (`TTD ≤ 0`) give
    /// probability 0.
    pub fn pr_complete_before<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        time_to_deadline: f64,
    ) -> f64 {
        if time_to_deadline <= 0.0 {
            return 0.0;
        }
        (1.0 - model.ccdf(time_to_deadline)).clamp(0.0, 1.0)
    }

    /// **Eq. (2)**: probability that the execution time lands inside
    /// `(elapsed, time_to_deadline)`:
    /// `P(elapsed) − P(TTD)` (the paper writes the equivalent
    /// `1 − (P(TTD) + (1 − P(elapsed)))`).
    ///
    /// Returns 0 when the window is empty (`elapsed ≥ TTD`).
    pub fn pr_complete_in_window<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        elapsed: f64,
        time_to_deadline: f64,
    ) -> f64 {
        if elapsed >= time_to_deadline || time_to_deadline <= 0.0 {
            return 0.0;
        }
        let elapsed = elapsed.max(0.0);
        (model.ccdf(elapsed) - model.ccdf(time_to_deadline)).clamp(0.0, 1.0)
    }

    /// Graph-construction rule: should the `(worker, task)` edge be
    /// instantiated, given the worker's fitted model and the task's
    /// time-to-deadline? `None` worker model (cold profile) is handled by
    /// the caller — the paper instantiates all edges for a worker's first
    /// `z` assignments.
    pub fn should_instantiate_edge<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        time_to_deadline: f64,
    ) -> bool {
        self.pr_complete_before(model, time_to_deadline) > self.config.edge_probability_threshold
    }

    /// Inverts Eq. (3) into a memoized per-model [`EdgeGate`], so the
    /// per-edge [`DeadlineModel::should_instantiate_edge`] `powf` becomes
    /// a float compare on the graph-build hot path.
    ///
    /// The CCDF is monotone non-increasing in TTD, so the edge predicate
    /// `1 − P(TTD) > θ` flips exactly once, at the critical threshold
    /// `ttd* = quantile(θ) = k_min · (1 − θ)^{−1/(α−1)}` for the power
    /// law. To keep the fast path *bit-identical* to the exact `powf`
    /// evaluation, the power-law gate is a conservative bracket around
    /// `ttd*`: decisions outside the bracket are provably on the same
    /// side as the exact predicate (the bracket's relative margin dwarfs
    /// `powf`'s few-ULP error), and the rare TTD inside it falls back to
    /// the exact evaluation. Step CCDFs invert exactly, with no bracket.
    pub fn edge_gate(&self, model: &FittedModel) -> EdgeGate {
        let theta = self.config.edge_probability_threshold;
        // Pr is clamped to [0, 1]: a threshold ≥ 1 can never be exceeded,
        // and anything non-finite or negative is left to the exact path.
        if !(0.0..1.0).contains(&theta) {
            return if theta >= 1.0 {
                EdgeGate::Never
            } else {
                EdgeGate::Exact
            };
        }
        match model {
            FittedModel::PowerLaw(pl) => {
                let ttd_star = pl.quantile(theta);
                // Relative half-width of the exact-fallback band: wide
                // enough that a fast-path decision differs from the true
                // predicate value by ≥ (α−1)·rel relative in CCDF space,
                // orders of magnitude beyond powf's rounding error.
                let rel = (1e-10 / (pl.alpha() - 1.0)).max(1e-6);
                if !ttd_star.is_finite() || rel >= 1.0 {
                    return EdgeGate::Exact;
                }
                EdgeGate::Bracket {
                    lo: ttd_star * (1.0 - rel),
                    hi: ttd_star * (1.0 + rel),
                }
            }
            FittedModel::Empirical(emp) => {
                // Pr(TTD) steps only at sample values: find the minimal
                // count `c` of samples strictly below TTD whose
                // probability — computed through the exact float chain the
                // slow path uses — clears the threshold. The edge then
                // instantiates iff TTD exceeds the c-th smallest sample.
                let sorted = emp.sorted_samples();
                let n = sorted.len() as f64;
                for (c, &cut) in sorted.iter().enumerate() {
                    let pr = (1.0 - (1.0 - (c + 1) as f64 / n)).clamp(0.0, 1.0);
                    if pr > theta {
                        return EdgeGate::Above { cut };
                    }
                }
                EdgeGate::Never
            }
        }
    }

    /// In-flight rule: given the elapsed time on the current worker,
    /// decide whether to keep or reassign the task.
    pub fn check_in_flight<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        elapsed: f64,
        time_to_deadline: f64,
    ) -> DeadlineDecision {
        let probability = self.pr_complete_in_window(model, elapsed, time_to_deadline);
        if probability < self.config.reassign_threshold {
            DeadlineDecision::Reassign { probability }
        } else {
            DeadlineDecision::Keep { probability }
        }
    }
}

/// Memoized inversion of the Eq. (3) edge predicate for one fitted model
/// at one threshold (see [`DeadlineModel::edge_gate`]).
///
/// [`EdgeGate::classify`] answers most TTDs with a compare; `None` means
/// the caller must evaluate [`DeadlineModel::should_instantiate_edge`]
/// exactly. Every `Some` answer is guaranteed to equal what the exact
/// evaluation would have returned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeGate {
    /// No fast path: evaluate Eq. (3) exactly for every TTD.
    Exact,
    /// No finite TTD clears the threshold.
    Never,
    /// Instantiate iff `ttd > cut` (and `ttd > 0`): the exact inversion
    /// of a step CCDF.
    Above {
        /// The critical sample value the TTD must exceed.
        cut: f64,
    },
    /// Fast decision outside `[lo, hi]`; inside the band, Eq. (3)
    /// decides (the band brackets the analytic critical point `ttd*`).
    Bracket {
        /// Below this the edge is certainly pruned.
        lo: f64,
        /// Above this the edge is certainly instantiated.
        hi: f64,
    },
}

impl EdgeGate {
    /// Fast-path decision for a time-to-deadline; `None` requests the
    /// exact Eq. (3) evaluation (NaN TTDs also land here and resolve to
    /// "prune" through the exact path).
    #[inline]
    pub fn classify(&self, ttd: f64) -> Option<bool> {
        match *self {
            EdgeGate::Exact => None,
            EdgeGate::Never => Some(false),
            EdgeGate::Above { cut } => {
                if ttd.is_nan() {
                    None
                } else {
                    Some(ttd > 0.0 && ttd > cut)
                }
            }
            EdgeGate::Bracket { lo, hi } => {
                if ttd > hi {
                    Some(true)
                } else if ttd < lo {
                    Some(false)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::empirical::EmpiricalDist;
    use crate::powerlaw::PowerLaw;

    fn model() -> PowerLaw {
        // α = 2, k_min = 5 → P(k) = 5/k for k ≥ 5.
        PowerLaw::new(2.0, 5.0).unwrap()
    }

    #[test]
    fn eq3_matches_closed_form() {
        let dm = DeadlineModel::default();
        let m = model();
        // P(20) = 5/20 = 0.25 → Pr(complete before 20) = 0.75.
        assert!((dm.pr_complete_before(&m, 20.0) - 0.75).abs() < 1e-12);
        // TTD at/below k_min → CCDF 1 → probability 0.
        assert_eq!(dm.pr_complete_before(&m, 5.0), 0.0);
        assert_eq!(dm.pr_complete_before(&m, 0.0), 0.0);
        assert_eq!(dm.pr_complete_before(&m, -3.0), 0.0);
    }

    #[test]
    fn eq2_matches_closed_form() {
        let dm = DeadlineModel::default();
        let m = model();
        // P(10) − P(40) = 0.5 − 0.125 = 0.375.
        assert!((dm.pr_complete_in_window(&m, 10.0, 40.0) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn eq2_empty_window_is_zero() {
        let dm = DeadlineModel::default();
        let m = model();
        assert_eq!(dm.pr_complete_in_window(&m, 40.0, 40.0), 0.0);
        assert_eq!(dm.pr_complete_in_window(&m, 50.0, 40.0), 0.0);
        assert_eq!(dm.pr_complete_in_window(&m, 0.0, 0.0), 0.0);
    }

    #[test]
    fn eq2_shrinks_as_time_elapses() {
        // As the worker keeps not finishing, the remaining window's
        // probability must be non-increasing; this is the signal the paper
        // exploits to detect abandoned/delayed tasks.
        let dm = DeadlineModel::default();
        let m = model();
        let ttd = 60.0;
        let mut last = f64::INFINITY;
        for elapsed in [0.0, 5.0, 10.0, 20.0, 40.0, 55.0, 59.0] {
            let p = dm.pr_complete_in_window(&m, elapsed, ttd);
            assert!(p <= last + 1e-12, "probability rose at elapsed={elapsed}");
            last = p;
        }
        // Just before the deadline there is almost no chance left.
        assert!(dm.pr_complete_in_window(&m, 59.0, 60.0) < 0.02);
    }

    #[test]
    fn eq2_before_kmin_elapsed_equals_eq3ish() {
        // While elapsed < k_min, P(elapsed) = 1 so Eq. 2 reduces to Eq. 3.
        let dm = DeadlineModel::default();
        let m = model();
        let a = dm.pr_complete_in_window(&m, 2.0, 30.0);
        let b = dm.pr_complete_before(&m, 30.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn edge_instantiation_threshold() {
        let dm = DeadlineModel::new(DeadlineModelConfig {
            edge_probability_threshold: 0.5,
            reassign_threshold: 0.1,
        });
        let m = model();
        // Pr(complete before 9) = 1 − 5/9 ≈ 0.444 < 0.5 → prune.
        assert!(!dm.should_instantiate_edge(&m, 9.0));
        // Pr(complete before 20) = 0.75 > 0.5 → instantiate.
        assert!(dm.should_instantiate_edge(&m, 20.0));
    }

    #[test]
    fn in_flight_keep_then_reassign() {
        let dm = DeadlineModel::default(); // reassign at < 0.1
        let m = model();
        let ttd = 50.0; // P(50) = 0.1
                        // Early on: P(ε) − P(50) = 1 − 0.1 = 0.9 → keep.
        let d = dm.check_in_flight(&m, 0.0, ttd);
        assert!(!d.is_reassign());
        assert!((d.probability() - 0.9).abs() < 1e-12);
        // Late: P(45) − P(50) = 5/45 − 0.1 ≈ 0.011 → reassign.
        let d = dm.check_in_flight(&m, 45.0, ttd);
        assert!(d.is_reassign());
        assert!(d.probability() < 0.1);
    }

    #[test]
    fn decision_accessors() {
        let keep = DeadlineDecision::Keep { probability: 0.4 };
        let re = DeadlineDecision::Reassign { probability: 0.01 };
        assert!(!keep.is_reassign());
        assert!(re.is_reassign());
        assert_eq!(keep.probability(), 0.4);
        assert_eq!(re.probability(), 0.01);
    }

    #[test]
    fn default_thresholds_match_paper() {
        let cfg = DeadlineModelConfig::default();
        assert_eq!(cfg.reassign_threshold, 0.1);
        assert_eq!(cfg.edge_probability_threshold, 0.1);
    }

    /// Every `Some` answer from the gate must equal the exact Eq. (3)
    /// evaluation — the bit-identity contract the incremental scheduler
    /// relies on.
    fn assert_gate_agrees(dm: &DeadlineModel, model: &FittedModel, ttds: &[f64]) {
        let gate = dm.edge_gate(model);
        for &ttd in ttds {
            let exact = dm.should_instantiate_edge(model, ttd);
            if let Some(fast) = gate.classify(ttd) {
                assert_eq!(fast, exact, "gate {gate:?} disagrees at ttd={ttd}");
            }
        }
    }

    #[test]
    fn edge_gate_matches_exact_powerlaw() {
        for theta in [0.0, 0.1, 0.5, 0.9, 0.999] {
            let dm = DeadlineModel::new(DeadlineModelConfig {
                edge_probability_threshold: theta,
                reassign_threshold: 0.1,
            });
            for (alpha, k_min) in [(2.0, 5.0), (1.01, 1.0), (64.0, 0.3)] {
                let pl = PowerLaw::new(alpha, k_min).unwrap();
                let ttd_star = pl.quantile(theta.min(0.999_999));
                let m = FittedModel::PowerLaw(pl);
                // Dense grid including the critical point's neighbourhood.
                let mut ttds = vec![-1.0, 0.0, k_min * 0.5, k_min, f64::NAN];
                for i in 0..200 {
                    ttds.push(ttd_star * (0.9 + 0.001 * i as f64));
                    ttds.push(k_min * (0.1 + 0.05 * i as f64));
                }
                assert_gate_agrees(&dm, &m, &ttds);
            }
        }
    }

    #[test]
    fn edge_gate_matches_exact_empirical() {
        let samples = [3.0, 3.0, 7.0, 12.0, 20.0];
        let emp = EmpiricalDist::from_samples(&samples).unwrap();
        let m = FittedModel::Empirical(emp);
        for theta in [0.0, 0.1, 0.19, 0.2, 0.5, 0.79, 0.8, 0.99] {
            let dm = DeadlineModel::new(DeadlineModelConfig {
                edge_probability_threshold: theta,
                reassign_threshold: 0.1,
            });
            let mut ttds = vec![-1.0, 0.0, f64::NAN];
            for i in 0..500 {
                ttds.push(i as f64 * 0.05);
            }
            // The steps themselves, and values straddling each step.
            for &s in &samples {
                ttds.extend([s, s - 1e-9, s + 1e-9]);
            }
            let gate = dm.edge_gate(&m);
            // Step CCDFs invert exactly: no TTD may fall back.
            for &ttd in &ttds {
                if !ttd.is_nan() {
                    assert!(gate.classify(ttd).is_some(), "fallback at ttd={ttd}");
                }
            }
            assert_gate_agrees(&dm, &m, &ttds);
        }
    }

    #[test]
    fn edge_gate_threshold_one_never_fires() {
        let dm = DeadlineModel::new(DeadlineModelConfig {
            edge_probability_threshold: 1.0,
            reassign_threshold: 0.1,
        });
        let m = FittedModel::PowerLaw(model());
        assert_eq!(dm.edge_gate(&m), EdgeGate::Never);
        assert_eq!(dm.edge_gate(&m).classify(1e12), Some(false));
        assert!(!dm.should_instantiate_edge(&m, 1e12));
    }
}
