//! The paper's probabilistic deadline model (Sec. IV-B, Eqs. 2–3).
//!
//! For a task `j` assigned to worker `i` at time `a`:
//!
//! * `TimeToDeadline_ij` — the interval from assignment until the task's
//!   deadline expires,
//! * `t_ij` — the time elapsed since assignment,
//! * `ExecTime_ij` — the (unknown) total execution time on this worker.
//!
//! Using the worker's fitted power-law CCDF `P(k) = Pr(K ≥ k)`:
//!
//! * **Eq. (3)** — edge instantiation: `Pr(ExecTime < TTD) = 1 − P(TTD)`.
//!   An edge `(worker, task)` only enters the bipartite graph when this
//!   probability exceeds an application-defined lower bound.
//! * **Eq. (2)** — in-flight check:
//!   `Pr(t < ExecTime < TTD) = 1 − (P(TTD) + (1 − P(t))) = P(t) − P(TTD)`.
//!   When this drops below a threshold (10 % in the paper's evaluation)
//!   the task is pulled back from the worker and reassigned.

use crate::empirical::LatencyCcdf;

/// Thresholds driving the two deadline decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineModelConfig {
    /// Minimum `Pr(ExecTime < TTD)` for a worker↔task edge to be
    /// instantiated at all (graph-construction pruning).
    pub edge_probability_threshold: f64,
    /// Minimum in-flight probability `Pr(t < ExecTime < TTD)` before the
    /// assignment is abandoned and the task reassigned. The paper uses 0.1.
    pub reassign_threshold: f64,
}

impl Default for DeadlineModelConfig {
    fn default() -> Self {
        DeadlineModelConfig {
            edge_probability_threshold: 0.1,
            reassign_threshold: 0.1,
        }
    }
}

/// Outcome of an in-flight deadline check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineDecision {
    /// The assignment still has an acceptable chance of meeting the
    /// deadline; leave it with the current worker.
    Keep {
        /// The evaluated `Pr(t < ExecTime < TTD)`.
        probability: f64,
    },
    /// The probability fell below the threshold: pull the task back and
    /// let the Scheduling Component find a better worker.
    Reassign {
        /// The evaluated `Pr(t < ExecTime < TTD)`.
        probability: f64,
    },
}

impl DeadlineDecision {
    /// True for the [`DeadlineDecision::Reassign`] variant.
    pub fn is_reassign(&self) -> bool {
        matches!(self, DeadlineDecision::Reassign { .. })
    }

    /// The probability the decision was based on.
    pub fn probability(&self) -> f64 {
        match *self {
            DeadlineDecision::Keep { probability } | DeadlineDecision::Reassign { probability } => {
                probability
            }
        }
    }
}

/// Stateless evaluator of the paper's Eq. (2)/(3) over a fitted worker
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeadlineModel {
    config: DeadlineModelConfig,
}

impl DeadlineModel {
    /// Creates a model with the given thresholds.
    pub fn new(config: DeadlineModelConfig) -> Self {
        DeadlineModel { config }
    }

    /// The thresholds in use.
    pub fn config(&self) -> &DeadlineModelConfig {
        &self.config
    }

    /// **Eq. (3)**: probability that this worker completes a fresh task
    /// within `time_to_deadline` seconds, i.e. `1 − P(TTD)`.
    ///
    /// Works with any latency model (the paper's power law or the
    /// empirical fallback). Degenerate horizons (`TTD ≤ 0`) give
    /// probability 0.
    pub fn pr_complete_before<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        time_to_deadline: f64,
    ) -> f64 {
        if time_to_deadline <= 0.0 {
            return 0.0;
        }
        (1.0 - model.ccdf(time_to_deadline)).clamp(0.0, 1.0)
    }

    /// **Eq. (2)**: probability that the execution time lands inside
    /// `(elapsed, time_to_deadline)`:
    /// `P(elapsed) − P(TTD)` (the paper writes the equivalent
    /// `1 − (P(TTD) + (1 − P(elapsed)))`).
    ///
    /// Returns 0 when the window is empty (`elapsed ≥ TTD`).
    pub fn pr_complete_in_window<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        elapsed: f64,
        time_to_deadline: f64,
    ) -> f64 {
        if elapsed >= time_to_deadline || time_to_deadline <= 0.0 {
            return 0.0;
        }
        let elapsed = elapsed.max(0.0);
        (model.ccdf(elapsed) - model.ccdf(time_to_deadline)).clamp(0.0, 1.0)
    }

    /// Graph-construction rule: should the `(worker, task)` edge be
    /// instantiated, given the worker's fitted model and the task's
    /// time-to-deadline? `None` worker model (cold profile) is handled by
    /// the caller — the paper instantiates all edges for a worker's first
    /// `z` assignments.
    pub fn should_instantiate_edge<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        time_to_deadline: f64,
    ) -> bool {
        self.pr_complete_before(model, time_to_deadline) > self.config.edge_probability_threshold
    }

    /// In-flight rule: given the elapsed time on the current worker,
    /// decide whether to keep or reassign the task.
    pub fn check_in_flight<M: LatencyCcdf + ?Sized>(
        &self,
        model: &M,
        elapsed: f64,
        time_to_deadline: f64,
    ) -> DeadlineDecision {
        let probability = self.pr_complete_in_window(model, elapsed, time_to_deadline);
        if probability < self.config.reassign_threshold {
            DeadlineDecision::Reassign { probability }
        } else {
            DeadlineDecision::Keep { probability }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::PowerLaw;

    fn model() -> PowerLaw {
        // α = 2, k_min = 5 → P(k) = 5/k for k ≥ 5.
        PowerLaw::new(2.0, 5.0).unwrap()
    }

    #[test]
    fn eq3_matches_closed_form() {
        let dm = DeadlineModel::default();
        let m = model();
        // P(20) = 5/20 = 0.25 → Pr(complete before 20) = 0.75.
        assert!((dm.pr_complete_before(&m, 20.0) - 0.75).abs() < 1e-12);
        // TTD at/below k_min → CCDF 1 → probability 0.
        assert_eq!(dm.pr_complete_before(&m, 5.0), 0.0);
        assert_eq!(dm.pr_complete_before(&m, 0.0), 0.0);
        assert_eq!(dm.pr_complete_before(&m, -3.0), 0.0);
    }

    #[test]
    fn eq2_matches_closed_form() {
        let dm = DeadlineModel::default();
        let m = model();
        // P(10) − P(40) = 0.5 − 0.125 = 0.375.
        assert!((dm.pr_complete_in_window(&m, 10.0, 40.0) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn eq2_empty_window_is_zero() {
        let dm = DeadlineModel::default();
        let m = model();
        assert_eq!(dm.pr_complete_in_window(&m, 40.0, 40.0), 0.0);
        assert_eq!(dm.pr_complete_in_window(&m, 50.0, 40.0), 0.0);
        assert_eq!(dm.pr_complete_in_window(&m, 0.0, 0.0), 0.0);
    }

    #[test]
    fn eq2_shrinks_as_time_elapses() {
        // As the worker keeps not finishing, the remaining window's
        // probability must be non-increasing; this is the signal the paper
        // exploits to detect abandoned/delayed tasks.
        let dm = DeadlineModel::default();
        let m = model();
        let ttd = 60.0;
        let mut last = f64::INFINITY;
        for elapsed in [0.0, 5.0, 10.0, 20.0, 40.0, 55.0, 59.0] {
            let p = dm.pr_complete_in_window(&m, elapsed, ttd);
            assert!(p <= last + 1e-12, "probability rose at elapsed={elapsed}");
            last = p;
        }
        // Just before the deadline there is almost no chance left.
        assert!(dm.pr_complete_in_window(&m, 59.0, 60.0) < 0.02);
    }

    #[test]
    fn eq2_before_kmin_elapsed_equals_eq3ish() {
        // While elapsed < k_min, P(elapsed) = 1 so Eq. 2 reduces to Eq. 3.
        let dm = DeadlineModel::default();
        let m = model();
        let a = dm.pr_complete_in_window(&m, 2.0, 30.0);
        let b = dm.pr_complete_before(&m, 30.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn edge_instantiation_threshold() {
        let dm = DeadlineModel::new(DeadlineModelConfig {
            edge_probability_threshold: 0.5,
            reassign_threshold: 0.1,
        });
        let m = model();
        // Pr(complete before 9) = 1 − 5/9 ≈ 0.444 < 0.5 → prune.
        assert!(!dm.should_instantiate_edge(&m, 9.0));
        // Pr(complete before 20) = 0.75 > 0.5 → instantiate.
        assert!(dm.should_instantiate_edge(&m, 20.0));
    }

    #[test]
    fn in_flight_keep_then_reassign() {
        let dm = DeadlineModel::default(); // reassign at < 0.1
        let m = model();
        let ttd = 50.0; // P(50) = 0.1
                        // Early on: P(ε) − P(50) = 1 − 0.1 = 0.9 → keep.
        let d = dm.check_in_flight(&m, 0.0, ttd);
        assert!(!d.is_reassign());
        assert!((d.probability() - 0.9).abs() < 1e-12);
        // Late: P(45) − P(50) = 5/45 − 0.1 ≈ 0.011 → reassign.
        let d = dm.check_in_flight(&m, 45.0, ttd);
        assert!(d.is_reassign());
        assert!(d.probability() < 0.1);
    }

    #[test]
    fn decision_accessors() {
        let keep = DeadlineDecision::Keep { probability: 0.4 };
        let re = DeadlineDecision::Reassign { probability: 0.01 };
        assert!(!keep.is_reassign());
        assert!(re.is_reassign());
        assert_eq!(keep.probability(), 0.4);
        assert_eq!(re.probability(), 0.01);
    }

    #[test]
    fn default_thresholds_match_paper() {
        let cfg = DeadlineModelConfig::default();
        assert_eq!(cfg.reassign_threshold, 0.1);
        assert_eq!(cfg.edge_probability_threshold, 0.1);
    }
}
