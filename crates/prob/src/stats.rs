//! Summary statistics used by the profiling component and the experiment
//! harness: running moments (Welford), percentile summaries, fixed-width
//! histograms and empirical CDFs.

/// Numerically stable running mean/variance (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Sample variance with Bessel's correction (`None` for n < 2).
    pub fn variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Sample standard deviation (`None` for n < 2).
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A percentile summary computed from a full sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples summarised.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std_dev: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Builds a summary from `samples`. Returns `None` for an empty slice
    /// or when any sample is NaN.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|s| s.is_nan()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut acc = Welford::new();
        for &s in samples {
            acc.push(s);
        }
        Some(Summary {
            count: samples.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: acc.mean()?,
            std_dev: acc.std_dev().unwrap_or(0.0),
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
        })
    }
}

/// Linear-interpolation percentile over an already-sorted slice.
///
/// # Panics
/// Panics on an empty slice (callers always check).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let idx = pos.floor() as usize;
    let frac = pos - idx as f64;
    if idx + 1 < sorted.len() {
        sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac
    } else {
        sorted[idx]
    }
}

/// Fixed-width histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `n_buckets` equal-width buckets on
    /// `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo >= hi` or `n_buckets == 0` (static configuration).
    pub fn new(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(lo < hi, "histogram bounds [{lo}, {hi}) are empty");
        assert!(n_buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; n_buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total recorded observations (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at/above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bucket counts, lowest bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The `[start, end)` range of bucket `i`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Fraction of in-range observations strictly below `x` (a coarse
    /// CDF readout from the histogram).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mut below = self.underflow;
        for (i, &c) in self.buckets.iter().enumerate() {
            let (start, end) = self.bucket_range(i);
            if end <= x {
                below += c;
            } else if start < x {
                // Partial bucket: assume uniform within the bucket.
                let frac = (x - start) / (end - start);
                below += (c as f64 * frac) as u64;
            }
        }
        below as f64 / self.count as f64
    }
}

/// Empirical CDF: fraction of `samples` that are `≤ x`.
pub fn ecdf(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s <= x).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean().unwrap() - 5.0).abs() < 1e-12);
        // Naive sample variance = Σ(x−5)² / 7 = 32/7.
        assert!((w.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.mean(), None);
        assert_eq!(w.variance(), None);
        assert_eq!(w.min(), None);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.variance(), None);
        assert_eq!(w.std_dev(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[42.0]).unwrap();
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.p50, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentile_boundaries() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 4.0);
        assert!((percentile_sorted(&sorted, 0.5) - 2.5).abs() < 1e-12);
        // Out-of-range q is clamped.
        assert_eq!(percentile_sorted(&sorted, 2.0), 4.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile_sorted(&[], 0.5);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.0, 0.5, 1.0, 5.5, 9.99] {
            h.record(x);
        }
        h.record(-1.0);
        h.record(10.0);
        h.record(100.0);
        assert_eq!(h.count(), 8);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.buckets()[0], 2); // 0.0, 0.5
        assert_eq!(h.buckets()[1], 1); // 1.0
        assert_eq!(h.buckets()[5], 1); // 5.5
        assert_eq!(h.buckets()[9], 1); // 9.99
        assert_eq!(h.bucket_range(3), (3.0, 4.0));
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let f = h.fraction_below(50.0);
        assert!((f - 0.5).abs() < 0.02, "fraction {f}");
        assert_eq!(Histogram::new(0.0, 1.0, 1).fraction_below(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "bounds")]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(5.0, 5.0, 4);
    }

    #[test]
    fn ecdf_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ecdf(&xs, 0.0), 0.0);
        assert_eq!(ecdf(&xs, 2.0), 0.5);
        assert_eq!(ecdf(&xs, 10.0), 1.0);
        assert_eq!(ecdf(&[], 1.0), 0.0);
    }
}
