//! Hopcroft–Karp maximum-*cardinality* bipartite matching,
//! `O(E·√V)`.
//!
//! A weight-blind comparator: the paper observes that classical
//! crowdsourcing systems *"optimize throughput rather than be
//! responsive"* — maximum cardinality is exactly the throughput-optimal
//! objective (assign as many tasks as possible, ignore who is best).
//! Against REACT it isolates how much of the quality gain comes from
//! *weighted* matching rather than from merely assigning aggressively.
//!
//! The classic algorithm: repeated BFS phases build a layered graph of
//! shortest alternating paths from free workers; DFS then augments along
//! a maximal set of vertex-disjoint shortest paths. The number of phases
//! is `O(√V)`.

use crate::graph::{BipartiteGraph, TaskIdx, WorkerIdx};
use crate::matcher::{Matcher, Matching};
use rand::RngCore;
use std::collections::VecDeque;

/// Maximum-cardinality matcher (weights ignored).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopcroftKarpMatcher;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

impl HopcroftKarpMatcher {
    /// Computes a maximum-cardinality matching, returning
    /// `match_of_worker[u] = Some(v)` pairs.
    fn solve(graph: &BipartiteGraph) -> Vec<Option<TaskIdx>> {
        let n_u = graph.n_workers();
        let mut pair_u: Vec<u32> = vec![NIL; n_u]; // worker → task
        let mut pair_v: Vec<u32> = vec![NIL; graph.n_tasks()]; // task → worker
        let mut dist: Vec<u32> = vec![INF; n_u];
        let mut queue = VecDeque::new();

        // BFS over free workers: layers of shortest alternating paths.
        let bfs =
            |pair_u: &[u32], pair_v: &[u32], dist: &mut [u32], queue: &mut VecDeque<u32>| -> bool {
                queue.clear();
                for u in 0..pair_u.len() as u32 {
                    if pair_u[u as usize] == NIL {
                        dist[u as usize] = 0;
                        queue.push_back(u);
                    } else {
                        dist[u as usize] = INF;
                    }
                }
                let mut found = false;
                while let Some(u) = queue.pop_front() {
                    for &e in graph.worker_edges(WorkerIdx(u)) {
                        let v = graph.edge(e).task.0;
                        let u_next = pair_v[v as usize];
                        if u_next == NIL {
                            found = true;
                        } else if dist[u_next as usize] == INF {
                            dist[u_next as usize] = dist[u as usize] + 1;
                            queue.push_back(u_next);
                        }
                    }
                }
                found
            };

        // DFS along the layered graph.
        fn dfs(
            graph: &BipartiteGraph,
            u: u32,
            pair_u: &mut [u32],
            pair_v: &mut [u32],
            dist: &mut [u32],
        ) -> bool {
            for &e in graph.worker_edges(WorkerIdx(u)) {
                let v = graph.edge(e).task.0;
                let u_next = pair_v[v as usize];
                let advance = if u_next == NIL {
                    true
                } else if dist[u_next as usize] == dist[u as usize] + 1 {
                    dfs(graph, u_next, pair_u, pair_v, dist)
                } else {
                    false
                };
                if advance {
                    pair_u[u as usize] = v;
                    pair_v[v as usize] = u;
                    return true;
                }
            }
            dist[u as usize] = INF;
            false
        }

        while bfs(&pair_u, &pair_v, &mut dist, &mut queue) {
            for u in 0..n_u as u32 {
                if pair_u[u as usize] == NIL {
                    dfs(graph, u, &mut pair_u, &mut pair_v, &mut dist);
                }
            }
        }

        pair_u
            .iter()
            .map(|&v| (v != NIL).then_some(TaskIdx(v)))
            .collect()
    }
}

impl Matcher for HopcroftKarpMatcher {
    fn assign(&self, graph: &BipartiteGraph, _rng: &mut dyn RngCore) -> Matching {
        if graph.is_empty() {
            return Matching::default();
        }
        let assignment = Self::solve(graph);
        let mut pairs = Vec::new();
        for (u, v) in assignment.iter().enumerate() {
            if let Some(task) = v {
                let worker = WorkerIdx(u as u32);
                let e = graph
                    .find_edge(worker, *task)
                    .expect("solver uses real edges");
                pairs.push((worker, *task, graph.edge(e).weight));
            }
        }
        // O(E·√V): the count the complexity analysis charges.
        let cost = graph.n_edges() as f64 * (graph.n_workers().max(graph.n_tasks()) as f64).sqrt();
        let m = Matching::from_pairs(pairs, cost);
        crate::invariants::debug_check_matching("hopcroft-karp", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "hopcroft-karp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::HungarianMatcher;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert!(HopcroftKarpMatcher.assign(&g, &mut rng()).is_empty());
    }

    #[test]
    fn perfect_matching_on_full_graph() {
        let g = BipartiteGraph::full(6, 6, |_, _| 0.5).unwrap();
        let m = HopcroftKarpMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 6);
        m.verify(&g);
    }

    #[test]
    fn classic_augmenting_path_case() {
        // w0–t0, w0–t1, w1–t0: naive greedy on w0→t0 then w1 stuck;
        // max cardinality is 2 (w0→t1, w1→t0).
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 1.0).unwrap();
        g.add_edge(WorkerIdx(0), TaskIdx(1), 1.0).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 1.0).unwrap();
        let m = HopcroftKarpMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 2);
        m.verify(&g);
    }

    #[test]
    fn cardinality_matches_hungarian_on_unit_weights() {
        // With unit weights, max weight == max cardinality: Hopcroft-Karp
        // must find matchings of the same size as the exact solver.
        let mut g_rng = rng();
        for trial in 0..20 {
            let mut g = BipartiteGraph::new(7, 7);
            for u in 0..7u32 {
                for v in 0..7u32 {
                    if g_rng.gen::<f64>() < 0.3 {
                        g.add_edge(WorkerIdx(u), TaskIdx(v), 1.0).unwrap();
                    }
                }
            }
            let hk = HopcroftKarpMatcher.assign(&g, &mut rng());
            hk.verify(&g);
            let hung = HungarianMatcher.assign(&g, &mut rng());
            assert_eq!(
                hk.len(),
                hung.len(),
                "trial {trial}: cardinality {} vs optimal {}",
                hk.len(),
                hung.len()
            );
        }
    }

    #[test]
    fn cardinality_beats_weighted_matchers_in_size() {
        // A weight trap: the heavy edge blocks a bigger matching. HK
        // (weight-blind) must still find the larger matching.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 10.0).unwrap();
        g.add_edge(WorkerIdx(0), TaskIdx(1), 0.1).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 0.1).unwrap();
        let m = HopcroftKarpMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 2, "max cardinality is 2 even though Σw is lower");
    }

    #[test]
    fn rectangular_graphs() {
        let g = BipartiteGraph::full(3, 9, |_, _| 1.0).unwrap();
        let m = HopcroftKarpMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 3);
        let g = BipartiteGraph::full(9, 3, |_, _| 1.0).unwrap();
        let m = HopcroftKarpMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 3);
        assert_eq!(HopcroftKarpMatcher.name(), "hopcroft-karp");
    }
}
