//! The "traditional" uniform-random assigner.
//!
//! Simulates classical crowdsourcing marketplaces (AMT-style): tasks are
//! not routed by skill or profile — effectively each task ends up with a
//! uniformly random available worker. The paper's third comparator uses
//! exactly this (*"we use uniform matching for the assignment and the
//! probabilistic model ... is not being used"*).
//!
//! Weights are ignored during selection; assignment cost is negligible
//! (`cost_units = |V|`), which is why the traditional system never
//! suffers the scheduler queueing collapse — it simply assigns blindly.

use crate::graph::{BipartiteGraph, TaskIdx};
use crate::invariants::debug_check_matching;
use crate::matcher::{Matcher, Matching};
use rand::{Rng, RngCore};

/// Uniform-random matcher over the feasible edges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomMatcher;

impl Matcher for RandomMatcher {
    fn assign(&self, graph: &BipartiteGraph, rng: &mut dyn RngCore) -> Matching {
        let mut worker_taken = vec![false; graph.n_workers()];
        let mut pairs = Vec::new();
        // Scratch buffer reused across tasks to avoid per-task allocation.
        let mut candidates: Vec<&crate::graph::Edge> = Vec::new();
        for v in 0..graph.n_tasks() {
            let task = TaskIdx(v as u32);
            candidates.clear();
            candidates.extend(
                graph
                    .task_edges(task)
                    .iter()
                    .map(|&e| graph.edge(e))
                    .filter(|edge| !worker_taken[edge.worker.0 as usize]),
            );
            if candidates.is_empty() {
                continue;
            }
            let edge = candidates[rng.gen_range(0..candidates.len())];
            worker_taken[edge.worker.0 as usize] = true;
            pairs.push((edge.worker, edge.task, edge.weight));
        }
        let cost = graph.n_tasks() as f64;
        let m = Matching::from_pairs(pairs, cost);
        debug_check_matching("traditional", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "traditional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkerIdx;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(2, 2);
        let m = RandomMatcher.assign(&g, &mut rng());
        assert!(m.is_empty());
    }

    #[test]
    fn assigns_every_task_when_workers_abound() {
        let g = BipartiteGraph::full(50, 10, |_, _| 0.5).unwrap();
        let m = RandomMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 10);
        m.verify(&g);
    }

    #[test]
    fn selection_is_weight_blind() {
        // One heavy edge among many light ones: random must pick the
        // heavy one at roughly the uniform rate (1/10), far below always.
        let mut heavy_picks = 0;
        let g = BipartiteGraph::full(10, 1, |u, _| if u.0 == 0 { 1.0 } else { 0.01 }).unwrap();
        for seed in 0..500 {
            let m = RandomMatcher.assign(&g, &mut SmallRng::seed_from_u64(seed));
            if m.pairs[0].0 == WorkerIdx(0) {
                heavy_picks += 1;
            }
        }
        let rate = heavy_picks as f64 / 500.0;
        assert!(
            (rate - 0.1).abs() < 0.05,
            "uniform pick rate should be ≈0.1, got {rate}"
        );
    }

    #[test]
    fn respects_one_to_one_constraints() {
        let g = BipartiteGraph::full(5, 20, |_, _| 0.5).unwrap();
        let m = RandomMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 5, "at most |U| tasks can be served");
        m.verify(&g);
    }

    #[test]
    fn cost_is_linear_in_tasks() {
        let g = BipartiteGraph::full(10, 7, |_, _| 0.5).unwrap();
        let m = RandomMatcher.assign(&g, &mut rng());
        assert_eq!(m.cost_units, 7.0);
        assert_eq!(RandomMatcher.name(), "traditional");
    }
}
