//! Bertsekas auction matcher (extension).
//!
//! Not part of the paper's evaluation — implemented as the ablation point
//! between the exact-but-cubic Hungarian algorithm and the cheap
//! heuristics: the auction reaches within `|V|·ε` of the optimum.
//!
//! Tasks act as bidders: an unassigned task bids for its best-value
//! worker at a price increment of (best − second-best + ε); the worker
//! always goes to the highest bidder, evicting the previous holder back
//! into the bidding queue.
//!
//! To keep the asymmetric `|V| > |U|` case terminating *and* preserve the
//! `|V|·ε` optimality bound, every task additionally owns a dedicated
//! **virtual worker** with value 0 — the textbook "remain unassigned"
//! option. Its price is never contested, so eviction chains always
//! terminate there, and ε-complementary-slackness holds on the padded
//! problem, whose optimum equals the original one (padding adds zero
//! weight).

use crate::graph::{BipartiteGraph, TaskIdx};
use crate::matcher::{Matcher, Matching};
use rand::RngCore;
use std::collections::VecDeque;

/// Auction configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuctionMatcher {
    /// Bid increment ε: the result is within `|V|·epsilon` of optimal.
    pub epsilon: f64,
}

impl Default for AuctionMatcher {
    fn default() -> Self {
        AuctionMatcher { epsilon: 1e-4 }
    }
}

impl Matcher for AuctionMatcher {
    fn assign(&self, graph: &BipartiteGraph, _rng: &mut dyn RngCore) -> Matching {
        if graph.is_empty() {
            return Matching::default();
        }
        let n_real = graph.n_workers();
        let n_tasks = graph.n_tasks();
        // Worker indices ≥ n_real are the per-task virtual workers:
        // virtual worker of task v has index n_real + v.
        let mut prices = vec![0.0f64; n_real + n_tasks];
        // owner[w] = task currently holding worker w.
        let mut owner: Vec<Option<TaskIdx>> = vec![None; n_real + n_tasks];
        // assignment[v] = worker index currently held by task v.
        let mut assignment: Vec<Option<usize>> = vec![None; n_tasks];
        let mut bids: u64 = 0;

        let eps = self.epsilon.max(f64::MIN_POSITIVE);
        let mut queue: VecDeque<TaskIdx> = (0..n_tasks as u32)
            .map(TaskIdx)
            .filter(|&t| !graph.task_edges(t).is_empty())
            .collect();
        while let Some(task) = queue.pop_front() {
            // Best and second-best net value among the real candidates
            // plus the task's own virtual worker (value 0).
            let virtual_w = n_real + task.0 as usize;
            let mut best = (virtual_w, 0.0 - prices[virtual_w]);
            let mut second = f64::NEG_INFINITY;
            for &e in graph.task_edges(task) {
                let edge = graph.edge(e);
                let w = edge.worker.0 as usize;
                let net = edge.weight - prices[w];
                if net > best.1 {
                    second = second.max(best.1);
                    best = (w, net);
                } else {
                    second = second.max(net);
                }
            }
            let (w, best_net) = best;
            bids += 1;
            let increment = if second.is_finite() {
                (best_net - second) + eps
            } else {
                eps
            };
            prices[w] += increment;
            if let Some(prev) = owner[w] {
                assignment[prev.0 as usize] = None;
                queue.push_back(prev);
            }
            owner[w] = Some(task);
            assignment[task.0 as usize] = Some(w);
        }

        let mut pairs = Vec::new();
        for (v, w) in assignment.iter().enumerate() {
            // Virtual workers mean "left unassigned".
            if let Some(w) = w.filter(|&w| w < n_real) {
                let task = TaskIdx(v as u32);
                let worker = crate::graph::WorkerIdx(w as u32);
                let e = graph
                    .find_edge(worker, task)
                    .expect("assignment uses real edges");
                pairs.push((worker, task, graph.edge(e).weight));
            }
        }
        let m = Matching::from_pairs(pairs, bids as f64);
        crate::invariants::debug_check_matching("auction", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "auction"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkerIdx;
    use crate::hungarian::HungarianMatcher;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(2, 2);
        let m = AuctionMatcher::default().assign(&g, &mut rng());
        assert!(m.is_empty());
    }

    #[test]
    fn single_edge() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.6).unwrap();
        let m = AuctionMatcher::default().assign(&g, &mut rng());
        assert_eq!(m.len(), 1);
        assert!((m.total_weight - 0.6).abs() < 1e-12);
    }

    #[test]
    fn near_optimal_vs_hungarian_square() {
        let mut g_rng = rng();
        for trial in 0..10 {
            let n = 4 + trial % 6;
            let g = BipartiteGraph::full(n, n, |_, _| g_rng.gen::<f64>()).unwrap();
            let auc = AuctionMatcher::default().assign(&g, &mut rng());
            auc.verify(&g);
            let opt = HungarianMatcher.assign(&g, &mut rng());
            let slack = n as f64 * 1e-3;
            assert!(
                auc.total_weight >= opt.total_weight - slack,
                "trial {trial}: auction {} vs optimum {}",
                auc.total_weight,
                opt.total_weight
            );
        }
    }

    #[test]
    fn near_optimal_more_workers_than_tasks() {
        let mut g_rng = rng();
        let g = BipartiteGraph::full(20, 8, |_, _| g_rng.gen::<f64>()).unwrap();
        let auc = AuctionMatcher::default().assign(&g, &mut rng());
        auc.verify(&g);
        assert_eq!(auc.len(), 8);
        let opt = HungarianMatcher.assign(&g, &mut rng());
        assert!(auc.total_weight >= opt.total_weight - 0.01);
    }

    #[test]
    fn terminates_with_more_tasks_than_workers() {
        let mut g_rng = rng();
        let g = BipartiteGraph::full(3, 12, |_, _| g_rng.gen::<f64>()).unwrap();
        let auc = AuctionMatcher::default().assign(&g, &mut rng());
        auc.verify(&g);
        assert_eq!(auc.len(), 3, "only |U| tasks can win a worker");
    }

    #[test]
    fn handles_all_zero_weights() {
        let g = BipartiteGraph::full(4, 4, |_, _| 0.0).unwrap();
        let m = AuctionMatcher::default().assign(&g, &mut rng());
        m.verify(&g);
        assert_eq!(m.total_weight, 0.0);
    }

    #[test]
    fn reports_bid_count_as_cost() {
        let mut g_rng = rng();
        let g = BipartiteGraph::full(6, 6, |_, _| g_rng.gen::<f64>()).unwrap();
        let m = AuctionMatcher::default().assign(&g, &mut rng());
        assert!(m.cost_units >= 6.0, "at least one bid per task");
        assert_eq!(AuctionMatcher::default().name(), "auction");
    }
}
