//! Runtime invariant checking for matchings (`debug-invariants`).
//!
//! The WBGM algorithms promise more than an approximate objective value:
//! every result must be a *valid* matching (each worker and task used at
//! most once, every pair a real edge, weights finite and non-negative),
//! and the incremental [`MatchingState`] bookkeeping must never drift —
//! in particular REACT's conflict-resolution rule must never leave a
//! flipped edge dangling (a vertex still pointing at a deselected edge).
//!
//! [`MatchingValidator`] checks those invariants and returns a typed
//! [`InvariantViolation`] instead of asserting, so it is usable from
//! tests and tools. The `debug_check_*` helpers are the hook the matchers
//! call: with the `debug-invariants` feature enabled they validate and
//! abort on violation, without it they compile to nothing — release
//! builds pay zero cost.
//!
//! See DESIGN.md § "Invariants catalog" for the full list and which
//! layer enforces each invariant.

use crate::graph::BipartiteGraph;
use crate::matcher::Matching;
use crate::state::MatchingState;
use std::fmt;

/// A violated matching invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A worker appears in more than one matched pair.
    WorkerMatchedTwice {
        /// The worker index.
        worker: u32,
    },
    /// A task appears in more than one matched pair.
    TaskMatchedTwice {
        /// The task index.
        task: u32,
    },
    /// A matched pair is not an edge of the graph.
    PhantomEdge {
        /// The worker endpoint of the phantom pair.
        worker: u32,
        /// The task endpoint of the phantom pair.
        task: u32,
    },
    /// A matched weight is non-finite or negative.
    BadWeight {
        /// The worker endpoint.
        worker: u32,
        /// The task endpoint.
        task: u32,
        /// The offending weight.
        weight: f64,
    },
    /// A matched weight differs from the graph's edge weight.
    WeightMismatch {
        /// The worker endpoint.
        worker: u32,
        /// The task endpoint.
        task: u32,
        /// The weight recorded in the matching.
        recorded: f64,
        /// The weight stored on the graph edge.
        actual: f64,
    },
    /// `total_weight` disagrees with the sum of pair weights.
    TotalWeightDrift {
        /// The recorded total.
        recorded: f64,
        /// The recomputed sum.
        actual: f64,
    },
    /// A vertex points at an edge that is not selected (a flip left the
    /// edge dangling), or at an edge with a different endpoint.
    DanglingVertex {
        /// Human-readable side + index, e.g. `"worker 3"`.
        vertex: String,
        /// The edge id the vertex erroneously points at.
        edge: u32,
    },
    /// A selected edge whose endpoints do not point back at it.
    UnindexedEdge {
        /// The selected-but-unindexed edge id.
        edge: u32,
    },
    /// The state's incremental fitness drifted from the recomputed sum.
    FitnessDrift {
        /// The incrementally-maintained fitness.
        recorded: f64,
        /// The recomputed fitness.
        actual: f64,
    },
    /// The state's size counter drifted from the selected-edge count.
    SizeDrift {
        /// The maintained size.
        recorded: usize,
        /// The recomputed size.
        actual: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::WorkerMatchedTwice { worker } => {
                write!(f, "worker {worker} matched twice")
            }
            InvariantViolation::TaskMatchedTwice { task } => {
                write!(f, "task {task} matched twice")
            }
            InvariantViolation::PhantomEdge { worker, task } => {
                write!(f, "pair (worker {worker}, task {task}) is not a graph edge")
            }
            InvariantViolation::BadWeight {
                worker,
                task,
                weight,
            } => write!(
                f,
                "pair (worker {worker}, task {task}) has invalid weight {weight}"
            ),
            InvariantViolation::WeightMismatch {
                worker,
                task,
                recorded,
                actual,
            } => write!(
                f,
                "pair (worker {worker}, task {task}) records weight {recorded} but edge has {actual}"
            ),
            InvariantViolation::TotalWeightDrift { recorded, actual } => {
                write!(f, "total_weight {recorded} != pair sum {actual}")
            }
            InvariantViolation::DanglingVertex { vertex, edge } => {
                write!(f, "{vertex} points at edge {edge} which is not selected for it")
            }
            InvariantViolation::UnindexedEdge { edge } => {
                write!(f, "selected edge {edge} not indexed by its endpoints")
            }
            InvariantViolation::FitnessDrift { recorded, actual } => {
                write!(f, "fitness {recorded} drifted from recomputed {actual}")
            }
            InvariantViolation::SizeDrift { recorded, actual } => {
                write!(f, "size {recorded} drifted from recomputed {actual}")
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Validates matchings and matching states against a graph.
#[derive(Debug, Clone, Copy)]
pub struct MatchingValidator<'g> {
    graph: &'g BipartiteGraph,
}

impl<'g> MatchingValidator<'g> {
    /// A validator for matchings over `graph`.
    pub fn new(graph: &'g BipartiteGraph) -> Self {
        MatchingValidator { graph }
    }

    /// Checks a final [`Matching`]: 1-to-1 constraints, edge existence,
    /// weight validity and total-weight consistency.
    pub fn check_matching(&self, m: &Matching) -> Result<(), InvariantViolation> {
        let mut worker_seen = vec![false; self.graph.n_workers()];
        let mut task_seen = vec![false; self.graph.n_tasks()];
        let mut total = 0.0;
        for &(w, t, weight) in &m.pairs {
            let (wi, ti) = (w.0 as usize, t.0 as usize);
            if wi >= worker_seen.len() || ti >= task_seen.len() {
                return Err(InvariantViolation::PhantomEdge {
                    worker: w.0,
                    task: t.0,
                });
            }
            if worker_seen[wi] {
                return Err(InvariantViolation::WorkerMatchedTwice { worker: w.0 });
            }
            if task_seen[ti] {
                return Err(InvariantViolation::TaskMatchedTwice { task: t.0 });
            }
            worker_seen[wi] = true;
            task_seen[ti] = true;
            if !weight.is_finite() || weight < 0.0 {
                return Err(InvariantViolation::BadWeight {
                    worker: w.0,
                    task: t.0,
                    weight,
                });
            }
            let Some(e) = self.graph.find_edge(w, t) else {
                return Err(InvariantViolation::PhantomEdge {
                    worker: w.0,
                    task: t.0,
                });
            };
            let actual = self.graph.edge(e).weight;
            if (actual - weight).abs() > 1e-12 {
                return Err(InvariantViolation::WeightMismatch {
                    worker: w.0,
                    task: t.0,
                    recorded: weight,
                    actual,
                });
            }
            total += weight;
        }
        if (total - m.total_weight).abs() > 1e-9 * (1.0 + total.abs()) {
            return Err(InvariantViolation::TotalWeightDrift {
                recorded: m.total_weight,
                actual: total,
            });
        }
        Ok(())
    }

    /// Checks an in-flight [`MatchingState`] after a flip: every vertex
    /// index points at a selected edge of which it is an endpoint (the
    /// conflict rule left nothing dangling), every selected edge is
    /// indexed by both endpoints, and fitness/size have not drifted.
    pub fn check_state(&self, state: &MatchingState) -> Result<(), InvariantViolation> {
        use crate::graph::{TaskIdx, WorkerIdx};
        for w in 0..self.graph.n_workers() {
            if let Some(e) = state.worker_match(WorkerIdx(w as u32)) {
                if !state.is_selected(e) || self.graph.edge(e).worker.0 as usize != w {
                    return Err(InvariantViolation::DanglingVertex {
                        vertex: format!("worker {w}"),
                        edge: e.0,
                    });
                }
            }
        }
        for t in 0..self.graph.n_tasks() {
            if let Some(e) = state.task_match(TaskIdx(t as u32)) {
                if !state.is_selected(e) || self.graph.edge(e).task.0 as usize != t {
                    return Err(InvariantViolation::DanglingVertex {
                        vertex: format!("task {t}"),
                        edge: e.0,
                    });
                }
            }
        }
        let mut fitness = 0.0;
        let selected = state.selected_edges();
        for &e in &selected {
            let edge = self.graph.edge(e);
            if state.worker_match(edge.worker) != Some(e) || state.task_match(edge.task) != Some(e)
            {
                return Err(InvariantViolation::UnindexedEdge { edge: e.0 });
            }
            fitness += edge.weight;
        }
        if selected.len() != state.size() {
            return Err(InvariantViolation::SizeDrift {
                recorded: state.size(),
                actual: selected.len(),
            });
        }
        if (fitness - state.fitness()).abs() > 1e-9 * (1.0 + fitness.abs()) {
            return Err(InvariantViolation::FitnessDrift {
                recorded: state.fitness(),
                actual: fitness,
            });
        }
        Ok(())
    }
}

/// Validates a matcher's final result when `debug-invariants` is on;
/// a no-op (and zero cost) otherwise. `who` names the matcher in the
/// abort message.
#[cfg(feature = "debug-invariants")]
pub fn debug_check_matching(who: &str, graph: &BipartiteGraph, m: &Matching) {
    if let Err(violation) = MatchingValidator::new(graph).check_matching(m) {
        // analyze: allow(no-panic-in-lib) the invariant layer's whole job is to abort on corrupted matchings
        panic!("{who}: matching invariant violated: {violation}");
    }
}

/// See [`debug_check_matching`] — disabled-feature stub.
#[cfg(not(feature = "debug-invariants"))]
#[inline(always)]
pub fn debug_check_matching(_who: &str, _graph: &BipartiteGraph, _m: &Matching) {}

/// Validates an in-flight matching state (called per flip cycle by the
/// randomized matchers in debug/test builds).
#[cfg(all(feature = "debug-invariants", debug_assertions))]
pub fn debug_check_state(who: &str, graph: &BipartiteGraph, state: &MatchingState) {
    if let Err(violation) = MatchingValidator::new(graph).check_state(state) {
        // analyze: allow(no-panic-in-lib) the invariant layer's whole job is to abort on corrupted state
        panic!("{who}: state invariant violated: {violation}");
    }
}

/// See [`debug_check_state`] — disabled stub (release or feature off).
#[cfg(not(all(feature = "debug-invariants", debug_assertions)))]
#[inline(always)]
pub fn debug_check_state(_who: &str, _graph: &BipartiteGraph, _state: &MatchingState) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TaskIdx, WorkerIdx};
    use crate::matcher::Matching;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::full(3, 3, |u, v| ((u.0 * 3 + v.0) as f64) / 10.0).unwrap()
    }

    #[test]
    fn valid_matching_passes() {
        let g = graph();
        let m = Matching::from_pairs(
            vec![
                (WorkerIdx(0), TaskIdx(1), 0.1),
                (WorkerIdx(1), TaskIdx(0), 0.3),
            ],
            0.0,
        );
        assert_eq!(MatchingValidator::new(&g).check_matching(&m), Ok(()));
    }

    #[test]
    fn duplicate_worker_caught() {
        let g = graph();
        let m = Matching::from_pairs(
            vec![
                (WorkerIdx(0), TaskIdx(0), 0.0),
                (WorkerIdx(0), TaskIdx(1), 0.1),
            ],
            0.0,
        );
        assert_eq!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::WorkerMatchedTwice { worker: 0 })
        );
    }

    #[test]
    fn duplicate_task_caught() {
        let g = graph();
        let m = Matching::from_pairs(
            vec![
                (WorkerIdx(0), TaskIdx(1), 0.1),
                (WorkerIdx(1), TaskIdx(1), 0.4),
            ],
            0.0,
        );
        assert_eq!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::TaskMatchedTwice { task: 1 })
        );
    }

    #[test]
    fn phantom_edge_caught() {
        let g = BipartiteGraph::new(2, 2); // no edges at all
        let m = Matching::from_pairs(vec![(WorkerIdx(0), TaskIdx(0), 0.5)], 0.0);
        assert_eq!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::PhantomEdge { worker: 0, task: 0 })
        );
        // Out-of-range vertices are phantom too.
        let m = Matching::from_pairs(vec![(WorkerIdx(7), TaskIdx(0), 0.5)], 0.0);
        assert!(matches!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::PhantomEdge { worker: 7, .. })
        ));
    }

    #[test]
    fn bad_and_mismatched_weights_caught() {
        let g = graph();
        let m = Matching::from_pairs(vec![(WorkerIdx(0), TaskIdx(1), f64::NAN)], 0.0);
        assert!(matches!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::BadWeight { .. })
        ));
        let m = Matching::from_pairs(vec![(WorkerIdx(0), TaskIdx(1), 0.9)], 0.0);
        assert!(matches!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::WeightMismatch { .. })
        ));
    }

    #[test]
    fn total_weight_drift_caught() {
        let g = graph();
        let mut m = Matching::from_pairs(vec![(WorkerIdx(0), TaskIdx(1), 0.1)], 0.0);
        m.total_weight = 5.0;
        assert!(matches!(
            MatchingValidator::new(&g).check_matching(&m),
            Err(InvariantViolation::TotalWeightDrift { .. })
        ));
    }

    #[test]
    fn consistent_state_passes() {
        let g = graph();
        let mut s = MatchingState::new(&g);
        s.select(&g, g.find_edge(WorkerIdx(0), TaskIdx(2)).unwrap());
        s.select(&g, g.find_edge(WorkerIdx(1), TaskIdx(0)).unwrap());
        assert_eq!(MatchingValidator::new(&g).check_state(&s), Ok(()));
    }

    #[test]
    fn violation_messages_are_informative() {
        let msgs = [
            InvariantViolation::WorkerMatchedTwice { worker: 3 }.to_string(),
            InvariantViolation::DanglingVertex {
                vertex: "task 2".into(),
                edge: 9,
            }
            .to_string(),
            InvariantViolation::FitnessDrift {
                recorded: 1.0,
                actual: 2.0,
            }
            .to_string(),
        ];
        assert!(msgs[0].contains("worker 3"));
        assert!(msgs[1].contains("task 2") && msgs[1].contains('9'));
        assert!(msgs[2].contains("drifted"));
    }
}
