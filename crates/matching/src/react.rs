//! The REACT Weighted Bipartite Graph Matching algorithm (Algorithm 1).
//!
//! A randomized local search over matching states `x ∈ {0,1}^{|E|}`. Each
//! of the `c` cycles picks one edge uniformly at random and *flips* it:
//!
//! * **Deselect** (edge was matched): the fitness drops by the edge's
//!   weight, so the flip is only accepted with the annealing probability
//!   `e^{(g(x′)−g(x))/K}`.
//! * **Select, no conflict**: `g(x′) ≥ g(x)` — always accepted.
//! * **Select, conflict** (`g(x′) = 0` in the paper's formulation): the
//!   distinctive REACT rule. The weights `w_kl` of the already-matched
//!   edges sharing the new edge's worker or task are compared against the
//!   new weight `w_ij`; if `w_ij` beats **all** of them, the old edges are
//!   removed and the new edge takes their place; otherwise the flip is
//!   rejected.
//!
//! The conflict rule is what separates REACT from the plain
//! [`crate::MetropolisMatcher`] — conflicting flips become weight
//! *upgrades* instead of wasted cycles, which is why the paper's Fig. 4
//! shows REACT beating Metropolis at equal (and even a third of the)
//! cycles.
//!
//! Cost accounting: the paper's worst-case bound is `O(c·E)` and its
//! measured times scale accordingly (12 s for `c = 1000` on a 10⁶-edge
//! graph, ~45 s for `c = 3000`); [`Matching::cost_units`] is therefore
//! `c·E`, which the calibrated cost model converts to simulated seconds.

use crate::graph::{is_negligible_weight, BipartiteGraph, EdgeId};
use crate::invariants::{debug_check_matching, debug_check_state};
use crate::matcher::{MatchStats, Matcher, Matching};
use crate::state::MatchingState;
use rand::{Rng, RngCore};

/// Configuration and implementation of the REACT WBGM heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactMatcher {
    /// Number of flip cycles `c`. The paper uses 1000 in the end-to-end
    /// evaluation and 1000/3000 in the matching micro-benchmarks.
    pub cycles: usize,
    /// Annealing constant `K` in the worse-state acceptance probability
    /// `e^{Δg/K}`. Weights lie in `[0,1]`, so `K = 0.05` makes a typical
    /// full-weight removal survive with probability `e^{-20} ≈ 0`, while
    /// near-zero-weight edges stay mobile.
    pub k: f64,
}

impl Default for ReactMatcher {
    fn default() -> Self {
        ReactMatcher {
            cycles: 1000,
            k: 0.05,
        }
    }
}

impl ReactMatcher {
    /// Creates a matcher with the given cycle budget and the default `K`.
    pub fn with_cycles(cycles: usize) -> Self {
        ReactMatcher {
            cycles,
            ..Default::default()
        }
    }

    /// An adaptive variant (the paper suggests *"an adaptive cycles
    /// parameter based on the graph's order of magnitude could be
    /// selected"*): `c = ⌈κ·|E|⌉`, clamped to at least one cycle.
    pub fn adaptive(graph: &BipartiteGraph, kappa: f64) -> Self {
        let cycles = ((graph.n_edges() as f64 * kappa).ceil() as usize).max(1);
        Self::with_cycles(cycles)
    }

    /// Runs Algorithm 1 and returns the final state (exposed for tests
    /// and for the ablation experiments that inspect intermediate
    /// fitness).
    pub fn run_state(&self, graph: &BipartiteGraph, rng: &mut dyn RngCore) -> MatchingState {
        self.run_state_stats(graph, rng).0
    }

    /// Runs Algorithm 1 and returns the final state together with the
    /// work counters for the observability layer.
    pub fn run_state_stats(
        &self,
        graph: &BipartiteGraph,
        rng: &mut dyn RngCore,
    ) -> (MatchingState, MatchStats) {
        let mut state = MatchingState::new(graph);
        let mut stats = MatchStats::default();
        let n_edges = graph.n_edges();
        if n_edges == 0 {
            return (state, stats);
        }
        for _ in 0..self.cycles {
            let e = EdgeId(rng.gen_range(0..n_edges as u32));
            self.flip(graph, &mut state, e, rng, &mut stats);
            stats.cycles += 1;
            debug_check_state("react", graph, &state);
        }
        (state, stats)
    }

    /// One flip attempt on edge `e`. Counting into `stats` happens only
    /// after the flip decision, so the RNG draw sequence is exactly the
    /// historical one.
    fn flip(
        &self,
        graph: &BipartiteGraph,
        state: &mut MatchingState,
        e: EdgeId,
        rng: &mut dyn RngCore,
        stats: &mut MatchStats,
    ) {
        let weight = graph.edge(e).weight;
        if state.is_selected(e) {
            // Flipping off: Δg = −w ≤ 0. A negligible weight is a free
            // move (Δg ≈ 0, acceptance probability e^{Δg/K} ≈ 1) and is
            // accepted outright — crucially *before* any RNG draw, so
            // runs stay bit-identical to the historical exact-zero rule
            // on all weights the scheduler produces. Real deteriorations
            // anneal.
            if is_negligible_weight(weight) || self.accept_worse(-weight, rng) {
                state.deselect(graph, e);
                stats.flips_accepted += 1;
            } else {
                stats.flips_rejected += 1;
            }
            return;
        }
        match state.conflicts(graph, e) {
            (None, None) => {
                // Δg = +w ≥ 0 — always accept.
                state.select(graph, e);
                stats.flips_accepted += 1;
            }
            (cw, ct) => {
                // g(x′) = 0 case: replace iff the new edge beats every
                // conflicting matched edge.
                let beats_all = [cw, ct]
                    .into_iter()
                    .flatten()
                    .all(|c| graph.edge(c).weight < weight);
                if beats_all {
                    if let Some(c) = cw {
                        state.deselect(graph, c);
                    }
                    if let Some(c) = ct {
                        state.deselect(graph, c);
                    }
                    state.select(graph, e);
                    stats.flips_accepted += 1;
                    stats.conflicts_resolved += 1;
                } else {
                    stats.flips_rejected += 1;
                }
            }
        }
    }

    /// Metropolis-style acceptance of a fitness drop `delta < 0`.
    fn accept_worse(&self, delta: f64, rng: &mut dyn RngCore) -> bool {
        let alpha: f64 = rng.gen();
        alpha <= (delta / self.k).exp()
    }
}

impl Matcher for ReactMatcher {
    fn assign(&self, graph: &BipartiteGraph, rng: &mut dyn RngCore) -> Matching {
        let (state, stats) = self.run_state_stats(graph, rng);
        let pairs = state
            .selected_edges()
            .into_iter()
            .map(|e| {
                let edge = graph.edge(e);
                (edge.worker, edge.task, edge.weight)
            })
            .collect();
        // Worst-case complexity O(c·E) — see the module docs.
        let cost = self.cycles as f64 * graph.n_edges() as f64;
        let m = Matching::from_pairs(pairs, cost).with_stats(stats);
        debug_check_matching("react", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "react"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TaskIdx, WorkerIdx};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn empty_graph_yields_empty_matching() {
        let g = BipartiteGraph::new(5, 5);
        let m = ReactMatcher::default().assign(&g, &mut rng());
        assert!(m.is_empty());
        assert_eq!(m.total_weight, 0.0);
    }

    #[test]
    fn single_edge_is_selected() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.7).unwrap();
        let m = ReactMatcher::with_cycles(50).assign(&g, &mut rng());
        assert_eq!(m.len(), 1);
        assert!((m.total_weight - 0.7).abs() < 1e-12);
        m.verify(&g);
    }

    #[test]
    fn result_satisfies_matching_constraints() {
        let g = BipartiteGraph::full(20, 20, |u, v| ((u.0 * 31 + v.0 * 17) % 100) as f64 / 100.0)
            .unwrap();
        let m = ReactMatcher::default().assign(&g, &mut rng());
        m.verify(&g);
        assert!(m.len() <= 20);
        assert!(!m.is_empty());
    }

    #[test]
    fn conflict_rule_upgrades_to_heavier_edge() {
        // Two workers compete for one task. With enough cycles REACT must
        // end up with the heavier edge thanks to the replacement rule.
        let mut g = BipartiteGraph::new(2, 1);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.2).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 0.9).unwrap();
        let m = ReactMatcher::with_cycles(200).assign(&g, &mut rng());
        assert_eq!(m.len(), 1);
        assert_eq!(m.pairs[0].0, WorkerIdx(1), "must upgrade to the 0.9 edge");
    }

    #[test]
    fn more_cycles_do_not_hurt_quality() {
        let g = BipartiteGraph::full(50, 50, |u, v| {
            (((u.0 as u64 * 2654435761 + v.0 as u64 * 40503) % 1000) as f64) / 1000.0
        })
        .unwrap();
        let few = ReactMatcher::with_cycles(100).assign(&g, &mut rng());
        let many = ReactMatcher::with_cycles(20_000).assign(&g, &mut rng());
        assert!(
            many.total_weight >= few.total_weight * 0.95,
            "quality collapsed with more cycles: {} vs {}",
            many.total_weight,
            few.total_weight
        );
        assert!(many.len() >= few.len().saturating_sub(2));
    }

    #[test]
    fn approaches_optimum_on_small_graph() {
        // 3×3 with known optimum 0.9+0.8+0.7 = 2.4 on the diagonal.
        let w = [[0.9, 0.1, 0.1], [0.1, 0.8, 0.1], [0.1, 0.1, 0.7]];
        let g = BipartiteGraph::full(3, 3, |u, v| w[u.0 as usize][v.0 as usize]).unwrap();
        let m = ReactMatcher::with_cycles(5_000).assign(&g, &mut rng());
        assert!(
            m.total_weight > 2.3,
            "expected near-optimal 2.4, got {}",
            m.total_weight
        );
    }

    #[test]
    fn cost_units_are_cycles_times_edges() {
        let g = BipartiteGraph::full(10, 10, |_, _| 0.5).unwrap();
        let m = ReactMatcher::with_cycles(77).assign(&g, &mut rng());
        assert_eq!(m.cost_units, 77.0 * 100.0);
    }

    #[test]
    fn adaptive_cycles_scale_with_edges() {
        let g = BipartiteGraph::full(10, 20, |_, _| 0.5).unwrap();
        let m = ReactMatcher::adaptive(&g, 0.5);
        assert_eq!(m.cycles, 100);
        let tiny = BipartiteGraph::new(1, 1);
        assert_eq!(ReactMatcher::adaptive(&tiny, 0.5).cycles, 1);
    }

    #[test]
    fn deterministic_given_same_seed() {
        let g = BipartiteGraph::full(30, 30, |u, v| ((u.0 ^ v.0) % 7) as f64 / 7.0).unwrap();
        let matcher = ReactMatcher::default();
        let a = matcher.assign(&g, &mut SmallRng::seed_from_u64(5));
        let b = matcher.assign(&g, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a.pairs, b.pairs);
    }

    #[test]
    fn internal_state_stays_consistent() {
        let g = BipartiteGraph::full(15, 12, |u, v| ((u.0 + v.0) % 10) as f64 / 10.0).unwrap();
        let state = ReactMatcher::with_cycles(3_000).run_state(&g, &mut rng());
        state.verify(&g);
    }

    #[test]
    fn name() {
        assert_eq!(ReactMatcher::default().name(), "react");
    }

    #[test]
    fn stats_account_for_every_cycle() {
        let g = BipartiteGraph::full(20, 20, |u, v| ((u.0 * 31 + v.0 * 17) % 100) as f64 / 100.0)
            .unwrap();
        let matcher = ReactMatcher::with_cycles(500);
        let m = matcher.assign(&g, &mut rng());
        assert_eq!(m.stats.cycles, 500);
        assert_eq!(m.stats.flips_accepted + m.stats.flips_rejected, 500);
        assert!(m.stats.flips_accepted > 0);
        assert!(
            m.stats.conflicts_resolved <= m.stats.flips_accepted,
            "every resolution is an accepted flip"
        );
    }

    #[test]
    fn stats_do_not_perturb_rng_stream() {
        let g = BipartiteGraph::full(30, 30, |u, v| ((u.0 ^ v.0) % 7) as f64 / 7.0).unwrap();
        let matcher = ReactMatcher::default();
        let via_state = matcher.run_state(&g, &mut SmallRng::seed_from_u64(5));
        let (via_stats, _) = matcher.run_state_stats(&g, &mut SmallRng::seed_from_u64(5));
        assert_eq!(via_state.selected_edges(), via_stats.selected_edges());
    }
}
