//! Weighted bipartite graphs and matching algorithms for REACT.
//!
//! The REACT scheduler models each assignment batch as a weighted
//! bipartite graph `G = (U, V, E)` — workers on one side, unassigned
//! tasks on the other, an edge for every *feasible* assignment — and
//! selects a matching that (approximately) maximises the total edge
//! weight subject to the 1-to-1 constraints.
//!
//! Implemented algorithms, all behind the [`Matcher`] trait:
//!
//! | Algorithm | Paper role | Complexity |
//! |---|---|---|
//! | [`ReactMatcher`] | the contribution (Algorithm 1) | `O(c)` expected, `O(c·E)` worst |
//! | [`MetropolisMatcher`] | randomized baseline (Shih 2008) | `O(c)` |
//! | [`GreedyMatcher`] | quality baseline | `O(V·E)` |
//! | [`HungarianMatcher`] | offline optimum (Kuhn 1955) | `O(n³)` |
//! | [`AuctionMatcher`] | extension: ε-auction (near-optimal) | `O(E·max_w/ε)` |
//! | [`HopcroftKarpMatcher`] | extension: max *cardinality* (throughput-optimal, weight-blind) | `O(E·√V)` |
//! | [`RandomMatcher`] | "traditional" AMT-style uniform assignment | `O(V+E)` |
//!
//! The [`engine`] module hosts the policy layer above the algorithms:
//! [`MatcherSpec`] descriptors, the batch-reusing [`MatcherEngine`] and
//! the name-keyed [`MatcherRegistry`].
//!
//! Every matcher reports abstract **cost units** alongside its result so
//! the simulation can charge scheduler compute time through the
//! calibrated [`cost::CostModel`] (see `DESIGN.md`: the paper measured a
//! 2013 JVM on PlanetLab; we reproduce its *relative* costs, not its
//! absolute wall-clock).

#![warn(missing_docs)]

pub mod auction;
pub mod cost;
pub mod engine;
pub mod graph;
pub mod greedy;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod invariants;
pub mod matcher;
pub mod metropolis;
pub mod random;
pub mod react;
pub mod state;

pub use auction::AuctionMatcher;
pub use cost::CostModel;
pub use engine::{MatchContext, MatcherEngine, MatcherRegistry, MatcherSpec};
pub use graph::{BipartiteGraph, EdgeId, GraphError, TaskIdx, WorkerIdx};
pub use greedy::GreedyMatcher;
pub use hopcroft_karp::HopcroftKarpMatcher;
pub use hungarian::HungarianMatcher;
pub use invariants::{InvariantViolation, MatchingValidator};
pub use matcher::{MatchStats, Matcher, Matching};
pub use metropolis::MetropolisMatcher;
pub use random::RandomMatcher;
pub use react::ReactMatcher;
pub use state::MatchingState;
