//! Incremental matching state `x ∈ {0,1}^{|E|}` with O(1) fitness
//! maintenance.
//!
//! The REACT and Metropolis matchers flip one edge per cycle; recomputing
//! `g(x) = Σ x_ij·w_ij` from scratch would cost `O(E)` per cycle. The
//! state therefore tracks, per vertex, which edge currently matches it,
//! and maintains the running fitness incrementally, exactly as the
//! paper's complexity analysis assumes (*"the algorithm computes the new
//! g(x′) that also costs O(1), by adding or subtracting the edge's
//! weight"*).

use crate::graph::{BipartiteGraph, EdgeId, TaskIdx, WorkerIdx};

/// A (partial) matching over a [`BipartiteGraph`], kept consistent with
/// the 1-to-1 constraints at all times.
#[derive(Debug, Clone)]
pub struct MatchingState {
    selected: Vec<bool>,
    worker_match: Vec<Option<EdgeId>>,
    task_match: Vec<Option<EdgeId>>,
    fitness: f64,
    size: usize,
}

impl MatchingState {
    /// The empty matching over `graph`.
    pub fn new(graph: &BipartiteGraph) -> Self {
        MatchingState {
            selected: vec![false; graph.n_edges()],
            worker_match: vec![None; graph.n_workers()],
            task_match: vec![None; graph.n_tasks()],
            fitness: 0.0,
            size: 0,
        }
    }

    /// Current fitness `g(x)` — the sum of selected edge weights.
    #[inline]
    pub fn fitness(&self) -> f64 {
        self.fitness
    }

    /// Number of selected edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when edge `e` is in the matching.
    #[inline]
    pub fn is_selected(&self, e: EdgeId) -> bool {
        self.selected[e.0 as usize]
    }

    /// The edge currently matching `worker`, if any.
    #[inline]
    pub fn worker_match(&self, worker: WorkerIdx) -> Option<EdgeId> {
        self.worker_match[worker.0 as usize]
    }

    /// The edge currently matching `task`, if any.
    #[inline]
    pub fn task_match(&self, task: TaskIdx) -> Option<EdgeId> {
        self.task_match[task.0 as usize]
    }

    /// The matched edges that conflict with selecting `e`: the edge (if
    /// any) occupying `e`'s worker and the edge (if any) occupying `e`'s
    /// task. Selecting an already-selected edge conflicts with nothing.
    pub fn conflicts(&self, graph: &BipartiteGraph, e: EdgeId) -> (Option<EdgeId>, Option<EdgeId>) {
        let edge = graph.edge(e);
        let w = self.worker_match[edge.worker.0 as usize].filter(|&m| m != e);
        let t = self.task_match[edge.task.0 as usize].filter(|&m| m != e);
        (w, t)
    }

    /// Adds edge `e` to the matching.
    ///
    /// # Panics
    /// Panics (via `debug_assert`) when `e` is already selected or either
    /// endpoint is occupied — callers must clear conflicts first, which
    /// keeps this operation `O(1)`.
    pub fn select(&mut self, graph: &BipartiteGraph, e: EdgeId) {
        debug_assert!(!self.selected[e.0 as usize], "edge already selected");
        let edge = graph.edge(e);
        debug_assert!(
            self.worker_match[edge.worker.0 as usize].is_none(),
            "worker endpoint occupied"
        );
        debug_assert!(
            self.task_match[edge.task.0 as usize].is_none(),
            "task endpoint occupied"
        );
        self.selected[e.0 as usize] = true;
        self.worker_match[edge.worker.0 as usize] = Some(e);
        self.task_match[edge.task.0 as usize] = Some(e);
        self.fitness += edge.weight;
        self.size += 1;
    }

    /// Removes edge `e` from the matching.
    ///
    /// # Panics
    /// `debug_assert`s that `e` is currently selected.
    pub fn deselect(&mut self, graph: &BipartiteGraph, e: EdgeId) {
        debug_assert!(self.selected[e.0 as usize], "edge not selected");
        let edge = graph.edge(e);
        self.selected[e.0 as usize] = false;
        self.worker_match[edge.worker.0 as usize] = None;
        self.task_match[edge.task.0 as usize] = None;
        self.fitness -= edge.weight;
        self.size -= 1;
    }

    /// The selected edges, in edge-id order.
    pub fn selected_edges(&self) -> Vec<EdgeId> {
        self.selected
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| EdgeId(i as u32))
            .collect()
    }

    /// Exhaustive consistency check for tests: verifies the selected set,
    /// per-vertex indices, fitness and size all agree, and that no two
    /// selected edges share a vertex. Returns the recomputed fitness.
    pub fn verify(&self, graph: &BipartiteGraph) -> f64 {
        let mut fitness = 0.0;
        let mut size = 0;
        let mut worker_seen = vec![false; graph.n_workers()];
        let mut task_seen = vec![false; graph.n_tasks()];
        for (i, &sel) in self.selected.iter().enumerate() {
            let id = EdgeId(i as u32);
            let edge = graph.edge(id);
            if sel {
                assert!(
                    !worker_seen[edge.worker.0 as usize],
                    "two selected edges share worker {}",
                    edge.worker.0
                );
                assert!(
                    !task_seen[edge.task.0 as usize],
                    "two selected edges share task {}",
                    edge.task.0
                );
                worker_seen[edge.worker.0 as usize] = true;
                task_seen[edge.task.0 as usize] = true;
                assert_eq!(self.worker_match[edge.worker.0 as usize], Some(id));
                assert_eq!(self.task_match[edge.task.0 as usize], Some(id));
                fitness += edge.weight;
                size += 1;
            }
        }
        assert_eq!(size, self.size, "size out of sync");
        assert!(
            (fitness - self.fitness).abs() < 1e-9 * (1.0 + fitness.abs()),
            "fitness out of sync: incremental {} vs recomputed {}",
            self.fitness,
            fitness
        );
        fitness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> BipartiteGraph {
        // 2 workers × 2 tasks, all four edges.
        BipartiteGraph::full(2, 2, |u, v| match (u.0, v.0) {
            (0, 0) => 0.9,
            (0, 1) => 0.2,
            (1, 0) => 0.4,
            (1, 1) => 0.8,
            _ => unreachable!(),
        })
        .unwrap()
    }

    #[test]
    fn select_deselect_roundtrip() {
        let g = diamond();
        let mut s = MatchingState::new(&g);
        let e = g.find_edge(WorkerIdx(0), TaskIdx(0)).unwrap();
        s.select(&g, e);
        assert!(s.is_selected(e));
        assert_eq!(s.size(), 1);
        assert!((s.fitness() - 0.9).abs() < 1e-12);
        assert_eq!(s.worker_match(WorkerIdx(0)), Some(e));
        assert_eq!(s.task_match(TaskIdx(0)), Some(e));
        s.verify(&g);
        s.deselect(&g, e);
        assert!(!s.is_selected(e));
        assert_eq!(s.size(), 0);
        assert!(s.fitness().abs() < 1e-12);
        s.verify(&g);
    }

    #[test]
    fn conflicts_detected_on_both_sides() {
        let g = diamond();
        let mut s = MatchingState::new(&g);
        let e00 = g.find_edge(WorkerIdx(0), TaskIdx(0)).unwrap();
        let e01 = g.find_edge(WorkerIdx(0), TaskIdx(1)).unwrap();
        let e10 = g.find_edge(WorkerIdx(1), TaskIdx(0)).unwrap();
        let e11 = g.find_edge(WorkerIdx(1), TaskIdx(1)).unwrap();
        s.select(&g, e00);
        // e01 shares worker 0.
        assert_eq!(s.conflicts(&g, e01), (Some(e00), None));
        // e10 shares task 0.
        assert_eq!(s.conflicts(&g, e10), (None, Some(e00)));
        // e11 shares nothing.
        assert_eq!(s.conflicts(&g, e11), (None, None));
        // A selected edge does not conflict with itself.
        assert_eq!(s.conflicts(&g, e00), (None, None));
    }

    #[test]
    fn full_matching_fitness() {
        let g = diamond();
        let mut s = MatchingState::new(&g);
        s.select(&g, g.find_edge(WorkerIdx(0), TaskIdx(0)).unwrap());
        s.select(&g, g.find_edge(WorkerIdx(1), TaskIdx(1)).unwrap());
        assert_eq!(s.size(), 2);
        assert!((s.fitness() - 1.7).abs() < 1e-12);
        assert_eq!(s.selected_edges().len(), 2);
        s.verify(&g);
    }

    #[test]
    #[should_panic(expected = "worker endpoint occupied")]
    #[cfg(debug_assertions)]
    fn select_conflicting_edge_panics() {
        let g = diamond();
        let mut s = MatchingState::new(&g);
        s.select(&g, g.find_edge(WorkerIdx(0), TaskIdx(0)).unwrap());
        s.select(&g, g.find_edge(WorkerIdx(0), TaskIdx(1)).unwrap());
    }

    #[test]
    fn verify_recomputes_fitness() {
        let g = diamond();
        let mut s = MatchingState::new(&g);
        s.select(&g, g.find_edge(WorkerIdx(1), TaskIdx(0)).unwrap());
        let f = s.verify(&g);
        assert!((f - 0.4).abs() < 1e-12);
    }
}
