//! The weighted bipartite assignment graph.
//!
//! Vertices are plain indices (`WorkerIdx` into `U`, `TaskIdx` into `V`);
//! the caller owns the mapping from indices to domain identifiers. Edges
//! are stored once in an arena with per-vertex adjacency lists, so random
//! edge selection (the inner loop of the REACT/Metropolis matchers) is
//! `O(1)` and neighbourhood scans (Greedy) are cache-friendly.

use std::fmt;

/// Index of a worker vertex (`u ∈ U`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerIdx(pub u32);

/// Index of a task vertex (`v ∈ V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskIdx(pub u32);

/// Index of an edge in the graph's edge arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub u32);

/// Errors from graph construction.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Vertex index out of range.
    VertexOutOfRange {
        /// Number of worker vertices in the graph.
        workers: usize,
        /// Number of task vertices in the graph.
        tasks: usize,
    },
    /// Weights must be finite and non-negative (the paper's weight
    /// function, worker accuracy, lies in `[0, 1]`).
    InvalidWeight(f64),
    /// The same (worker, task) pair was inserted twice.
    DuplicateEdge {
        /// The worker endpoint of the duplicate.
        worker: WorkerIdx,
        /// The task endpoint of the duplicate.
        task: TaskIdx,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { workers, tasks } => {
                write!(f, "vertex out of range (|U|={workers}, |V|={tasks})")
            }
            GraphError::InvalidWeight(w) => {
                write!(f, "edge weight must be finite and ≥ 0, got {w}")
            }
            GraphError::DuplicateEdge { worker, task } => {
                write!(f, "duplicate edge (worker {}, task {})", worker.0, task.0)
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Weights smaller than this are treated as zero by the flip rules: a
/// fitness change below `WEIGHT_EPSILON` is noise, not a real
/// deterioration to anneal over.
pub const WEIGHT_EPSILON: f64 = 1e-12;

/// True when `weight` is indistinguishable from zero for the purposes of
/// the accept/reject rules. Graph construction already rejects negative
/// and non-finite weights, so this is a one-sided check.
#[inline]
pub fn is_negligible_weight(weight: f64) -> bool {
    weight < WEIGHT_EPSILON
}

/// One feasible (worker, task) assignment with its weight
/// `w_ij = F(worker_i, task_j)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// The worker endpoint.
    pub worker: WorkerIdx,
    /// The task endpoint.
    pub task: TaskIdx,
    /// The assignment value; finite and non-negative.
    pub weight: f64,
}

/// A weighted bipartite graph `G = (U, V, E)`.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    n_workers: usize,
    n_tasks: usize,
    edges: Vec<Edge>,
    worker_adj: Vec<Vec<EdgeId>>,
    task_adj: Vec<Vec<EdgeId>>,
}

impl BipartiteGraph {
    /// Creates an empty graph with `n_workers` worker vertices and
    /// `n_tasks` task vertices.
    pub fn new(n_workers: usize, n_tasks: usize) -> Self {
        BipartiteGraph {
            n_workers,
            n_tasks,
            edges: Vec::new(),
            worker_adj: vec![Vec::new(); n_workers],
            task_adj: vec![Vec::new(); n_tasks],
        }
    }

    /// Re-dimensions the graph to `n_workers × n_tasks` and drops all
    /// edges while keeping the edge arena's and the surviving adjacency
    /// lists' allocations, so a scratch graph reused across scheduling
    /// batches stops allocating once it reaches steady-state size.
    pub fn reset(&mut self, n_workers: usize, n_tasks: usize) {
        self.edges.clear();
        self.worker_adj.truncate(n_workers);
        for adj in &mut self.worker_adj {
            adj.clear();
        }
        self.worker_adj.resize_with(n_workers, Vec::new);
        self.task_adj.truncate(n_tasks);
        for adj in &mut self.task_adj {
            adj.clear();
        }
        self.task_adj.resize_with(n_tasks, Vec::new);
        self.n_workers = n_workers;
        self.n_tasks = n_tasks;
    }

    /// Heap bytes currently reserved by the edge arena and adjacency
    /// lists — the capacity a [`BipartiteGraph::reset`]-based reuse cycle
    /// retains instead of reallocating.
    pub fn allocated_bytes(&self) -> usize {
        use std::mem::size_of;
        self.edges.capacity() * size_of::<Edge>()
            + self.worker_adj.capacity() * size_of::<Vec<EdgeId>>()
            + self.task_adj.capacity() * size_of::<Vec<EdgeId>>()
            + self
                .worker_adj
                .iter()
                .chain(self.task_adj.iter())
                .map(|adj| adj.capacity() * size_of::<EdgeId>())
                .sum::<usize>()
    }

    /// Builds the *complete* bipartite graph with weights produced by
    /// `weight(worker, task)` — the paper's Fig. 3/4 worst case where
    /// every task is connected to every worker.
    pub fn full(
        n_workers: usize,
        n_tasks: usize,
        mut weight: impl FnMut(WorkerIdx, TaskIdx) -> f64,
    ) -> Result<Self, GraphError> {
        let mut g = BipartiteGraph::new(n_workers, n_tasks);
        g.edges.reserve(n_workers * n_tasks);
        // The nested loop cannot produce duplicates, so the edges are
        // inserted directly — `add_edge`'s O(deg) duplicate scan would
        // make large full graphs quadratic in the vertex degree.
        for u in 0..n_workers {
            g.worker_adj[u].reserve(n_tasks);
            for v in 0..n_tasks {
                let (u, v) = (WorkerIdx(u as u32), TaskIdx(v as u32));
                let w = weight(u, v);
                if !w.is_finite() || w < 0.0 {
                    return Err(GraphError::InvalidWeight(w));
                }
                let id = EdgeId(g.edges.len() as u32);
                g.edges.push(Edge {
                    worker: u,
                    task: v,
                    weight: w,
                });
                g.worker_adj[u.0 as usize].push(id);
                g.task_adj[v.0 as usize].push(id);
            }
        }
        Ok(g)
    }

    /// Number of worker vertices `|U|`.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of task vertices `|V|`.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Number of edges `|E|`.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Adds the edge `(worker, task)` with the given weight.
    ///
    /// Rejects out-of-range vertices, non-finite or negative weights and
    /// duplicate pairs (duplicate detection is `O(deg)`; graph
    /// construction is far from the hot path).
    pub fn add_edge(
        &mut self,
        worker: WorkerIdx,
        task: TaskIdx,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        if worker.0 as usize >= self.n_workers || task.0 as usize >= self.n_tasks {
            return Err(GraphError::VertexOutOfRange {
                workers: self.n_workers,
                tasks: self.n_tasks,
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight(weight));
        }
        if self.worker_adj[worker.0 as usize]
            .iter()
            .any(|&e| self.edges[e.0 as usize].task == task)
        {
            return Err(GraphError::DuplicateEdge { worker, task });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            worker,
            task,
            weight,
        });
        self.worker_adj[worker.0 as usize].push(id);
        self.task_adj[task.0 as usize].push(id);
        Ok(id)
    }

    /// Adds the edge `(worker, task)` assuming the caller guarantees the
    /// pair is fresh — the scheduler's nested worker×task loops cannot
    /// produce duplicates, and the O(deg) duplicate scan of
    /// [`BipartiteGraph::add_edge`] would make batch construction
    /// quadratic. Vertex-range and weight validation still apply;
    /// duplicates are only caught by a `debug_assert`.
    pub fn add_edge_unchecked(
        &mut self,
        worker: WorkerIdx,
        task: TaskIdx,
        weight: f64,
    ) -> Result<EdgeId, GraphError> {
        if worker.0 as usize >= self.n_workers || task.0 as usize >= self.n_tasks {
            return Err(GraphError::VertexOutOfRange {
                workers: self.n_workers,
                tasks: self.n_tasks,
            });
        }
        if !weight.is_finite() || weight < 0.0 {
            return Err(GraphError::InvalidWeight(weight));
        }
        debug_assert!(
            self.find_edge(worker, task).is_none(),
            "duplicate edge ({}, {})",
            worker.0,
            task.0
        );
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            worker,
            task,
            weight,
        });
        self.worker_adj[worker.0 as usize].push(id);
        self.task_adj[task.0 as usize].push(id);
        Ok(id)
    }

    /// The edge with the given id.
    ///
    /// # Panics
    /// Panics on an out-of-range id; edge ids are only produced by this
    /// graph, so that is a caller logic error.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0 as usize]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge ids incident to `worker`.
    pub fn worker_edges(&self, worker: WorkerIdx) -> &[EdgeId] {
        &self.worker_adj[worker.0 as usize]
    }

    /// Edge ids incident to `task`.
    pub fn task_edges(&self, task: TaskIdx) -> &[EdgeId] {
        &self.task_adj[task.0 as usize]
    }

    /// The id of the `(worker, task)` edge, if present.
    pub fn find_edge(&self, worker: WorkerIdx, task: TaskIdx) -> Option<EdgeId> {
        self.worker_adj
            .get(worker.0 as usize)?
            .iter()
            .copied()
            .find(|&e| self.edges[e.0 as usize].task == task)
    }

    /// Sum of all edge weights (an upper bound on any matching weight).
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// The largest possible matching size: `min(|U|, |V|)`.
    pub fn max_matching_size(&self) -> usize {
        self.n_workers.min(self.n_tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 2);
        assert_eq!(g.n_workers(), 3);
        assert_eq!(g.n_tasks(), 2);
        assert_eq!(g.n_edges(), 0);
        assert!(g.is_empty());
        assert_eq!(g.max_matching_size(), 2);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = BipartiteGraph::new(2, 2);
        let e0 = g.add_edge(WorkerIdx(0), TaskIdx(0), 0.5).unwrap();
        let e1 = g.add_edge(WorkerIdx(0), TaskIdx(1), 0.9).unwrap();
        let e2 = g.add_edge(WorkerIdx(1), TaskIdx(0), 0.1).unwrap();
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.edge(e1).weight, 0.9);
        assert_eq!(g.worker_edges(WorkerIdx(0)), &[e0, e1]);
        assert_eq!(g.task_edges(TaskIdx(0)), &[e0, e2]);
        assert_eq!(g.find_edge(WorkerIdx(1), TaskIdx(0)), Some(e2));
        assert_eq!(g.find_edge(WorkerIdx(1), TaskIdx(1)), None);
        assert!((g.total_weight() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = BipartiteGraph::new(1, 1);
        assert!(matches!(
            g.add_edge(WorkerIdx(1), TaskIdx(0), 0.5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            g.add_edge(WorkerIdx(0), TaskIdx(9), 0.5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_invalid_weight() {
        let mut g = BipartiteGraph::new(1, 1);
        assert!(matches!(
            g.add_edge(WorkerIdx(0), TaskIdx(0), f64::NAN),
            Err(GraphError::InvalidWeight(_))
        ));
        assert!(matches!(
            g.add_edge(WorkerIdx(0), TaskIdx(0), -0.1),
            Err(GraphError::InvalidWeight(_))
        ));
        assert!(matches!(
            g.add_edge(WorkerIdx(0), TaskIdx(0), f64::INFINITY),
            Err(GraphError::InvalidWeight(_))
        ));
        // Zero weight is allowed (a known-bad worker still is an option).
        assert!(g.add_edge(WorkerIdx(0), TaskIdx(0), 0.0).is_ok());
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.5).unwrap();
        assert!(matches!(
            g.add_edge(WorkerIdx(0), TaskIdx(0), 0.7),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }

    #[test]
    fn full_graph_has_all_edges() {
        let g = BipartiteGraph::full(3, 4, |u, v| (u.0 + v.0) as f64 / 10.0).unwrap();
        assert_eq!(g.n_edges(), 12);
        for u in 0..3 {
            assert_eq!(g.worker_edges(WorkerIdx(u)).len(), 4);
        }
        for v in 0..4 {
            assert_eq!(g.task_edges(TaskIdx(v)).len(), 3);
        }
        let e = g.find_edge(WorkerIdx(2), TaskIdx(3)).unwrap();
        assert!((g.edge(e).weight - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_redimensions_and_keeps_capacity() {
        let mut g = BipartiteGraph::full(4, 5, |u, v| (u.0 + v.0) as f64 / 10.0).unwrap();
        let bytes_before = g.allocated_bytes();
        assert!(bytes_before > 0);
        g.reset(3, 2);
        assert_eq!(g.n_workers(), 3);
        assert_eq!(g.n_tasks(), 2);
        assert_eq!(g.n_edges(), 0);
        assert!(g.worker_edges(WorkerIdx(2)).is_empty());
        assert!(g.task_edges(TaskIdx(1)).is_empty());
        // The edge arena's capacity survives the reset.
        assert!(g.allocated_bytes() > 0);
        // The reset graph behaves like a freshly constructed one.
        let e = g.add_edge(WorkerIdx(2), TaskIdx(1), 0.5).unwrap();
        assert_eq!(g.find_edge(WorkerIdx(2), TaskIdx(1)), Some(e));
        assert!(matches!(
            g.add_edge(WorkerIdx(3), TaskIdx(0), 0.5),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        // Growing back re-dimensions correctly too.
        g.reset(6, 6);
        assert_eq!(g.n_workers(), 6);
        assert!(g.add_edge(WorkerIdx(5), TaskIdx(5), 0.1).is_ok());
    }

    #[test]
    fn error_display() {
        let e = GraphError::InvalidWeight(-1.0);
        assert!(e.to_string().contains("weight"));
        let e = GraphError::DuplicateEdge {
            worker: WorkerIdx(1),
            task: TaskIdx(2),
        };
        assert!(e.to_string().contains("duplicate"));
    }
}
