//! The [`Matcher`] trait and the [`Matching`] result type.

use crate::graph::{BipartiteGraph, TaskIdx, WorkerIdx};
use rand::RngCore;

/// Work counters reported by a matcher run, consumed by the
/// observability layer (matcher cycle/flip telemetry).
///
/// The local-search matchers ([`crate::ReactMatcher`],
/// [`crate::MetropolisMatcher`]) fill every field; direct-construction
/// algorithms (greedy, Hungarian, …) leave the default zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Local-search cycles executed.
    pub cycles: u64,
    /// Flips that changed the matching state.
    pub flips_accepted: u64,
    /// Flips attempted but rejected (annealing loss or losing conflict).
    pub flips_rejected: u64,
    /// Conflicting selections that displaced incumbent edges.
    pub conflicts_resolved: u64,
}

/// The result of running a matching algorithm over a bipartite graph.
#[derive(Debug, Clone, Default)]
pub struct Matching {
    /// The selected `(worker, task, weight)` assignments; no worker or
    /// task appears twice.
    pub pairs: Vec<(WorkerIdx, TaskIdx, f64)>,
    /// The achieved objective `Σ w_ij·x_ij`.
    pub total_weight: f64,
    /// Abstract compute cost of the run, fed to the calibrated
    /// [`crate::cost::CostModel`] to charge simulated scheduler time.
    pub cost_units: f64,
    /// Work counters from the run (zeros for matchers that don't
    /// local-search).
    pub stats: MatchStats,
}

impl Matching {
    /// Builds a matching result from pairs, computing the total weight.
    pub fn from_pairs(pairs: Vec<(WorkerIdx, TaskIdx, f64)>, cost_units: f64) -> Self {
        let total_weight = pairs.iter().map(|p| p.2).sum();
        Matching {
            pairs,
            total_weight,
            cost_units,
            stats: MatchStats::default(),
        }
    }

    /// Attaches work counters to the result.
    pub fn with_stats(mut self, stats: MatchStats) -> Self {
        self.stats = stats;
        self
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair was matched.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The task assigned to `worker`, if any (linear scan; results are
    /// small relative to the graphs that produced them).
    pub fn task_of(&self, worker: WorkerIdx) -> Option<TaskIdx> {
        self.pairs
            .iter()
            .find(|(w, _, _)| *w == worker)
            .map(|&(_, t, _)| t)
    }

    /// The worker assigned to `task`, if any.
    pub fn worker_of(&self, task: TaskIdx) -> Option<WorkerIdx> {
        self.pairs
            .iter()
            .find(|(_, t, _)| *t == task)
            .map(|&(w, _, _)| w)
    }

    /// Asserts the 1-to-1 constraints and that every pair is a real edge
    /// of `graph` with the recorded weight. For tests.
    pub fn verify(&self, graph: &BipartiteGraph) {
        let mut workers = std::collections::HashSet::new();
        let mut tasks = std::collections::HashSet::new();
        let mut total = 0.0;
        for &(w, t, weight) in &self.pairs {
            assert!(workers.insert(w), "worker {} matched twice", w.0);
            assert!(tasks.insert(t), "task {} matched twice", t.0);
            let e = graph
                .find_edge(w, t)
                .unwrap_or_else(|| panic!("pair ({}, {}) is not an edge", w.0, t.0));
            assert!(
                (graph.edge(e).weight - weight).abs() < 1e-12,
                "recorded weight differs from edge weight"
            );
            total += weight;
        }
        assert!(
            (total - self.total_weight).abs() < 1e-9 * (1.0 + total.abs()),
            "total weight out of sync"
        );
    }
}

/// A weighted-bipartite-matching algorithm.
///
/// Implementations must be deterministic given the same graph and RNG
/// stream, which is what makes the simulation experiments reproducible.
/// `Send` is a supertrait so a server owning a boxed matcher can be
/// moved across scoped threads (the cluster layer ticks shard servers
/// in parallel); matchers are plain data, so this costs nothing.
pub trait Matcher: Send {
    /// Computes a matching over `graph`. Deterministic algorithms ignore
    /// `rng`.
    fn assign(&self, graph: &BipartiteGraph, rng: &mut dyn RngCore) -> Matching;

    /// Short human-readable name for experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_computes_weight() {
        let m = Matching::from_pairs(
            vec![
                (WorkerIdx(0), TaskIdx(1), 0.5),
                (WorkerIdx(1), TaskIdx(0), 0.25),
            ],
            10.0,
        );
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!((m.total_weight - 0.75).abs() < 1e-12);
        assert_eq!(m.cost_units, 10.0);
        assert_eq!(m.stats, MatchStats::default());
        let m = m.with_stats(MatchStats {
            cycles: 5,
            flips_accepted: 3,
            flips_rejected: 2,
            conflicts_resolved: 1,
        });
        assert_eq!(m.stats.cycles, 5);
        assert_eq!(m.task_of(WorkerIdx(0)), Some(TaskIdx(1)));
        assert_eq!(m.task_of(WorkerIdx(9)), None);
        assert_eq!(m.worker_of(TaskIdx(0)), Some(WorkerIdx(1)));
        assert_eq!(m.worker_of(TaskIdx(9)), None);
    }

    #[test]
    fn verify_accepts_valid_matching() {
        let g = BipartiteGraph::full(2, 2, |u, v| (u.0 * 2 + v.0) as f64).unwrap();
        let m = Matching::from_pairs(
            vec![
                (WorkerIdx(0), TaskIdx(0), 0.0),
                (WorkerIdx(1), TaskIdx(1), 3.0),
            ],
            0.0,
        );
        m.verify(&g);
    }

    #[test]
    #[should_panic(expected = "matched twice")]
    fn verify_rejects_duplicate_worker() {
        let g = BipartiteGraph::full(2, 2, |_, _| 1.0).unwrap();
        let m = Matching::from_pairs(
            vec![
                (WorkerIdx(0), TaskIdx(0), 1.0),
                (WorkerIdx(0), TaskIdx(1), 1.0),
            ],
            0.0,
        );
        m.verify(&g);
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn verify_rejects_phantom_edge() {
        let g = BipartiteGraph::new(2, 2);
        let m = Matching::from_pairs(vec![(WorkerIdx(0), TaskIdx(0), 1.0)], 0.0);
        m.verify(&g);
    }
}
