//! The Metropolis matching baseline (Shih 2008).
//!
//! Identical random walk to [`crate::ReactMatcher`] — pick a random edge,
//! flip it, accept improvements, accept deteriorations with probability
//! `e^{Δg/K}` — but **without** REACT's conflict-resolution rule. The
//! paper's stated difference: *"a major difference among our algorithm
//! and the Metropolis is that they do not consider the case for
//! g(x′) = 0 at all"*. A flip that would violate the matching constraints
//! drives the fitness to zero, i.e. `Δg = −g(x)`, and is therefore
//! accepted only with the (vanishing) probability `e^{−g(x)/K}`; in that
//! rare acceptance the conflicting old edges are dropped so the state
//! stays a valid matching.
//!
//! Consequence: once a vertex is matched, conflicting cycles are almost
//! always wasted — the walk cannot *upgrade* an edge the way REACT does,
//! which is exactly why Fig. 4 shows REACT producing higher weight at the
//! same (or a third of the) cycle budget.

use crate::graph::{is_negligible_weight, BipartiteGraph, EdgeId};
use crate::invariants::{debug_check_matching, debug_check_state};
use crate::matcher::{MatchStats, Matcher, Matching};
use crate::state::MatchingState;
use rand::{Rng, RngCore};

/// Configuration and implementation of the Metropolis WBGM baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetropolisMatcher {
    /// Number of flip cycles.
    pub cycles: usize,
    /// Annealing constant `K` (same role as in [`crate::ReactMatcher`]).
    pub k: f64,
}

impl Default for MetropolisMatcher {
    fn default() -> Self {
        MetropolisMatcher {
            cycles: 1000,
            k: 0.05,
        }
    }
}

impl MetropolisMatcher {
    /// Creates a matcher with the given cycle budget and default `K`.
    pub fn with_cycles(cycles: usize) -> Self {
        MetropolisMatcher {
            cycles,
            ..Default::default()
        }
    }

    /// Runs the walk and returns the final state.
    pub fn run_state(&self, graph: &BipartiteGraph, rng: &mut dyn RngCore) -> MatchingState {
        self.run_state_stats(graph, rng).0
    }

    /// Runs the walk and returns the final state together with the work
    /// counters for the observability layer. Counting happens strictly
    /// after each flip decision, so the RNG draw sequence is exactly the
    /// historical one.
    pub fn run_state_stats(
        &self,
        graph: &BipartiteGraph,
        rng: &mut dyn RngCore,
    ) -> (MatchingState, MatchStats) {
        let mut state = MatchingState::new(graph);
        let mut stats = MatchStats::default();
        let n_edges = graph.n_edges();
        if n_edges == 0 {
            return (state, stats);
        }
        for _ in 0..self.cycles {
            stats.cycles += 1;
            let e = EdgeId(rng.gen_range(0..n_edges as u32));
            let weight = graph.edge(e).weight;
            if state.is_selected(e) {
                // Δg = −w. Same negligible-weight short-circuit as REACT
                // (see `ReactMatcher::flip`): a free move is accepted
                // before any RNG draw, keeping runs bit-identical to the
                // old exact-zero comparison on real scheduler weights.
                if is_negligible_weight(weight) || self.accept_worse(-weight, rng) {
                    state.deselect(graph, e);
                    stats.flips_accepted += 1;
                } else {
                    stats.flips_rejected += 1;
                }
                continue;
            }
            match state.conflicts(graph, e) {
                (None, None) => {
                    state.select(graph, e);
                    stats.flips_accepted += 1;
                }
                (cw, ct) => {
                    // g(x′) = 0 → Δg = −g(x). No special handling: treat
                    // it as an ordinary downhill move.
                    if self.accept_worse(-state.fitness(), rng) {
                        if let Some(c) = cw {
                            state.deselect(graph, c);
                        }
                        if let Some(c) = ct {
                            state.deselect(graph, c);
                        }
                        state.select(graph, e);
                        stats.flips_accepted += 1;
                        stats.conflicts_resolved += 1;
                    } else {
                        stats.flips_rejected += 1;
                    }
                }
            }
            debug_check_state("metropolis", graph, &state);
        }
        (state, stats)
    }

    fn accept_worse(&self, delta: f64, rng: &mut dyn RngCore) -> bool {
        let alpha: f64 = rng.gen();
        alpha <= (delta / self.k).exp()
    }
}

impl Matcher for MetropolisMatcher {
    fn assign(&self, graph: &BipartiteGraph, rng: &mut dyn RngCore) -> Matching {
        let (state, stats) = self.run_state_stats(graph, rng);
        let pairs = state
            .selected_edges()
            .into_iter()
            .map(|e| {
                let edge = graph.edge(e);
                (edge.worker, edge.task, edge.weight)
            })
            .collect();
        // Same cost law as REACT: the paper measured near-identical
        // running times for the two at equal cycles.
        let cost = self.cycles as f64 * graph.n_edges() as f64;
        let m = Matching::from_pairs(pairs, cost).with_stats(stats);
        debug_check_matching("metropolis", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "metropolis"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{TaskIdx, WorkerIdx};
    use crate::react::ReactMatcher;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(17)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        let m = MetropolisMatcher::default().assign(&g, &mut rng());
        assert!(m.is_empty());
    }

    #[test]
    fn produces_valid_matching() {
        let g =
            BipartiteGraph::full(25, 25, |u, v| ((u.0 * 7 + v.0 * 13) % 50) as f64 / 50.0).unwrap();
        let m = MetropolisMatcher::default().assign(&g, &mut rng());
        m.verify(&g);
        assert!(!m.is_empty());
    }

    #[test]
    fn fills_conflict_free_graph() {
        // A perfect-matching-friendly graph (diagonal only) gets fully
        // matched with enough cycles: no conflicts ever arise.
        let mut g = BipartiteGraph::new(10, 10);
        for i in 0..10 {
            g.add_edge(WorkerIdx(i), TaskIdx(i), 1.0).unwrap();
        }
        let m = MetropolisMatcher::with_cycles(2_000).assign(&g, &mut rng());
        assert_eq!(m.len(), 10);
        assert!((m.total_weight - 10.0).abs() < 1e-9);
    }

    #[test]
    fn react_beats_metropolis_at_equal_cycles() {
        // The paper's Fig. 4 headline: REACT yields higher output than
        // Metropolis for the same cycle budget on contended graphs.
        // Average over several seeds to keep the test robust.
        let g = BipartiteGraph::full(40, 40, |u, v| {
            (((u.0 as u64 * 48271 + v.0 as u64 * 16807) % 997) as f64) / 997.0
        })
        .unwrap();
        let cycles = 400; // scarce budget → contention matters
        let (mut react_total, mut metro_total) = (0.0, 0.0);
        for seed in 0..10 {
            react_total += ReactMatcher::with_cycles(cycles)
                .assign(&g, &mut SmallRng::seed_from_u64(seed))
                .total_weight;
            metro_total += MetropolisMatcher::with_cycles(cycles)
                .assign(&g, &mut SmallRng::seed_from_u64(1000 + seed))
                .total_weight;
        }
        assert!(
            react_total > metro_total,
            "REACT ({react_total:.2}) should beat Metropolis ({metro_total:.2})"
        );
    }

    #[test]
    fn cannot_upgrade_contended_edge_cheaply() {
        // Two workers, one task: whichever edge is selected first tends to
        // stay. Metropolis's expected weight must be visibly below the
        // 0.9 optimum (REACT reaches it a.s.), demonstrating the missing
        // g(x')=0 rule.
        let mut g = BipartiteGraph::new(2, 1);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.2).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 0.9).unwrap();
        let mut picked_light = 0;
        for seed in 0..200 {
            let m =
                MetropolisMatcher::with_cycles(50).assign(&g, &mut SmallRng::seed_from_u64(seed));
            if m.len() == 1 && m.pairs[0].0 == WorkerIdx(0) {
                picked_light += 1;
            }
        }
        assert!(
            picked_light > 20,
            "Metropolis ended on the light edge only {picked_light}/200 times — \
             conflict handling looks too strong for a baseline"
        );
    }

    #[test]
    fn state_stays_consistent() {
        let g = BipartiteGraph::full(12, 18, |u, v| ((u.0 + 2 * v.0) % 9) as f64 / 9.0).unwrap();
        let state = MetropolisMatcher::with_cycles(3_000).run_state(&g, &mut rng());
        state.verify(&g);
    }

    #[test]
    fn cost_units_match_react_law() {
        let g = BipartiteGraph::full(10, 10, |_, _| 0.5).unwrap();
        let m = MetropolisMatcher::with_cycles(50).assign(&g, &mut rng());
        assert_eq!(m.cost_units, 50.0 * 100.0);
        assert_eq!(MetropolisMatcher::default().name(), "metropolis");
    }

    #[test]
    fn stats_account_for_every_cycle() {
        let g =
            BipartiteGraph::full(25, 25, |u, v| ((u.0 * 7 + v.0 * 13) % 50) as f64 / 50.0).unwrap();
        let m = MetropolisMatcher::with_cycles(300).assign(&g, &mut rng());
        assert_eq!(m.stats.cycles, 300);
        assert_eq!(m.stats.flips_accepted + m.stats.flips_rejected, 300);
        assert!(m.stats.flips_accepted > 0);
    }
}
