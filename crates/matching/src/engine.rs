//! The matching engine: policy descriptors, matcher reuse and a named
//! registry.
//!
//! Earlier revisions dispatched from the middleware configuration
//! straight to concrete matcher constructors and re-`Box`ed a fresh
//! matcher for every batch. This module moves that dispatch down into
//! the matching layer, where it belongs:
//!
//! * [`MatcherSpec`] — a plain-data descriptor of *which* algorithm to
//!   run and with what parameters (the matching-layer mirror of the
//!   middleware's `MatcherPolicy`);
//! * [`MatcherEngine`] — builds the matcher once and reuses it across
//!   batches, rebuilding only when the spec's edge-count-dependent
//!   cycle budget actually changes (only the adaptive spec's does);
//! * [`MatchContext`] — what one assignment pass needs from the caller:
//!   the RNG stream and the edge budget of the graph at hand;
//! * [`MatcherRegistry`] — an object-safe name → constructor table, so
//!   embedders can resolve matchers by string (experiment CLIs, config
//!   files) and register their own implementations next to the
//!   built-ins.
//!
//! All shipped matchers are stateless (`assign` takes `&self`), so
//! reusing a built matcher is behaviourally identical to rebuilding it —
//! the engine is pure memoisation and never changes results.

use crate::auction::AuctionMatcher;
use crate::graph::BipartiteGraph;
use crate::greedy::GreedyMatcher;
use crate::hopcroft_karp::HopcroftKarpMatcher;
use crate::hungarian::HungarianMatcher;
use crate::matcher::{Matcher, Matching};
use crate::metropolis::MetropolisMatcher;
use crate::random::RandomMatcher;
use crate::react::ReactMatcher;
use rand::RngCore;
use react_obs::{null_observer, CounterKind, ObserverHandle, SpanKind, SpanTimer};

/// Everything one assignment pass needs from its caller.
pub struct MatchContext<'a> {
    /// Randomness for the randomized matchers (deterministic algorithms
    /// ignore it).
    pub rng: &'a mut dyn RngCore,
    /// Edge count of the graph about to be matched; sizes adaptive
    /// cycle budgets.
    pub edge_budget: usize,
}

impl<'a> MatchContext<'a> {
    /// Creates a context for a graph with `edge_budget` edges.
    pub fn new(rng: &'a mut dyn RngCore, edge_budget: usize) -> Self {
        MatchContext { rng, edge_budget }
    }
}

/// A plain-data descriptor of a matching algorithm and its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MatcherSpec {
    /// The paper's Algorithm 1 with a fixed cycle budget.
    React {
        /// Flip cycles per batch (paper: 1000).
        cycles: usize,
    },
    /// Algorithm 1 with the adaptive cycle count `c = ⌈κ·|E|⌉`.
    ReactAdaptive {
        /// Cycles per edge.
        kappa: f64,
    },
    /// The Metropolis baseline at a fixed cycle budget.
    Metropolis {
        /// Flip cycles per batch.
        cycles: usize,
    },
    /// The `O(V·E)` greedy baseline.
    Greedy,
    /// AMT-style uniform random assignment.
    Traditional,
    /// Exact Hungarian optimum (offline reference).
    Hungarian,
    /// ε-auction extension.
    Auction,
    /// Maximum-cardinality extension (Hopcroft–Karp).
    MaxCardinality,
}

impl MatcherSpec {
    /// Instantiates the matcher. `edge_budget` sizes the adaptive
    /// spec's cycle count; all other specs ignore it.
    pub fn build(&self, edge_budget: usize) -> Box<dyn Matcher> {
        match *self {
            MatcherSpec::React { cycles } => Box::new(ReactMatcher::with_cycles(cycles)),
            MatcherSpec::ReactAdaptive { kappa } => Box::new(ReactMatcher::with_cycles(
                ((edge_budget as f64 * kappa).ceil() as usize).max(1),
            )),
            MatcherSpec::Metropolis { cycles } => Box::new(MetropolisMatcher::with_cycles(cycles)),
            MatcherSpec::Greedy => Box::new(GreedyMatcher),
            MatcherSpec::Traditional => Box::new(RandomMatcher),
            MatcherSpec::Hungarian => Box::new(HungarianMatcher),
            MatcherSpec::Auction => Box::new(AuctionMatcher::default()),
            MatcherSpec::MaxCardinality => Box::new(HopcroftKarpMatcher),
        }
    }

    /// The cycle budget a matcher built for `edge_budget` edges would
    /// run with, when the spec is cycle-bounded. A built matcher stays
    /// valid exactly while this value is unchanged — which for every
    /// spec except [`MatcherSpec::ReactAdaptive`] is forever.
    pub fn cycle_budget(&self, edge_budget: usize) -> Option<usize> {
        match *self {
            MatcherSpec::React { cycles } | MatcherSpec::Metropolis { cycles } => Some(cycles),
            MatcherSpec::ReactAdaptive { kappa } => {
                Some(((edge_budget as f64 * kappa).ceil() as usize).max(1))
            }
            _ => None,
        }
    }

    /// Stable name for reports (matches the built [`Matcher::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            MatcherSpec::React { .. } | MatcherSpec::ReactAdaptive { .. } => "react",
            MatcherSpec::Metropolis { .. } => "metropolis",
            MatcherSpec::Greedy => "greedy",
            MatcherSpec::Traditional => "traditional",
            MatcherSpec::Hungarian => "hungarian",
            MatcherSpec::Auction => "auction",
            MatcherSpec::MaxCardinality => "hopcroft-karp",
        }
    }
}

/// Builds a spec's matcher once and reuses it batch after batch.
///
/// The engine rebuilds only when [`MatcherSpec::cycle_budget`] changes
/// for the edge budget at hand — i.e. never, except for the adaptive
/// spec when the graph's edge count moves its `⌈κ·|E|⌉` budget.
pub struct MatcherEngine {
    spec: MatcherSpec,
    built: Option<(Option<usize>, Box<dyn Matcher>)>,
    rebuilds: u64,
    observer: ObserverHandle,
}

impl MatcherEngine {
    /// Creates an engine for the spec; nothing is built until the first
    /// [`MatcherEngine::matcher`] or [`MatcherEngine::assign`] call.
    /// Telemetry goes to the null observer until
    /// [`MatcherEngine::set_observer`] is called.
    pub fn new(spec: MatcherSpec) -> Self {
        MatcherEngine {
            spec,
            built: None,
            rebuilds: 0,
            observer: null_observer(),
        }
    }

    /// Routes this engine's telemetry (assign spans, cycle/flip/rebuild
    /// counters) to `observer`. Observers are write-only sinks and never
    /// influence matching results.
    pub fn set_observer(&mut self, observer: ObserverHandle) {
        self.observer = observer;
    }

    /// Builder-style variant of [`MatcherEngine::set_observer`].
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.set_observer(observer);
        self
    }

    /// The spec this engine runs.
    pub fn spec(&self) -> MatcherSpec {
        self.spec
    }

    /// Stable algorithm name for reports.
    pub fn name(&self) -> &'static str {
        self.spec.name()
    }

    /// How many times a matcher has been constructed — 1 after any
    /// number of same-budget batches; grows only under the adaptive
    /// spec as graphs change size.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// The matcher for a graph with `edge_budget` edges, building or
    /// rebuilding only when required.
    pub fn matcher(&mut self, edge_budget: usize) -> &dyn Matcher {
        let budget = self.spec.cycle_budget(edge_budget);
        let stale = match &self.built {
            Some((built_for, _)) => *built_for != budget,
            None => true,
        };
        if stale {
            self.built = Some((budget, self.spec.build(edge_budget)));
            self.rebuilds += 1;
        }
        self.built
            .as_ref()
            .map(|(_, m)| m.as_ref())
            .expect("just built")
    }

    /// Runs one assignment pass over `graph` under `ctx`.
    pub fn assign(&mut self, graph: &BipartiteGraph, ctx: &mut MatchContext<'_>) -> Matching {
        let enabled = self.observer.enabled();
        let timer = enabled.then(SpanTimer::start);
        let rebuilds_before = self.rebuilds;
        let m = self.matcher(ctx.edge_budget).assign(graph, ctx.rng);
        // Engine-level safety net: also covers matchers registered by
        // embedders, which the per-algorithm hooks cannot see.
        crate::invariants::debug_check_matching(self.name(), graph, &m);
        if enabled {
            if let Some(timer) = timer {
                timer.finish(self.observer.as_ref(), SpanKind::MatcherAssign);
            }
            let obs = self.observer.as_ref();
            obs.incr(CounterKind::MatcherCycles, m.stats.cycles);
            obs.incr(CounterKind::FlipsAccepted, m.stats.flips_accepted);
            obs.incr(CounterKind::FlipsRejected, m.stats.flips_rejected);
            obs.incr(CounterKind::ConflictsResolved, m.stats.conflicts_resolved);
            let rebuilt = self.rebuilds - rebuilds_before;
            if rebuilt > 0 {
                obs.incr(CounterKind::MatcherRebuilds, rebuilt);
            }
        }
        m
    }
}

impl std::fmt::Debug for MatcherEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatcherEngine")
            .field("spec", &self.spec)
            .field("built", &self.built.as_ref().map(|(budget, _)| *budget))
            .field("rebuilds", &self.rebuilds)
            .finish()
    }
}

impl Clone for MatcherEngine {
    /// Clones the spec and observer handle; the built matcher is
    /// memoisation and is rebuilt lazily by the clone (all matchers are
    /// stateless, so this cannot change behaviour).
    fn clone(&self) -> Self {
        MatcherEngine::new(self.spec).with_observer(self.observer.clone())
    }
}

/// A named matcher constructor: `edge_budget` in, built matcher out.
pub type MatcherBuilder = Box<dyn Fn(usize) -> Box<dyn Matcher> + Send + Sync>;

/// An object-safe name → constructor table.
///
/// Lookup is last-registration-wins, so embedders can shadow a built-in
/// under the same name.
#[derive(Default)]
pub struct MatcherRegistry {
    entries: Vec<(String, MatcherBuilder)>,
}

impl MatcherRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with every shipped algorithm family under
    /// its canonical name, at the paper's default parameters where the
    /// algorithm takes any.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register_spec("react", MatcherSpec::React { cycles: 1000 });
        r.register_spec("react-adaptive", MatcherSpec::ReactAdaptive { kappa: 1.0 });
        r.register_spec("metropolis", MatcherSpec::Metropolis { cycles: 1000 });
        r.register_spec("greedy", MatcherSpec::Greedy);
        r.register_spec("traditional", MatcherSpec::Traditional);
        r.register_spec("hungarian", MatcherSpec::Hungarian);
        r.register_spec("auction", MatcherSpec::Auction);
        r.register_spec("hopcroft-karp", MatcherSpec::MaxCardinality);
        r
    }

    /// Registers a constructor under `name`.
    pub fn register(&mut self, name: impl Into<String>, builder: MatcherBuilder) {
        self.entries.push((name.into(), builder));
    }

    /// Registers a [`MatcherSpec`] under `name`.
    pub fn register_spec(&mut self, name: impl Into<String>, spec: MatcherSpec) {
        self.register(name, Box::new(move |edge_budget| spec.build(edge_budget)));
    }

    /// Builds the matcher registered under `name` for a graph with
    /// `edge_budget` edges, or `None` for an unknown name.
    pub fn build(&self, name: &str, edge_budget: usize) -> Option<Box<dyn Matcher>> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b(edge_budget))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }

    /// Registered names, in registration order (duplicates included).
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl std::fmt::Debug for MatcherRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatcherRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn all_specs() -> Vec<MatcherSpec> {
        vec![
            MatcherSpec::React { cycles: 50 },
            MatcherSpec::ReactAdaptive { kappa: 0.5 },
            MatcherSpec::Metropolis { cycles: 50 },
            MatcherSpec::Greedy,
            MatcherSpec::Traditional,
            MatcherSpec::Hungarian,
            MatcherSpec::Auction,
            MatcherSpec::MaxCardinality,
        ]
    }

    #[test]
    fn spec_build_matches_names() {
        for spec in all_specs() {
            assert_eq!(spec.build(10).name(), spec.name());
        }
    }

    #[test]
    fn engine_reuses_fixed_budget_matchers() {
        let g = BipartiteGraph::full(4, 4, |u, v| ((u.0 + v.0) % 3) as f64 / 3.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut engine = MatcherEngine::new(MatcherSpec::React { cycles: 50 });
        for _ in 0..5 {
            let mut ctx = MatchContext::new(&mut rng, g.n_edges());
            engine.assign(&g, &mut ctx).verify(&g);
        }
        assert_eq!(engine.rebuilds(), 1, "fixed budget ⇒ built once");
    }

    #[test]
    fn engine_rebuilds_adaptive_only_on_budget_change() {
        let mut engine = MatcherEngine::new(MatcherSpec::ReactAdaptive { kappa: 1.0 });
        engine.matcher(100);
        engine.matcher(100);
        assert_eq!(engine.rebuilds(), 1);
        engine.matcher(200); // budget 100 → 200
        assert_eq!(engine.rebuilds(), 2);
        engine.matcher(200);
        assert_eq!(engine.rebuilds(), 2);
    }

    #[test]
    fn engine_reuse_is_bit_identical_to_rebuilding() {
        let g =
            BipartiteGraph::full(6, 6, |u, v| ((u.0 * 7 + v.0 * 3) % 10) as f64 / 10.0).unwrap();
        for spec in all_specs() {
            let mut engine = MatcherEngine::new(spec);
            let mut rng_a = SmallRng::seed_from_u64(9);
            let mut rng_b = SmallRng::seed_from_u64(9);
            for _ in 0..3 {
                let reused = engine.assign(&g, &mut MatchContext::new(&mut rng_a, g.n_edges()));
                let fresh = spec.build(g.n_edges()).assign(&g, &mut rng_b);
                assert_eq!(reused.pairs, fresh.pairs, "{}", spec.name());
                assert_eq!(reused.total_weight, fresh.total_weight);
            }
        }
    }

    #[test]
    fn registry_builtins_cover_all_families() {
        let r = MatcherRegistry::with_builtins();
        for name in [
            "react",
            "react-adaptive",
            "metropolis",
            "greedy",
            "traditional",
            "hungarian",
            "auction",
            "hopcroft-karp",
        ] {
            assert!(r.contains(name), "missing builtin {name}");
            let m = r.build(name, 64).unwrap();
            if name == "react-adaptive" {
                assert_eq!(m.name(), "react");
            } else {
                assert_eq!(m.name(), name);
            }
        }
        assert!(r.build("nope", 1).is_none());
        assert!(!r.contains("nope"));
    }

    #[test]
    fn registry_last_registration_wins() {
        let mut r = MatcherRegistry::with_builtins();
        r.register_spec("react", MatcherSpec::Greedy);
        assert_eq!(r.build("react", 1).unwrap().name(), "greedy");
    }

    #[test]
    fn engine_reports_spans_and_counters_to_observer() {
        use react_obs::RecordingObserver;
        use std::sync::Arc;

        let g =
            BipartiteGraph::full(8, 8, |u, v| ((u.0 * 5 + v.0 * 3) % 11) as f64 / 11.0).unwrap();
        let rec = RecordingObserver::new();
        let mut engine = MatcherEngine::new(MatcherSpec::React { cycles: 40 })
            .with_observer(Arc::new(rec.clone()));
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..3 {
            engine.assign(&g, &mut MatchContext::new(&mut rng, g.n_edges()));
        }
        let span = rec
            .span_stats(SpanKind::MatcherAssign)
            .expect("assign span");
        assert_eq!(span.count, 3);
        assert!(span.total_seconds >= 0.0);
        assert_eq!(rec.counter(CounterKind::MatcherCycles), 120);
        assert_eq!(
            rec.counter(CounterKind::FlipsAccepted) + rec.counter(CounterKind::FlipsRejected),
            120
        );
        assert_eq!(rec.counter(CounterKind::MatcherRebuilds), 1);
    }

    #[test]
    fn engine_observer_does_not_change_results() {
        use react_obs::RecordingObserver;
        use std::sync::Arc;

        let g =
            BipartiteGraph::full(6, 6, |u, v| ((u.0 * 7 + v.0 * 3) % 10) as f64 / 10.0).unwrap();
        let spec = MatcherSpec::React { cycles: 100 };
        let mut plain = MatcherEngine::new(spec);
        let mut observed =
            MatcherEngine::new(spec).with_observer(Arc::new(RecordingObserver::new()));
        let mut rng_a = SmallRng::seed_from_u64(11);
        let mut rng_b = SmallRng::seed_from_u64(11);
        for _ in 0..4 {
            let a = plain.assign(&g, &mut MatchContext::new(&mut rng_a, g.n_edges()));
            let b = observed.assign(&g, &mut MatchContext::new(&mut rng_b, g.n_edges()));
            assert_eq!(a.pairs, b.pairs);
            assert_eq!(a.total_weight.to_bits(), b.total_weight.to_bits());
        }
    }

    #[test]
    fn engine_clone_resets_cache_not_behaviour() {
        let g = BipartiteGraph::full(3, 3, |_, _| 0.5).unwrap();
        let mut engine = MatcherEngine::new(MatcherSpec::React { cycles: 20 });
        let mut rng = SmallRng::seed_from_u64(3);
        engine.assign(&g, &mut MatchContext::new(&mut rng, g.n_edges()));
        let mut clone = engine.clone();
        assert_eq!(clone.rebuilds(), 0, "clone starts unbuilt");
        let mut a = SmallRng::seed_from_u64(4);
        let mut b = SmallRng::seed_from_u64(4);
        let from_clone = clone.assign(&g, &mut MatchContext::new(&mut a, g.n_edges()));
        let from_orig = engine.assign(&g, &mut MatchContext::new(&mut b, g.n_edges()));
        assert_eq!(from_clone.pairs, from_orig.pairs);
    }
}
