//! The Greedy matching baseline.
//!
//! *"The basic idea of the Greedy matching is to select the edge
//! (worker_i, task_j) for any unassigned task_j ∈ V with the highest
//! weight w_ij, that is subject to the constraints defined for the WBGM.
//! The complexity of such an approach is O(V·E)."*
//!
//! Each task, in arrival order, claims the highest-weight edge to a still
//! free worker. Quality is near-optimal on dense graphs (plenty of free
//! workers with near-maximal weights remain available), but the `O(V·E)`
//! cost is what makes Greedy collapse under load in the paper's Figs.
//! 5–10; [`Matching::cost_units`] is accordingly `|V|·|E|` even though
//! this Rust implementation only walks each task's own adjacency list.

use crate::graph::{BipartiteGraph, TaskIdx};
use crate::invariants::debug_check_matching;
use crate::matcher::{Matcher, Matching};
use rand::RngCore;

/// The greedy per-task max-weight matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyMatcher;

impl Matcher for GreedyMatcher {
    fn assign(&self, graph: &BipartiteGraph, _rng: &mut dyn RngCore) -> Matching {
        let mut worker_taken = vec![false; graph.n_workers()];
        let mut pairs = Vec::new();
        for v in 0..graph.n_tasks() {
            let task = TaskIdx(v as u32);
            let best = graph
                .task_edges(task)
                .iter()
                .map(|&e| graph.edge(e))
                .filter(|edge| !worker_taken[edge.worker.0 as usize])
                // Ties broken toward the lower worker index for
                // determinism (max_by keeps the *last* max, so compare
                // (weight, Reverse(idx)) explicitly).
                .max_by(|a, b| {
                    a.weight
                        .partial_cmp(&b.weight)
                        .expect("weights are finite")
                        .then(b.worker.0.cmp(&a.worker.0))
                });
            if let Some(edge) = best {
                worker_taken[edge.worker.0 as usize] = true;
                pairs.push((edge.worker, edge.task, edge.weight));
            }
        }
        let cost = graph.n_tasks() as f64 * graph.n_edges() as f64;
        let m = Matching::from_pairs(pairs, cost);
        debug_check_matching("greedy", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkerIdx;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(4, 4);
        let m = GreedyMatcher.assign(&g, &mut rng());
        assert!(m.is_empty());
        assert_eq!(m.cost_units, 0.0);
    }

    #[test]
    fn picks_heaviest_free_worker_per_task() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.9).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 0.5).unwrap();
        g.add_edge(WorkerIdx(0), TaskIdx(1), 0.8).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(1), 0.1).unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        // Task 0 takes worker 0 (0.9); task 1 must settle for worker 1.
        assert_eq!(m.task_of(WorkerIdx(0)), Some(TaskIdx(0)));
        assert_eq!(m.task_of(WorkerIdx(1)), Some(TaskIdx(1)));
        assert!((m.total_weight - 1.0).abs() < 1e-12);
        m.verify(&g);
    }

    #[test]
    fn greedy_is_order_dependent_not_optimal() {
        // Optimal pairs task0→w1 (0.8), task1→w0 (0.9) for 1.7;
        // greedy gives task0→w0 (0.9), task1→w1 (0.2) for 1.1.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.9).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 0.8).unwrap();
        g.add_edge(WorkerIdx(0), TaskIdx(1), 0.9).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(1), 0.2).unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        assert!((m.total_weight - 1.1).abs() < 1e-12);
    }

    #[test]
    fn near_optimal_on_dense_graph() {
        // The paper's Fig. 4 observation: on a full graph with many
        // workers per task, greedy is almost optimal (≈ one weight-1.0
        // edge per task available).
        let mut w_rng = SmallRng::seed_from_u64(2024);
        let g = BipartiteGraph::full(100, 20, |_, _| {
            use rand::Rng;
            w_rng.gen::<f64>()
        })
        .unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 20);
        assert!(
            m.total_weight > 0.95 * 20.0,
            "greedy should be near-optimal on dense graphs, got {}",
            m.total_weight
        );
        m.verify(&g);
    }

    #[test]
    fn more_tasks_than_workers() {
        let g = BipartiteGraph::full(3, 10, |_, v| 1.0 - v.0 as f64 / 100.0).unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        assert_eq!(m.len(), 3, "only |U| tasks can be matched");
        m.verify(&g);
    }

    #[test]
    fn deterministic_tie_break_toward_lower_worker() {
        let mut g = BipartiteGraph::new(3, 1);
        g.add_edge(WorkerIdx(2), TaskIdx(0), 0.5).unwrap();
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.5).unwrap();
        g.add_edge(WorkerIdx(1), TaskIdx(0), 0.5).unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        assert_eq!(m.pairs[0].0, WorkerIdx(0));
    }

    #[test]
    fn cost_is_v_times_e() {
        let g = BipartiteGraph::full(10, 5, |_, _| 0.5).unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        assert_eq!(m.cost_units, 5.0 * 50.0);
        assert_eq!(GreedyMatcher.name(), "greedy");
    }

    #[test]
    fn skips_tasks_with_no_free_worker() {
        let mut g = BipartiteGraph::new(1, 2);
        g.add_edge(WorkerIdx(0), TaskIdx(0), 0.4).unwrap();
        g.add_edge(WorkerIdx(0), TaskIdx(1), 0.9).unwrap();
        let m = GreedyMatcher.assign(&g, &mut rng());
        // Task 0 grabs the only worker; task 1 goes unmatched.
        assert_eq!(m.len(), 1);
        assert_eq!(m.worker_of(TaskIdx(0)), Some(WorkerIdx(0)));
        assert_eq!(m.worker_of(TaskIdx(1)), None);
    }
}
