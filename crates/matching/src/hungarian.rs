//! Exact maximum-weight bipartite matching (Kuhn–Munkres / Hungarian
//! algorithm with potentials, `O(n³)`).
//!
//! The paper cites the Hungarian algorithm as the classical *offline*
//! optimum whose computational cost makes it *"inappropriate for use in
//! dynamic systems"*. We implement it anyway: it provides the optimality
//! ceiling in the Fig. 4 reproduction and the ground truth against which
//! the heuristic matchers are tested.
//!
//! The graph is embedded in a square matrix of side `n = max(|U|, |V|)`;
//! missing edges get weight 0, so a maximum-weight *perfect* matching of
//! the padded matrix restricted to real edges with positive weight is a
//! maximum-weight matching of the original graph (weights are
//! non-negative by construction).

use crate::graph::{BipartiteGraph, TaskIdx, WorkerIdx};
use crate::invariants::debug_check_matching;
use crate::matcher::{Matcher, Matching};
use rand::RngCore;

/// Exact `O(n³)` matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HungarianMatcher;

impl HungarianMatcher {
    /// Solves the assignment problem on a dense `rows × cols` weight
    /// matrix (row-major `weights`, `weights[r * cols + c]` = value of
    /// assigning row `r` to column `c`), returning for each row the
    /// assigned column. Exposed for tests and for callers that already
    /// have a matrix.
    pub fn solve_dense(weights: &[f64], rows: usize, cols: usize) -> Vec<Option<usize>> {
        assert_eq!(weights.len(), rows * cols, "matrix shape mismatch");
        let n = rows.max(cols);
        if n == 0 {
            return Vec::new();
        }
        // Minimisation form on the padded square matrix: a[i][j] = -w.
        let a = |i: usize, j: usize| -> f64 {
            if i < rows && j < cols {
                -weights[i * cols + j]
            } else {
                0.0
            }
        };
        // Classic potentials implementation (1-based arrays).
        let inf = f64::INFINITY;
        let mut u = vec![0.0; n + 1];
        let mut v = vec![0.0; n + 1];
        let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
        let mut way = vec![0usize; n + 1];
        for i in 1..=n {
            p[0] = i;
            let mut j0 = 0usize;
            let mut minv = vec![inf; n + 1];
            let mut used = vec![false; n + 1];
            loop {
                used[j0] = true;
                let i0 = p[j0];
                let mut delta = inf;
                let mut j1 = 0usize;
                for j in 1..=n {
                    if !used[j] {
                        let cur = a(i0 - 1, j - 1) - u[i0] - v[j];
                        if cur < minv[j] {
                            minv[j] = cur;
                            way[j] = j0;
                        }
                        if minv[j] < delta {
                            delta = minv[j];
                            j1 = j;
                        }
                    }
                }
                for j in 0..=n {
                    if used[j] {
                        u[p[j]] += delta;
                        v[j] -= delta;
                    } else {
                        minv[j] -= delta;
                    }
                }
                j0 = j1;
                if p[j0] == 0 {
                    break;
                }
            }
            // Augment along the alternating path.
            loop {
                let j1 = way[j0];
                p[j0] = p[j1];
                j0 = j1;
                if j0 == 0 {
                    break;
                }
            }
        }
        let mut row_to_col = vec![None; rows];
        #[allow(clippy::needless_range_loop)]
        for j in 1..=n {
            let i = p[j];
            if i >= 1 && i - 1 < rows && j - 1 < cols {
                row_to_col[i - 1] = Some(j - 1);
            }
        }
        row_to_col
    }
}

impl Matcher for HungarianMatcher {
    fn assign(&self, graph: &BipartiteGraph, _rng: &mut dyn RngCore) -> Matching {
        let (rows, cols) = (graph.n_workers(), graph.n_tasks());
        if rows == 0 || cols == 0 || graph.is_empty() {
            return Matching::default();
        }
        let mut weights = vec![0.0; rows * cols];
        for edge in graph.edges() {
            weights[edge.worker.0 as usize * cols + edge.task.0 as usize] = edge.weight;
        }
        let assignment = Self::solve_dense(&weights, rows, cols);
        let mut pairs = Vec::new();
        for (r, col) in assignment.iter().enumerate() {
            if let Some(c) = col {
                let worker = WorkerIdx(r as u32);
                let task = TaskIdx(*c as u32);
                // Keep only real edges; padded zero cells and zero-weight
                // placeholders carry no value.
                if let Some(e) = graph.find_edge(worker, task) {
                    pairs.push((worker, task, graph.edge(e).weight));
                }
            }
        }
        let n = rows.max(cols) as f64;
        let m = Matching::from_pairs(pairs, n * n * n);
        debug_check_matching("hungarian", graph, &m);
        m
    }

    fn name(&self) -> &'static str {
        "hungarian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12)
    }

    /// Brute-force optimum by enumerating all injective assignments of
    /// tasks to workers (exponential; only for tiny graphs).
    fn brute_force_optimum(graph: &BipartiteGraph) -> f64 {
        fn rec(graph: &BipartiteGraph, task: usize, used: &mut Vec<bool>) -> f64 {
            if task == graph.n_tasks() {
                return 0.0;
            }
            // Option 1: leave this task unmatched.
            let mut best = rec(graph, task + 1, used);
            // Option 2: match it with any free worker it has an edge to.
            for &e in graph.task_edges(TaskIdx(task as u32)) {
                let edge = graph.edge(e);
                let w = edge.worker.0 as usize;
                if !used[w] {
                    used[w] = true;
                    best = best.max(edge.weight + rec(graph, task + 1, used));
                    used[w] = false;
                }
            }
            best
        }
        let mut used = vec![false; graph.n_workers()];
        rec(graph, 0, &mut used)
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        let m = HungarianMatcher.assign(&g, &mut rng());
        assert!(m.is_empty());
    }

    #[test]
    fn known_3x3_optimum() {
        // Anti-diagonal is optimal: 0.9 + 0.8 + 0.9 = 2.6.
        let w = [[0.1, 0.2, 0.9], [0.3, 0.8, 0.1], [0.9, 0.1, 0.2]];
        let g = BipartiteGraph::full(3, 3, |u, v| w[u.0 as usize][v.0 as usize]).unwrap();
        let m = HungarianMatcher.assign(&g, &mut rng());
        assert!(
            (m.total_weight - 2.6).abs() < 1e-9,
            "got {}",
            m.total_weight
        );
        m.verify(&g);
    }

    #[test]
    fn matches_brute_force_on_random_square_graphs() {
        let mut g_rng = rng();
        for trial in 0..30 {
            let n = 2 + trial % 5; // 2..6
            let g = BipartiteGraph::full(n, n, |_, _| g_rng.gen::<f64>()).unwrap();
            let m = HungarianMatcher.assign(&g, &mut rng());
            m.verify(&g);
            let opt = brute_force_optimum(&g);
            assert!(
                (m.total_weight - opt).abs() < 1e-9,
                "trial {trial}: hungarian {} vs brute force {opt}",
                m.total_weight
            );
        }
    }

    #[test]
    fn matches_brute_force_on_rectangular_graphs() {
        let mut g_rng = rng();
        for trial in 0..20 {
            let (nu, nv) = if trial % 2 == 0 { (6, 3) } else { (3, 6) };
            let g = BipartiteGraph::full(nu, nv, |_, _| g_rng.gen::<f64>()).unwrap();
            let m = HungarianMatcher.assign(&g, &mut rng());
            m.verify(&g);
            let opt = brute_force_optimum(&g);
            assert!(
                (m.total_weight - opt).abs() < 1e-9,
                "trial {trial}: hungarian {} vs brute force {opt}",
                m.total_weight
            );
        }
    }

    #[test]
    fn matches_brute_force_on_sparse_graphs() {
        let mut g_rng = rng();
        for trial in 0..20 {
            let mut g = BipartiteGraph::new(5, 5);
            for u in 0..5u32 {
                for v in 0..5u32 {
                    if g_rng.gen::<f64>() < 0.4 {
                        g.add_edge(WorkerIdx(u), TaskIdx(v), g_rng.gen::<f64>())
                            .unwrap();
                    }
                }
            }
            let m = HungarianMatcher.assign(&g, &mut rng());
            m.verify(&g);
            let opt = brute_force_optimum(&g);
            assert!(
                (m.total_weight - opt).abs() < 1e-9,
                "trial {trial}: hungarian {} vs brute force {opt}",
                m.total_weight
            );
        }
    }

    #[test]
    fn solve_dense_identity() {
        // Strongly diagonal matrix → identity assignment.
        let w = vec![
            9.0, 1.0, 1.0, //
            1.0, 9.0, 1.0, //
            1.0, 1.0, 9.0,
        ];
        let assign = HungarianMatcher::solve_dense(&w, 3, 3);
        assert_eq!(assign, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn solve_dense_rejects_bad_shape() {
        let _ = HungarianMatcher::solve_dense(&[1.0, 2.0], 2, 2);
    }

    #[test]
    fn cost_units_cubic() {
        let g = BipartiteGraph::full(4, 2, |_, _| 1.0).unwrap();
        let m = HungarianMatcher.assign(&g, &mut rng());
        assert_eq!(m.cost_units, 64.0);
        assert_eq!(HungarianMatcher.name(), "hungarian");
    }
}
