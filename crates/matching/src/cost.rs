//! Calibrated scheduler-compute cost model.
//!
//! The paper's evaluation ran a Java middleware on PlanetLab (2013);
//! matching a 1000×1000 full graph took **99.7 s** with Greedy and
//! **≈12 s** with REACT/Metropolis at 1000 cycles (**≈45 s** at 3000).
//! This Rust implementation is orders of magnitude faster in wall-clock,
//! which would erase the queueing dynamics that drive the paper's
//! Figs. 5–10 (Greedy collapses precisely *because* matching time grows
//! with graph size relative to task deadlines).
//!
//! [`CostModel`] therefore converts each matcher's abstract
//! [`Matching::cost_units`](crate::Matching) into **simulated seconds**,
//! with per-algorithm coefficients calibrated against the Fig. 3 anchors:
//!
//! | matcher | cost units | coefficient | anchor |
//! |---|---|---|---|
//! | `react`, `metropolis` | `c·E` | 1.35 × 10⁻⁸ s | 12 s @ c=1000, E=10⁶ and 45 s @ c=3000 (least-squares ≈ 13.5/40.5 s) |
//! | `greedy` | `V·E` | 9.97 × 10⁻⁸ s | 99.7 s @ V=1000, E=10⁶ |
//! | `traditional` | `V` | 10⁻⁴ s | negligible — portal lookup per task |
//! | `hungarian` | `n³` | 10⁻⁷ s | dominates every heuristic, per the paper's "inappropriate for dynamic systems" |
//! | `auction` | bids | 10⁻⁶ s | extension (no paper anchor) |
//!
//! The experiment harness can also bypass the model and use measured Rust
//! wall-clock time; both series are reported in `EXPERIMENTS.md`.

use std::collections::BTreeMap;

/// Per-algorithm coefficients mapping cost units to simulated seconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    coefficients: BTreeMap<&'static str, f64>,
    default_coefficient: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

impl CostModel {
    /// The model calibrated to the paper's Fig. 3 anchors (see module
    /// docs).
    pub fn paper_calibrated() -> Self {
        let mut coefficients = BTreeMap::new();
        coefficients.insert("react", 1.35e-8);
        coefficients.insert("metropolis", 1.35e-8);
        coefficients.insert("greedy", 9.97e-8);
        coefficients.insert("traditional", 1e-4);
        coefficients.insert("hungarian", 1e-7);
        coefficients.insert("auction", 1e-6);
        coefficients.insert("hopcroft-karp", 1e-7);
        CostModel {
            coefficients,
            default_coefficient: 1e-7,
        }
    }

    /// A model that charges no time at all (for experiments isolating
    /// matching quality from scheduling latency).
    pub fn free() -> Self {
        CostModel {
            coefficients: BTreeMap::new(),
            default_coefficient: 0.0,
        }
    }

    /// Overrides (or sets) one algorithm's coefficient.
    pub fn with_coefficient(mut self, name: &'static str, seconds_per_unit: f64) -> Self {
        self.coefficients.insert(name, seconds_per_unit);
        self
    }

    /// Scales every coefficient by `factor` (e.g. to model faster
    /// servers in a sensitivity sweep).
    pub fn scaled(mut self, factor: f64) -> Self {
        for v in self.coefficients.values_mut() {
            *v *= factor;
        }
        self.default_coefficient *= factor;
        self
    }

    /// The coefficient used for `name`.
    pub fn coefficient(&self, name: &str) -> f64 {
        self.coefficients
            .get(name)
            .copied()
            .unwrap_or(self.default_coefficient)
    }

    /// Simulated seconds charged for a run of matcher `name` that
    /// reported `cost_units`.
    pub fn seconds_for(&self, name: &str, cost_units: f64) -> f64 {
        self.coefficient(name) * cost_units.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_anchors_reproduced() {
        let m = CostModel::paper_calibrated();
        // Greedy: 1000 tasks × 10⁶ edges → ≈ 99.7 s.
        let greedy = m.seconds_for("greedy", 1000.0 * 1e6);
        assert!((greedy - 99.7).abs() < 0.1, "greedy anchor {greedy}");
        // REACT 1000 cycles on 10⁶ edges → ≈ 12–14 s.
        let react = m.seconds_for("react", 1000.0 * 1e6);
        assert!((11.0..16.0).contains(&react), "react anchor {react}");
        // REACT 3000 cycles → ≈ 40–45 s; exactly 3× the 1000-cycle time.
        let react3 = m.seconds_for("react", 3000.0 * 1e6);
        assert!((react3 - 3.0 * react).abs() < 1e-9);
        assert!((38.0..47.0).contains(&react3), "react 3000 anchor {react3}");
        // Metropolis charged identically to REACT (paper: same runtime).
        assert_eq!(
            m.seconds_for("metropolis", 12345.0),
            m.seconds_for("react", 12345.0)
        );
    }

    #[test]
    fn greedy_slower_than_react_at_fig3_scale() {
        // The crossover the paper's Fig. 3 shows: on the 1000×1000 full
        // graph Greedy is ~8× slower than REACT@1000 cycles.
        let m = CostModel::paper_calibrated();
        let e = 1e6;
        let greedy = m.seconds_for("greedy", 1000.0 * e);
        let react = m.seconds_for("react", 1000.0 * e);
        assert!(greedy / react > 5.0, "ratio {}", greedy / react);
    }

    #[test]
    fn greedy_faster_on_tiny_batches() {
        // Fig. 9's other end: with 100 workers and small batches Greedy's
        // modelled time undercuts REACT's fixed cycle budget.
        let m = CostModel::paper_calibrated();
        let edges = 10.0 * 100.0; // 10 unassigned tasks × 100 workers
        let greedy = m.seconds_for("greedy", 10.0 * edges);
        let react = m.seconds_for("react", 1000.0 * edges);
        assert!(
            greedy < react,
            "greedy {greedy} should beat react {react} on small graphs"
        );
    }

    #[test]
    fn traditional_is_negligible() {
        let m = CostModel::paper_calibrated();
        assert!(m.seconds_for("traditional", 1000.0) < 0.2);
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.seconds_for("react", 1e12), 0.0);
        assert_eq!(m.seconds_for("unknown", 1e12), 0.0);
    }

    #[test]
    fn override_and_scale() {
        let m = CostModel::paper_calibrated()
            .with_coefficient("react", 1e-3)
            .scaled(2.0);
        assert_eq!(m.seconds_for("react", 10.0), 2e-2);
        let base = CostModel::paper_calibrated();
        assert_eq!(
            base.clone().scaled(0.5).seconds_for("greedy", 100.0),
            0.5 * base.seconds_for("greedy", 100.0)
        );
    }

    #[test]
    fn unknown_matcher_uses_default() {
        let m = CostModel::paper_calibrated();
        assert_eq!(m.seconds_for("mystery", 10.0), 10.0 * 1e-7);
        assert_eq!(m.seconds_for("mystery", -5.0), 0.0, "negative units clamp");
    }
}
