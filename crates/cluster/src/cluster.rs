//! The [`Cluster`] facade: one [`ReactServer`] per router leaf cell,
//! with routing, cross-shard handoff, idle-worker rebalancing and
//! admission control layered on top.
//!
//! Shard topology is fixed at construction: expected member locations
//! are fed through the [`RegionRouter`] and overloaded cells are split
//! (recursively) before any server is built, so shards = router cells
//! *including post-split children*. At runtime the router's load
//! counters track live membership — registrations increment, and
//! completions, expiries, sheds and departures decrement — which is what
//! the rebalance pass reads.

use crate::policy::ClusterPolicy;
use rand::rngs::SmallRng;
use react_core::{
    Availability, CompletionOutcome, Config, CoreError, ReactServer, Task, TickOutcome,
};
use react_core::{TaskId, WorkerId};
use react_geo::{BoundingBox, GeoPoint, RegionGrid, RegionRouter, ServerId};
use react_obs::{null_observer, CounterKind, ObserverHandle, SpanKind, SpanTimer};
use std::collections::BTreeMap;

/// One shard: a server bound to a router leaf cell.
#[derive(Debug)]
struct Shard {
    id: ServerId,
    bounds: BoundingBox,
    server: ReactServer,
}

/// What happened to a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// Routed and accepted by this shard.
    Accepted(ServerId),
    /// Routed to this shard but refused: its open-task count is at the
    /// admission cap. The task never reaches a server.
    Shed(ServerId),
    /// The task's location lies outside every cell.
    Unroutable,
}

/// One cross-shard task handoff performed during a cluster tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Handoff {
    /// The task that moved.
    pub task: TaskId,
    /// The shard it left.
    pub from: ServerId,
    /// The shard it re-entered.
    pub to: ServerId,
}

/// One idle-worker relocation performed by the rebalance pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Relocation {
    /// The worker that moved.
    pub worker: WorkerId,
    /// The shard it left.
    pub from: ServerId,
    /// The shard it joined.
    pub to: ServerId,
}

/// Everything one cluster control step produced, in shard order.
#[derive(Debug)]
pub struct ClusterTickOutcome {
    /// Per-shard tick outcomes, aligned with [`Cluster::server_ids`].
    pub shard_ticks: Vec<(ServerId, TickOutcome)>,
    /// Cross-shard handoffs performed after the shard ticks.
    pub handoffs: Vec<Handoff>,
    /// Idle-worker relocations performed by this tick's rebalance pass
    /// (empty on off-period ticks or when rebalancing is disabled).
    pub relocations: Vec<Relocation>,
}

/// A sharded deployment of REACT servers behind one router.
#[derive(Debug)]
pub struct Cluster {
    router: RegionRouter,
    shards: Vec<Shard>,
    /// `ServerId` → index into `shards`.
    index: BTreeMap<ServerId, usize>,
    /// Each registered worker's current shard index.
    worker_shard: BTreeMap<WorkerId, usize>,
    policy: ClusterPolicy,
    observer: ObserverHandle,
    /// The dedicated `cluster.rebalance` stream: relocated workers draw
    /// their position in the target cell from here and nowhere else, so
    /// rebalancing never perturbs any other stream.
    rebalance_rng: SmallRng,
    /// Cluster ticks performed (drives the rebalance period).
    ticks: u64,
    /// Tasks refused at admission, per shard index.
    admission_shed: Vec<u64>,
    /// Handoffs out of / into each shard index.
    handoffs_out: Vec<u64>,
    handoffs_in: Vec<u64>,
    /// Workers relocated away from each shard index.
    workers_rebalanced: u64,
}

impl Cluster {
    /// Builds the cluster over `grid`'s cells. `presplit_points` are the
    /// *expected* member locations (typically the worker population):
    /// they are routed through the router and any cell whose projected
    /// load reaches `policy.split_threshold` is subdivided, recursively,
    /// before the per-shard servers are built. Load counters are then
    /// reset so live accounting starts from zero.
    ///
    /// Each shard's server derives its seed from `seed` and the shard
    /// index, so the whole cluster is reproducible from one seed.
    pub fn new(
        grid: &RegionGrid,
        config: Config,
        seed: u64,
        policy: ClusterPolicy,
        observer: ObserverHandle,
        rebalance_rng: SmallRng,
        presplit_points: &[GeoPoint],
    ) -> Result<Self, CoreError> {
        let mut router = RegionRouter::new(grid, policy.split_threshold);
        for p in presplit_points {
            router.register(p);
        }
        while !router.split_overloaded().is_empty() {}
        router.reset_loads();

        let mut shards = Vec::new();
        let mut index = BTreeMap::new();
        for (i, id) in router.leaves().into_iter().enumerate() {
            let bounds = router.bounds(id).expect("leaf has bounds");
            let server = ReactServer::builder(config.clone())
                .seed(shard_seed(seed, i))
                .observer(observer.clone())
                .build()?;
            index.insert(id, shards.len());
            shards.push(Shard { id, bounds, server });
        }
        let n = shards.len();
        Ok(Cluster {
            router,
            shards,
            index,
            worker_shard: BTreeMap::new(),
            policy,
            observer,
            rebalance_rng,
            ticks: 0,
            admission_shed: vec![0; n],
            handoffs_out: vec![0; n],
            handoffs_in: vec![0; n],
            workers_rebalanced: 0,
        })
    }

    /// Number of shards (= router leaf cells).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard servers' ids, in shard order.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.shards.iter().map(|s| s.id).collect()
    }

    /// Read access to one shard's server.
    pub fn server(&self, id: ServerId) -> Option<&ReactServer> {
        self.index.get(&id).map(|&i| &self.shards[i].server)
    }

    /// Read access to the router (live per-cell load, neighbours).
    pub fn router(&self) -> &RegionRouter {
        &self.router
    }

    /// The shard a worker currently belongs to.
    pub fn shard_of_worker(&self, id: WorkerId) -> Option<ServerId> {
        self.worker_shard.get(&id).map(|&i| self.shards[i].id)
    }

    /// Tasks refused at admission so far, per shard (shard order).
    pub fn admission_shed(&self) -> &[u64] {
        &self.admission_shed
    }

    /// Handoffs out of each shard so far (shard order).
    pub fn handoffs_out(&self) -> &[u64] {
        &self.handoffs_out
    }

    /// Handoffs into each shard so far (shard order).
    pub fn handoffs_in(&self) -> &[u64] {
        &self.handoffs_in
    }

    /// Workers relocated by the rebalance pass so far.
    pub fn workers_rebalanced(&self) -> u64 {
        self.workers_rebalanced
    }

    /// Number of workers currently mapped to each shard (shard order).
    pub fn workers_per_shard(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.shards.len()];
        for &i in self.worker_shard.values() {
            counts[i] += 1;
        }
        counts
    }

    /// Registers a worker: routes by location, registers with the owning
    /// shard's server and charges the router's load counter. Returns the
    /// owning shard, or `None` when the location is outside the area.
    pub fn register_worker(&mut self, id: WorkerId, location: GeoPoint) -> Option<ServerId> {
        let server_id = self.router.register(&location)?;
        let i = self.index[&server_id];
        self.shards[i].server.register_worker(id, location);
        self.worker_shard.insert(id, i);
        Some(server_id)
    }

    /// A worker departs (churn or fault dropout): its current shard
    /// recalls any held tasks, and the router's load counter drops.
    /// Returns the recalled task ids. The server-side calls are
    /// idempotent, so the router guard here keeps duplicate events from
    /// skewing the load counters.
    pub fn worker_offline(&mut self, id: WorkerId, now: f64) -> Vec<TaskId> {
        let Some(&i) = self.worker_shard.get(&id) else {
            return Vec::new();
        };
        let server_id = self.shards[i].id;
        let was_online = self.availability(i, id) != Some(Availability::Offline);
        let recalled = self.shards[i].server.worker_offline(id, now);
        if was_online {
            self.router.deregister(server_id);
        }
        recalled
    }

    /// A departed worker reconnects at its current shard.
    pub fn worker_online(&mut self, id: WorkerId) {
        if let Some(&i) = self.worker_shard.get(&id) {
            let server_id = self.shards[i].id;
            let was_offline = self.availability(i, id) == Some(Availability::Offline);
            if was_offline && self.shards[i].server.worker_online(id).is_ok() {
                self.router.add_load(server_id);
            }
        }
    }

    fn availability(&self, shard: usize, id: WorkerId) -> Option<Availability> {
        self.shards[shard]
            .server
            .profiling()
            .profile(id)
            .ok()
            .map(|p| p.availability())
    }

    /// Submits a task: routes by location, applies the admission cap,
    /// and hands the task to the owning shard's server. Sheds are
    /// reported on the `shard.admission_shed` and `recovery.tasks_shed`
    /// counters.
    pub fn submit_task(&mut self, task: Task, now: f64) -> Submission {
        let Some(server_id) = self.router.route(&task.location) else {
            return Submission::Unroutable;
        };
        let i = self.index[&server_id];
        if let Some(admission) = self.policy.admission {
            if self.shards[i].server.tasks().open_count() >= admission.max_open_tasks {
                self.admission_shed[i] += 1;
                if self.observer.enabled() {
                    self.observer.incr(CounterKind::ShardAdmissionShed, 1);
                    self.observer.incr(CounterKind::TasksShed, 1);
                }
                return Submission::Shed(server_id);
            }
        }
        self.shards[i].server.submit_task(task, now);
        self.router.add_load(server_id);
        Submission::Accepted(server_id)
    }

    /// Delivers a completion to the shard that assigned the task. On
    /// success the router's load counter drops.
    pub fn complete_task(
        &mut self,
        shard: ServerId,
        task: TaskId,
        worker: WorkerId,
        now: f64,
        quality_ok: bool,
    ) -> Result<CompletionOutcome, CoreError> {
        let i = *self.index.get(&shard).ok_or(CoreError::UnknownTask(task))?;
        let outcome = self.shards[i]
            .server
            .complete_task(task, worker, now, quality_ok)?;
        self.router.deregister(shard);
        Ok(outcome)
    }

    /// Ticks a single shard — the control step a task arrival triggers
    /// on its owning server (no cluster-wide passes).
    pub fn tick_shard(&mut self, shard: ServerId, now: f64) -> Option<(ServerId, TickOutcome)> {
        let i = *self.index.get(&shard)?;
        let outcome = self.shards[i].server.tick(now);
        self.settle_retirements(i, &outcome);
        Some((shard, outcome))
    }

    /// The full cluster control step: tick every shard (serially or on
    /// scoped threads, depending on the `parallel` feature and
    /// `REACT_PARALLEL_THREADS`), then run the handoff pass and — on
    /// period — the rebalance pass. Both paths are bit-identical:
    /// shards share no state during the tick, and the cluster-wide
    /// passes always run serially in shard order afterwards.
    pub fn tick(&mut self, now: f64) -> ClusterTickOutcome {
        #[cfg(feature = "parallel")]
        {
            if react_core::par::parallelism() > 1 {
                return self.tick_parallel(now);
            }
        }
        self.tick_serial(now)
    }

    /// The serial baseline: shards tick one after another.
    pub fn tick_serial(&mut self, now: f64) -> ClusterTickOutcome {
        let enabled = self.observer.enabled();
        let mut outcomes = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            let timer = enabled.then(SpanTimer::start);
            let outcome = shard.server.tick(now);
            if let Some(timer) = timer {
                timer.finish(self.observer.as_ref(), SpanKind::ShardTick);
            }
            outcomes.push((shard.id, outcome));
        }
        self.finish_tick(now, outcomes)
    }

    /// Ticks the shards on parallel scoped threads, merging outcomes in
    /// shard order. Shards are disjoint, so this is bit-identical to
    /// [`Cluster::tick_serial`]. Always compiled; the `parallel` feature
    /// only routes the default [`Cluster::tick`] here.
    pub fn tick_parallel(&mut self, now: f64) -> ClusterTickOutcome {
        let n = self.shards.len();
        let threads = react_core::par::parallelism().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.tick_serial(now);
        }
        let enabled = self.observer.enabled();
        let observer = &self.observer;
        let mut slots: Vec<Option<TickOutcome>> = (0..n).map(|_| None).collect();
        let chunk = react_core::par::chunk_len(n, threads);
        std::thread::scope(|scope| {
            for (shard_part, slot_part) in
                self.shards.chunks_mut(chunk).zip(slots.chunks_mut(chunk))
            {
                scope.spawn(move || {
                    for (shard, slot) in shard_part.iter_mut().zip(slot_part.iter_mut()) {
                        let timer = enabled.then(SpanTimer::start);
                        let outcome = shard.server.tick(now);
                        if let Some(timer) = timer {
                            timer.finish(observer.as_ref(), SpanKind::ShardTick);
                        }
                        *slot = Some(outcome);
                    }
                });
            }
        });
        let outcomes = self
            .shards
            .iter()
            .zip(slots)
            .map(|(shard, slot)| (shard.id, slot.expect("every shard thread completed")))
            .collect();
        self.finish_tick(now, outcomes)
    }

    /// Shared tail of both tick paths: router load maintenance, the
    /// handoff pass, and the periodic rebalance pass — always serial, in
    /// shard order.
    fn finish_tick(
        &mut self,
        now: f64,
        outcomes: Vec<(ServerId, TickOutcome)>,
    ) -> ClusterTickOutcome {
        for (i, (_, outcome)) in outcomes.iter().enumerate() {
            self.settle_retirements(i, outcome);
        }
        let handoffs = self.pass_handoff(now);
        self.ticks += 1;
        let relocations = match self.policy.rebalance {
            Some(rb) if rb.period_ticks > 0 && self.ticks.is_multiple_of(rb.period_ticks) => {
                self.pass_rebalance(rb)
            }
            _ => Vec::new(),
        };
        ClusterTickOutcome {
            shard_ticks: outcomes,
            handoffs,
            relocations,
        }
    }

    /// Drops router load for every task a tick retired (expired or shed).
    fn settle_retirements(&mut self, i: usize, outcome: &TickOutcome) {
        let id = self.shards[i].id;
        for _ in 0..outcome.expired.len() + outcome.shed.len() {
            self.router.deregister(id);
        }
    }

    /// The handoff pass: for each shard whose online pool fell below the
    /// policy floor and whose queue is non-empty, evict up to
    /// `max_per_tick` queued tasks (oldest first) and re-submit them on
    /// the edge-adjacent shard with the most online workers. Deadlines
    /// are re-based so the absolute expiry instant is preserved, and
    /// handoffs bypass the admission cap (they are intra-cluster moves,
    /// not new ingress).
    fn pass_handoff(&mut self, now: f64) -> Vec<Handoff> {
        let Some(policy) = self.policy.handoff else {
            return Vec::new();
        };
        let mut handoffs = Vec::new();
        for i in 0..self.shards.len() {
            let online = self.shards[i].server.profiling().online_workers().len();
            if online >= policy.pool_floor || self.shards[i].server.tasks().unassigned_count() == 0
            {
                continue;
            }
            let source_id = self.shards[i].id;
            // Target: the edge-adjacent leaf with the most online
            // workers; ties break on the lower server id. A viable
            // target must be strictly better off than the source, or the
            // tasks would bounce without gaining anything.
            let target = self
                .router
                .neighbors(source_id)
                .into_iter()
                .filter_map(|id| self.index.get(&id).map(|&j| (id, j)))
                .map(|(id, j)| {
                    let n = self.shards[j].server.profiling().online_workers().len();
                    (n, std::cmp::Reverse(id), j)
                })
                .max()
                .filter(|&(n, _, _)| n > online);
            let Some((_, std::cmp::Reverse(target_id), j)) = target else {
                continue;
            };
            let evicted = self.shards[i]
                .server
                .evict_unassigned(policy.max_per_tick, now);
            for (mut task, submitted_at) in evicted {
                // Re-base the relative deadline so the absolute expiry
                // instant survives the move. The expiry sweep ran at the
                // top of this tick, so remaining time is positive.
                task.deadline = (submitted_at + task.deadline - now).max(f64::MIN_POSITIVE);
                let task_id = task.id;
                self.shards[j].server.submit_task(task, now);
                self.router.deregister(source_id);
                self.router.add_load(target_id);
                self.handoffs_out[i] += 1;
                self.handoffs_in[j] += 1;
                handoffs.push(Handoff {
                    task: task_id,
                    from: source_id,
                    to: target_id,
                });
            }
        }
        if self.observer.enabled() && !handoffs.is_empty() {
            self.observer
                .incr(CounterKind::ShardHandoffs, handoffs.len() as u64);
        }
        handoffs
    }

    /// The rebalance pass (kern's `relocate_free_cabs` shape): each
    /// shard with more than `min_idle` idle workers relocates up to
    /// `max_moves` of them — lowest worker ids first — to the
    /// edge-adjacent shard with the largest backlog deficit (queued
    /// tasks minus idle workers). Relocated workers re-register at a
    /// position drawn from the `cluster.rebalance` stream inside the
    /// target cell.
    fn pass_rebalance(&mut self, policy: crate::policy::RebalancePolicy) -> Vec<Relocation> {
        let mut relocations = Vec::new();
        for i in 0..self.shards.len() {
            let idle = self.shards[i].server.profiling().available_workers();
            if idle.len() <= policy.min_idle {
                continue;
            }
            let source_id = self.shards[i].id;
            // Neediest adjacent shard: largest (queued − idle) deficit,
            // ties to the lower server id; only positive deficits pull.
            let target = self
                .router
                .neighbors(source_id)
                .into_iter()
                .filter_map(|id| self.index.get(&id).map(|&j| (id, j)))
                .map(|(id, j)| {
                    let queued = self.shards[j].server.tasks().unassigned_count() as i64;
                    let idle_there =
                        self.shards[j].server.profiling().available_workers().len() as i64;
                    (queued - idle_there, std::cmp::Reverse(id), j)
                })
                .max()
                .filter(|&(deficit, _, _)| deficit > 0);
            let Some((deficit, std::cmp::Reverse(target_id), j)) = target else {
                continue;
            };
            let surplus = idle.len() - policy.min_idle;
            let n_moves = policy.max_moves.min(surplus).min(deficit as usize);
            for &worker in idle.iter().take(n_moves) {
                // An idle worker holds no tasks, so going offline at the
                // source recalls nothing; it then re-registers fresh on
                // the target (its latency profile restarts — migration
                // has a cost, exactly as a new arrival would).
                let recalled = self.shards[i].server.worker_offline(worker, 0.0);
                debug_assert!(recalled.is_empty(), "idle workers hold no tasks");
                let location = self.shards[j].bounds.random_point(&mut self.rebalance_rng);
                self.shards[j].server.register_worker(worker, location);
                self.worker_shard.insert(worker, j);
                self.router.deregister(source_id);
                self.router.add_load(target_id);
                relocations.push(Relocation {
                    worker,
                    from: source_id,
                    to: target_id,
                });
            }
        }
        if !relocations.is_empty() {
            self.workers_rebalanced += relocations.len() as u64;
            if self.observer.enabled() {
                self.observer.incr(
                    CounterKind::ShardWorkersRebalanced,
                    relocations.len() as u64,
                );
            }
        }
        relocations
    }
}

/// Deterministic per-shard server seed: SplitMix64-style mix of the
/// cluster seed and the shard index.
fn shard_seed(seed: u64, shard_index: usize) -> u64 {
    let mut z =
        seed.wrapping_add((shard_index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ 0x5eed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 27)
}

/// Convenience constructor used by tests and benches: a cluster over a
/// `rows × cols` grid with no pre-splitting and the null observer.
pub fn grid_cluster(
    area: BoundingBox,
    rows: u32,
    cols: u32,
    config: Config,
    seed: u64,
    policy: ClusterPolicy,
    rebalance_rng: SmallRng,
) -> Result<Cluster, CoreError> {
    let grid = RegionGrid::new(area, rows, cols).expect("non-zero grid dimensions");
    Cluster::new(
        &grid,
        config,
        seed,
        policy,
        null_observer(),
        rebalance_rng,
        &[],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdmissionPolicy, HandoffPolicy, RebalancePolicy};
    use rand::SeedableRng;
    use react_core::{BatchTrigger, TaskCategory};

    fn area() -> BoundingBox {
        BoundingBox::new(0.0, 4.0, 0.0, 4.0).unwrap()
    }

    fn eager_config() -> Config {
        let mut config = Config::paper_defaults();
        config.batch = BatchTrigger {
            min_unassigned: 1,
            period: None,
        };
        config.charge_matching_time = false;
        config
    }

    fn task_at(id: u64, lat: f64, lon: f64) -> Task {
        Task::new(
            TaskId(id),
            GeoPoint::new(lat, lon),
            60.0,
            0.05,
            TaskCategory(0),
            "t",
        )
    }

    fn cluster_with(policy: ClusterPolicy) -> Cluster {
        grid_cluster(
            area(),
            2,
            2,
            eager_config(),
            7,
            policy,
            SmallRng::seed_from_u64(99),
        )
        .unwrap()
    }

    #[test]
    fn routes_workers_and_tasks_to_their_shards() {
        let mut c = cluster_with(ClusterPolicy::single_tier());
        assert_eq!(c.shard_count(), 4);
        let s = c
            .register_worker(WorkerId(1), GeoPoint::new(0.5, 0.5))
            .unwrap();
        assert_eq!(c.shard_of_worker(WorkerId(1)), Some(s));
        assert_eq!(c.router().load(s), 1);
        let sub = c.submit_task(task_at(1, 0.5, 0.6), 0.0);
        assert_eq!(sub, Submission::Accepted(s));
        assert_eq!(c.router().load(s), 2);
        assert_eq!(c.server(s).unwrap().tasks().open_count(), 1);
        // Outside the area.
        assert_eq!(
            c.submit_task(task_at(2, 9.0, 9.0), 0.0),
            Submission::Unroutable
        );
    }

    #[test]
    fn presplit_points_shape_the_topology() {
        let grid = RegionGrid::new(area(), 2, 2).unwrap();
        let hot: Vec<GeoPoint> = (0..20).map(|_| GeoPoint::new(0.5, 0.5)).collect();
        let mut policy = ClusterPolicy::single_tier();
        policy.split_threshold = 10;
        let c = Cluster::new(
            &grid,
            eager_config(),
            7,
            policy,
            null_observer(),
            SmallRng::seed_from_u64(1),
            &hot,
        )
        .unwrap();
        // Cell 0 split into 4 (and one child again: 20 points > 10 after
        // the estimate spread of 5 each — no, 20/4 = 5 < 10, one level).
        assert_eq!(c.shard_count(), 7);
        // Loads were reset after shaping.
        for id in c.server_ids() {
            assert_eq!(c.router().load(id), 0);
        }
    }

    #[test]
    fn admission_cap_sheds_at_the_door() {
        let mut policy = ClusterPolicy::single_tier();
        policy.admission = Some(AdmissionPolicy { max_open_tasks: 2 });
        let mut c = cluster_with(policy);
        let s = c.router().route(&GeoPoint::new(0.5, 0.5)).unwrap();
        assert_eq!(
            c.submit_task(task_at(1, 0.5, 0.5), 0.0),
            Submission::Accepted(s)
        );
        assert_eq!(
            c.submit_task(task_at(2, 0.5, 0.5), 0.0),
            Submission::Accepted(s)
        );
        assert_eq!(
            c.submit_task(task_at(3, 0.5, 0.5), 0.0),
            Submission::Shed(s)
        );
        let i = c.server_ids().iter().position(|&id| id == s).unwrap();
        assert_eq!(c.admission_shed()[i], 1);
        // Router load only counts accepted tasks.
        assert_eq!(c.router().load(s), 2);
        // Other shards unaffected.
        assert_eq!(
            c.submit_task(task_at(4, 2.5, 2.5), 0.0),
            Submission::Accepted(c.router().route(&GeoPoint::new(2.5, 2.5)).unwrap())
        );
    }

    #[test]
    fn handoff_moves_queue_to_stronger_neighbor() {
        let mut policy = ClusterPolicy::single_tier();
        policy.handoff = Some(HandoffPolicy {
            pool_floor: 1,
            max_per_tick: 8,
        });
        let mut c = cluster_with(policy);
        // Shard of cell (0,0) has tasks but zero workers; its lon
        // neighbour has two workers.
        let weak = c.router().route(&GeoPoint::new(0.5, 0.5)).unwrap();
        let strong = c
            .register_worker(WorkerId(1), GeoPoint::new(0.5, 2.5))
            .unwrap();
        c.register_worker(WorkerId(2), GeoPoint::new(0.5, 2.6))
            .unwrap();
        c.submit_task(task_at(1, 0.5, 0.5), 0.0);
        c.submit_task(task_at(2, 0.6, 0.5), 0.0);
        let outcome = c.tick_serial(1.0);
        assert_eq!(outcome.handoffs.len(), 2);
        for h in &outcome.handoffs {
            assert_eq!(h.from, weak);
            assert_eq!(h.to, strong);
        }
        assert_eq!(c.server(weak).unwrap().tasks().open_count(), 0);
        // The strong shard accepted (and, with eager batching, likely
        // already assigned) both tasks.
        let strong_server = c.server(strong).unwrap();
        assert_eq!(
            strong_server.tasks().open_count()
                + strong_server
                    .tasks()
                    .iter()
                    .filter(|r| !r.state.is_open())
                    .count(),
            2
        );
        assert_eq!(c.handoffs_out().iter().sum::<u64>(), 2);
        assert_eq!(c.handoffs_in().iter().sum::<u64>(), 2);
        // Router conservation: loads moved with the tasks.
        assert_eq!(c.router().load(weak), 0);
    }

    #[test]
    fn handoff_needs_a_strictly_stronger_neighbor() {
        let mut policy = ClusterPolicy::single_tier();
        policy.handoff = Some(HandoffPolicy {
            pool_floor: 5,
            max_per_tick: 8,
        });
        let mut c = cluster_with(policy);
        // Every shard is below the floor and equally weak: no handoffs.
        c.submit_task(task_at(1, 0.5, 0.5), 0.0);
        let outcome = c.tick_serial(1.0);
        assert!(outcome.handoffs.is_empty());
    }

    #[test]
    fn rebalance_relocates_idle_workers_toward_backlog() {
        let mut policy = ClusterPolicy::single_tier();
        policy.rebalance = Some(RebalancePolicy {
            period_ticks: 1,
            min_idle: 1,
            max_moves: 2,
        });
        let mut c = cluster_with(policy);
        // Shard A (cell 0,0): 4 idle workers, no tasks. Its lon
        // neighbour: a backlog the single local worker can't clear —
        // give it tasks but no workers at all.
        for w in 0..4u64 {
            c.register_worker(WorkerId(w), GeoPoint::new(0.5, 0.2 + w as f64 * 0.1));
        }
        let needy = c.router().route(&GeoPoint::new(0.5, 2.5)).unwrap();
        // Submit tasks; with no workers there the batch assigns nothing
        // and the queue persists to the rebalance pass.
        for t in 0..5u64 {
            c.submit_task(task_at(t, 0.5, 2.2 + t as f64 * 0.1), 0.0);
        }
        let donor = c.shard_of_worker(WorkerId(0)).unwrap();
        let outcome = c.tick_serial(1.0);
        assert_eq!(outcome.relocations.len(), 2, "max_moves caps the pass");
        for r in &outcome.relocations {
            assert_eq!(r.from, donor);
            assert_eq!(r.to, needy);
        }
        // Lowest worker ids move first; their shard map is updated.
        assert_eq!(outcome.relocations[0].worker, WorkerId(0));
        assert_eq!(c.shard_of_worker(WorkerId(0)), Some(needy));
        assert_eq!(c.workers_rebalanced(), 2);
        // Worker conservation across the cluster.
        assert_eq!(c.workers_per_shard().iter().sum::<usize>(), 4);
    }

    #[test]
    fn rebalance_respects_period_and_min_idle() {
        let mut policy = ClusterPolicy::single_tier();
        policy.rebalance = Some(RebalancePolicy {
            period_ticks: 3,
            min_idle: 4,
            max_moves: 2,
        });
        let mut c = cluster_with(policy);
        for w in 0..4u64 {
            c.register_worker(WorkerId(w), GeoPoint::new(0.5, 0.2 + w as f64 * 0.1));
        }
        for t in 0..5u64 {
            c.submit_task(task_at(t, 0.5, 2.2 + t as f64 * 0.1), 0.0);
        }
        // Ticks 1 and 2: off-period. Tick 3: on-period, but the donor
        // only has min_idle workers — nothing moves.
        assert!(c.tick_serial(1.0).relocations.is_empty());
        assert!(c.tick_serial(2.0).relocations.is_empty());
        assert!(c.tick_serial(3.0).relocations.is_empty());
    }

    #[test]
    fn offline_and_online_track_router_load() {
        let mut c = cluster_with(ClusterPolicy::single_tier());
        let s = c
            .register_worker(WorkerId(1), GeoPoint::new(0.5, 0.5))
            .unwrap();
        assert_eq!(c.router().load(s), 1);
        c.worker_offline(WorkerId(1), 1.0);
        assert_eq!(c.router().load(s), 0);
        c.worker_online(WorkerId(1));
        assert_eq!(c.router().load(s), 1);
        // A second online for an already-online worker must not
        // double-charge the router.
        c.worker_online(WorkerId(1));
        assert_eq!(c.router().load(s), 1);
    }

    #[test]
    fn serial_and_parallel_ticks_are_bit_identical() {
        let build = || {
            let mut c = cluster_with(ClusterPolicy::coupled());
            for w in 0..12u64 {
                let lat = 0.3 + (w % 4) as f64;
                let lon = 0.3 + (w / 4) as f64;
                c.register_worker(WorkerId(w), GeoPoint::new(lat, lon));
            }
            for t in 0..16u64 {
                let lat = 0.2 + (t % 4) as f64 * 0.9;
                let lon = 0.2 + (t / 4) as f64 * 0.9;
                c.submit_task(task_at(t, lat, lon), 0.0);
            }
            c
        };
        let mut serial = build();
        let mut parallel = build();
        for step in 1..=5u64 {
            let now = step as f64;
            let a = serial.tick_serial(now);
            let b = parallel.tick_parallel(now);
            assert_eq!(a.handoffs, b.handoffs);
            assert_eq!(a.relocations, b.relocations);
            for ((id_a, oa), (id_b, ob)) in a.shard_ticks.iter().zip(b.shard_ticks.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(oa.assignments, ob.assignments);
                assert_eq!(oa.expired, ob.expired);
                assert_eq!(oa.effective_at.to_bits(), ob.effective_at.to_bits());
            }
        }
    }
}
