//! Cluster-level policies: handoff, rebalancing and admission control.
//!
//! Each mechanism is optional and independently tunable; `None` disables
//! it entirely, and [`ClusterPolicy::single_tier`] disables all three —
//! the configuration under which a cluster run degenerates to the plain
//! multi-region decomposition.

use std::fmt;

/// Cross-shard task handoff: when a shard's live worker pool collapses
/// below `pool_floor` (the same trigger the recovery layer's shedding
/// uses), queued tasks are evicted and re-submitted on the edge-adjacent
/// shard with the most online workers, instead of being dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffPolicy {
    /// Online-worker count below which the shard starts handing off its
    /// queue. Mirrors `RecoveryConfig::pool_floor`.
    pub pool_floor: usize,
    /// At most this many tasks leave a shard per cluster tick — a drip,
    /// not a flood, so the receiving shard's batch sizes stay bounded.
    pub max_per_tick: usize,
}

impl Default for HandoffPolicy {
    fn default() -> Self {
        HandoffPolicy {
            pool_floor: 3,
            max_per_tick: 8,
        }
    }
}

/// Periodic idle-worker rebalancing between adjacent shards, after
/// kern's `relocate_free_cabs`: every `period_ticks` cluster ticks, a
/// shard with surplus idle workers relocates some of them to the
/// edge-adjacent shard with the largest backlog deficit. Relocated
/// workers re-enter the target shard at a position drawn from the
/// dedicated `cluster.rebalance` RNG stream, keeping runs
/// bit-reproducible from the master seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePolicy {
    /// Cluster ticks between rebalance passes.
    pub period_ticks: u64,
    /// A donor shard always keeps at least this many idle workers.
    pub min_idle: usize,
    /// At most this many workers move out of one shard per pass.
    pub max_moves: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            period_ticks: 5,
            min_idle: 2,
            max_moves: 4,
        }
    }
}

/// Hard per-shard admission cap (kern `MAXLCM`-style cutoff): a task
/// routed to a shard whose open-task count (queued + in-flight) is at
/// the cap is refused at the door and counted as shed, instead of
/// melting the matcher with an unboundedly growing batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum open tasks a shard accepts before shedding new arrivals.
    pub max_open_tasks: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_open_tasks: 512,
        }
    }
}

/// The full cluster policy bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPolicy {
    /// Router load at which a cell is split into four sub-cells at
    /// cluster construction time (projected-load pre-splitting).
    /// `u64::MAX` disables splitting.
    pub split_threshold: u64,
    /// Cross-shard handoff, or `None` to disable.
    pub handoff: Option<HandoffPolicy>,
    /// Idle-worker rebalancing, or `None` to disable.
    pub rebalance: Option<RebalancePolicy>,
    /// Per-shard admission cap, or `None` for unbounded admission.
    pub admission: Option<AdmissionPolicy>,
}

impl ClusterPolicy {
    /// All mechanisms off: shards are fully independent, exactly the
    /// multi-region decomposition. A 1×1 single-tier cluster run is
    /// bit-identical to `MultiRegionRunner` under this policy.
    pub fn single_tier() -> Self {
        ClusterPolicy {
            split_threshold: u64::MAX,
            handoff: None,
            rebalance: None,
            admission: None,
        }
    }

    /// The coupled default: handoff, rebalancing and admission all on
    /// with their default tunings, no pre-splitting.
    pub fn coupled() -> Self {
        ClusterPolicy {
            split_threshold: u64::MAX,
            handoff: Some(HandoffPolicy::default()),
            rebalance: Some(RebalancePolicy::default()),
            admission: Some(AdmissionPolicy::default()),
        }
    }
}

impl Default for ClusterPolicy {
    fn default() -> Self {
        Self::coupled()
    }
}

/// Canonical manifest form. [`ClusterPolicy::from_manifest`] parses
/// exactly this grammar, so `from_manifest(&policy.to_string())`
/// round-trips every policy.
impl fmt::Display for ClusterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == ClusterPolicy::single_tier() {
            return write!(f, "single-tier");
        }
        let mut parts: Vec<String> = Vec::new();
        if self.split_threshold != u64::MAX {
            parts.push(format!("split({})", self.split_threshold));
        }
        if let Some(h) = self.handoff {
            parts.push(format!(
                "handoff(floor={},max={})",
                h.pool_floor, h.max_per_tick
            ));
        }
        if let Some(r) = self.rebalance {
            parts.push(format!(
                "rebalance(period={},min_idle={},max_moves={})",
                r.period_ticks, r.min_idle, r.max_moves
            ));
        }
        if let Some(a) = self.admission {
            parts.push(format!("admission({})", a.max_open_tasks));
        }
        write!(f, "{}", parts.join("+"))
    }
}

impl ClusterPolicy {
    /// Parses the declarative manifest form of a policy, so cluster
    /// admission/rebalance axes are expressible in sweep manifests.
    ///
    /// Accepted forms:
    /// - `single-tier` — [`ClusterPolicy::single_tier`];
    /// - `coupled` — [`ClusterPolicy::coupled`];
    /// - the canonical compound grammar [`Display`](fmt::Display) emits:
    ///   `+`-joined components out of `split(threshold)`,
    ///   `handoff(floor=..,max=..)`,
    ///   `rebalance(period=..,min_idle=..,max_moves=..)` and
    ///   `admission(max_open)`. Omitted mechanisms stay disabled.
    pub fn from_manifest(spec: &str) -> Result<ClusterPolicy, String> {
        let spec = spec.trim();
        match spec {
            "" => return Err("empty cluster policy spec".to_string()),
            "single-tier" | "single_tier" => return Ok(ClusterPolicy::single_tier()),
            "coupled" => return Ok(ClusterPolicy::coupled()),
            _ => {}
        }
        let mut policy = ClusterPolicy::single_tier();
        for part in spec.split('+') {
            let (name, args) = split_component(part.trim())?;
            match name {
                "split" => policy.split_threshold = parse_u64("split threshold", args)?,
                "handoff" => {
                    let kv = parse_kv(name, args, &["floor", "max"])?;
                    policy.handoff = Some(HandoffPolicy {
                        pool_floor: parse_usize("handoff.floor", req(name, &kv, "floor")?)?,
                        max_per_tick: parse_usize("handoff.max", req(name, &kv, "max")?)?,
                    });
                }
                "rebalance" => {
                    let kv = parse_kv(name, args, &["period", "min_idle", "max_moves"])?;
                    policy.rebalance = Some(RebalancePolicy {
                        period_ticks: parse_u64("rebalance.period", req(name, &kv, "period")?)?,
                        min_idle: parse_usize("rebalance.min_idle", req(name, &kv, "min_idle")?)?,
                        max_moves: parse_usize(
                            "rebalance.max_moves",
                            req(name, &kv, "max_moves")?,
                        )?,
                    });
                }
                "admission" => {
                    policy.admission = Some(AdmissionPolicy {
                        max_open_tasks: parse_usize("admission cap", args)?,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown cluster policy component '{other}' (expected \
                         single-tier, coupled, split, handoff, rebalance or admission)"
                    ))
                }
            }
        }
        Ok(policy)
    }
}

fn split_component(part: &str) -> Result<(&str, &str), String> {
    let Some(open) = part.find('(') else {
        return Err(format!("policy component '{part}' is missing '(…)'"));
    };
    let Some(stripped) = part.strip_suffix(')') else {
        return Err(format!(
            "policy component '{part}' is missing the closing ')'"
        ));
    };
    Ok((part[..open].trim(), &stripped[open + 1..]))
}

fn parse_kv<'a>(
    component: &str,
    args: &'a str,
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    for pair in args.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("{component}: expected key=value, got '{pair}'"));
        };
        let k = k.trim();
        if !allowed.contains(&k) {
            return Err(format!(
                "{component}: unknown key '{k}' (expected one of {allowed:?})"
            ));
        }
        out.push((k, v.trim()));
    }
    Ok(out)
}

fn req<'a>(component: &str, kv: &[(&str, &'a str)], key: &str) -> Result<&'a str, String> {
    kv.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("{component}: missing required key '{key}'"))
}

fn parse_u64(what: &str, s: &str) -> Result<u64, String> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| format!("{what}: '{s}' is not a non-negative integer"))
}

fn parse_usize(what: &str, s: &str) -> Result<usize, String> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| format!("{what}: '{s}' is not a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tier_disables_everything() {
        let p = ClusterPolicy::single_tier();
        assert!(p.handoff.is_none());
        assert!(p.rebalance.is_none());
        assert!(p.admission.is_none());
        assert_eq!(p.split_threshold, u64::MAX);
    }

    #[test]
    fn coupled_is_the_default_with_everything_on() {
        let p = ClusterPolicy::default();
        assert_eq!(p, ClusterPolicy::coupled());
        assert!(p.handoff.is_some());
        assert!(p.rebalance.is_some());
        assert!(p.admission.is_some());
    }

    #[test]
    fn display_round_trips_through_from_manifest() {
        let policies = [
            ClusterPolicy::single_tier(),
            ClusterPolicy::coupled(),
            ClusterPolicy {
                split_threshold: 1000,
                handoff: Some(HandoffPolicy {
                    pool_floor: 5,
                    max_per_tick: 16,
                }),
                rebalance: None,
                admission: Some(AdmissionPolicy {
                    max_open_tasks: 4096,
                }),
            },
            ClusterPolicy {
                split_threshold: u64::MAX,
                handoff: None,
                rebalance: Some(RebalancePolicy {
                    period_ticks: 7,
                    min_idle: 1,
                    max_moves: 9,
                }),
                admission: None,
            },
        ];
        for policy in policies {
            let spec = policy.to_string();
            let parsed = ClusterPolicy::from_manifest(&spec)
                .unwrap_or_else(|e| panic!("'{spec}' failed to parse: {e}"));
            assert_eq!(parsed, policy, "round-trip diverged for '{spec}'");
        }
    }

    #[test]
    fn from_manifest_accepts_named_presets() {
        assert_eq!(
            ClusterPolicy::from_manifest("single-tier"),
            Ok(ClusterPolicy::single_tier())
        );
        assert_eq!(
            ClusterPolicy::from_manifest("coupled"),
            Ok(ClusterPolicy::coupled())
        );
        let p = ClusterPolicy::from_manifest("admission(128)").unwrap();
        assert_eq!(p.admission.map(|a| a.max_open_tasks), Some(128));
        assert!(p.handoff.is_none() && p.rebalance.is_none());
    }

    #[test]
    fn from_manifest_rejects_malformed_specs() {
        for bad in [
            "",
            "bogus(1)",
            "handoff(floor=3)",      // missing max
            "handoff(floor=3,max=8", // missing )
            "rebalance(period=x,min_idle=1,max_moves=2)",
            "admission(-5)",
            "split(lots)",
        ] {
            assert!(
                ClusterPolicy::from_manifest(bad).is_err(),
                "'{bad}' should have been rejected"
            );
        }
    }
}
