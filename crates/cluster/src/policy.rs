//! Cluster-level policies: handoff, rebalancing and admission control.
//!
//! Each mechanism is optional and independently tunable; `None` disables
//! it entirely, and [`ClusterPolicy::single_tier`] disables all three —
//! the configuration under which a cluster run degenerates to the plain
//! multi-region decomposition.

/// Cross-shard task handoff: when a shard's live worker pool collapses
/// below `pool_floor` (the same trigger the recovery layer's shedding
/// uses), queued tasks are evicted and re-submitted on the edge-adjacent
/// shard with the most online workers, instead of being dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffPolicy {
    /// Online-worker count below which the shard starts handing off its
    /// queue. Mirrors `RecoveryConfig::pool_floor`.
    pub pool_floor: usize,
    /// At most this many tasks leave a shard per cluster tick — a drip,
    /// not a flood, so the receiving shard's batch sizes stay bounded.
    pub max_per_tick: usize,
}

impl Default for HandoffPolicy {
    fn default() -> Self {
        HandoffPolicy {
            pool_floor: 3,
            max_per_tick: 8,
        }
    }
}

/// Periodic idle-worker rebalancing between adjacent shards, after
/// kern's `relocate_free_cabs`: every `period_ticks` cluster ticks, a
/// shard with surplus idle workers relocates some of them to the
/// edge-adjacent shard with the largest backlog deficit. Relocated
/// workers re-enter the target shard at a position drawn from the
/// dedicated `cluster.rebalance` RNG stream, keeping runs
/// bit-reproducible from the master seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePolicy {
    /// Cluster ticks between rebalance passes.
    pub period_ticks: u64,
    /// A donor shard always keeps at least this many idle workers.
    pub min_idle: usize,
    /// At most this many workers move out of one shard per pass.
    pub max_moves: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            period_ticks: 5,
            min_idle: 2,
            max_moves: 4,
        }
    }
}

/// Hard per-shard admission cap (kern `MAXLCM`-style cutoff): a task
/// routed to a shard whose open-task count (queued + in-flight) is at
/// the cap is refused at the door and counted as shed, instead of
/// melting the matcher with an unboundedly growing batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Maximum open tasks a shard accepts before shedding new arrivals.
    pub max_open_tasks: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_open_tasks: 512,
        }
    }
}

/// The full cluster policy bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterPolicy {
    /// Router load at which a cell is split into four sub-cells at
    /// cluster construction time (projected-load pre-splitting).
    /// `u64::MAX` disables splitting.
    pub split_threshold: u64,
    /// Cross-shard handoff, or `None` to disable.
    pub handoff: Option<HandoffPolicy>,
    /// Idle-worker rebalancing, or `None` to disable.
    pub rebalance: Option<RebalancePolicy>,
    /// Per-shard admission cap, or `None` for unbounded admission.
    pub admission: Option<AdmissionPolicy>,
}

impl ClusterPolicy {
    /// All mechanisms off: shards are fully independent, exactly the
    /// multi-region decomposition. A 1×1 single-tier cluster run is
    /// bit-identical to `MultiRegionRunner` under this policy.
    pub fn single_tier() -> Self {
        ClusterPolicy {
            split_threshold: u64::MAX,
            handoff: None,
            rebalance: None,
            admission: None,
        }
    }

    /// The coupled default: handoff, rebalancing and admission all on
    /// with their default tunings, no pre-splitting.
    pub fn coupled() -> Self {
        ClusterPolicy {
            split_threshold: u64::MAX,
            handoff: Some(HandoffPolicy::default()),
            rebalance: Some(RebalancePolicy::default()),
            admission: Some(AdmissionPolicy::default()),
        }
    }
}

impl Default for ClusterPolicy {
    fn default() -> Self {
        Self::coupled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tier_disables_everything() {
        let p = ClusterPolicy::single_tier();
        assert!(p.handoff.is_none());
        assert!(p.rebalance.is_none());
        assert!(p.admission.is_none());
        assert_eq!(p.split_threshold, u64::MAX);
    }

    #[test]
    fn coupled_is_the_default_with_everything_on() {
        let p = ClusterPolicy::default();
        assert_eq!(p, ClusterPolicy::coupled());
        assert!(p.handoff.is_some());
        assert!(p.rebalance.is_some());
        assert!(p.admission.is_some());
    }
}
