//! Sharded cluster mode for REACT.
//!
//! The crates below this one model a *single* REACT server
//! ([`react_core`]) and a static multi-region decomposition
//! (`react_crowd::MultiRegionRunner`: independent per-region servers,
//! no interaction). This crate lifts both into a real cluster layer:
//!
//! * [`Cluster`] — one [`react_core::ReactServer`] per
//!   [`react_geo::RegionRouter`] leaf cell (including post-split
//!   children), with worker/task routing, live router load accounting,
//!   and three coupling mechanisms on top:
//!   1. **cross-shard task handoff** — when a shard's online pool falls
//!      below the recovery-style pool floor, queued tasks are evicted
//!      (audited as `HandedOff`) and re-submitted on the strongest
//!      edge-adjacent shard with their absolute deadline preserved;
//!   2. **idle-worker rebalancing** — a periodic pass relocating surplus
//!      idle workers toward adjacent shards with backlog deficits,
//!      bit-reproducible via the dedicated `cluster.rebalance` RNG
//!      stream;
//!   3. **admission caps** — a hard per-shard open-task ceiling shedding
//!      excess ingress at the door, reported on `shard.admission_shed`.
//! * [`ClusterRunner`] — a discrete-event harness driving a whole
//!   crowdsourcing scenario (arrivals, churn, faults, completions)
//!   through a [`Cluster`], with per-shard reports, a cluster-wide
//!   conservation identity, and serial/parallel bit-identity.
//!
//! With [`ClusterPolicy::single_tier`] every mechanism is off and a 1×1
//! cluster run reproduces `MultiRegionRunner` bit for bit — the
//! refactoring proof that this layer is a superset of the old one.

mod cluster;
mod policy;
mod runner;

pub use cluster::{grid_cluster, Cluster, ClusterTickOutcome, Handoff, Relocation, Submission};
pub use policy::{AdmissionPolicy, ClusterPolicy, HandoffPolicy, RebalancePolicy};
pub use runner::{ClusterReport, ClusterRunner, ClusterScenario, ShardReport};
