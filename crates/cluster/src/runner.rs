//! The cluster-wide discrete-event harness.
//!
//! [`ClusterRunner`] drives a whole crowdsourcing scenario — Poisson
//! arrivals, worker faults, completions — through a [`Cluster`], i.e.
//! through *interacting* shards: tasks hand off between shards when a
//! pool collapses, idle workers migrate toward backlogs, and admission
//! caps shed overload at the door. This is the coupled counterpart of
//! `react_crowd::MultiRegionRunner`, whose regions never interact.
//!
//! Two execution paths:
//!
//! * [`ClusterRunner::run`] — the coupled event loop. One global event
//!   queue; every control tick steps all shards (serially or on scoped
//!   threads) and then runs the cluster passes. Serial and parallel
//!   shard execution are bit-identical.
//! * [`ClusterRunner::run_single_tier`] — the degenerate fallback:
//!   partitions the scenario with `react_crowd::partition_scenarios`
//!   and replays each region through a plain `ScenarioRunner`, exactly
//!   as `MultiRegionRunner` does. Because both call the same partition
//!   function and the same per-region runner, the result is
//!   bit-identical to `MultiRegionRunner` *by construction*.
//!
//! Scope of the coupled mode: `global.replication` and `global.churn`
//! are ignored (replica voting and autonomous churn cycles stay on the
//! single-server runner); worker faults, bursts, abandons and message
//! loss from `react_faults::FaultPlan` are fully supported.

use crate::cluster::Cluster;
use crate::policy::ClusterPolicy;
use rand::Rng;
use react_core::{AuditLog, Task, TaskCategory, TaskId, WorkerId};
use react_crowd::{
    generate_population, partition_scenarios, MultiRegionReport, Scenario, ScenarioRunner,
    WorkerBehavior,
};
use react_faults::FaultSchedule;
use react_geo::{GeoPoint, RegionGrid, ServerId};
use react_obs::{null_observer, CounterKind, ObserverHandle, SpanKind, SpanTimer};
use react_sim::{RngStreams, SimDuration, SimTime, Simulator};
use std::collections::HashMap;

/// Burst task ids live far outside the workload id space (same base as
/// the single-server runner).
const BURST_ID_BASE: u64 = 1 << 40;

/// Configuration of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterScenario {
    /// Global parameters: `n_workers`, `arrival_rate` and `total_tasks`
    /// are cluster-wide totals, `region` is the whole covered area.
    pub global: Scenario,
    /// Latitude bands of the initial shard grid.
    pub rows: u32,
    /// Longitude bands of the initial shard grid.
    pub cols: u32,
    /// Cluster policy (handoff / rebalance / admission / pre-split).
    pub policy: ClusterPolicy,
}

/// Per-shard accounting of one cluster run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// The shard's server id (router leaf cell).
    pub server: ServerId,
    /// Tasks routed to and accepted by this shard (handoffs excluded).
    pub received: u64,
    /// Tasks this shard completed.
    pub completed: u64,
    /// Completions before the deadline.
    pub met_deadline: u64,
    /// Positive feedbacks earned.
    pub positive_feedback: u64,
    /// Tasks that expired unassigned on this shard (including queued
    /// leftovers at the horizon).
    pub expired_unassigned: u64,
    /// Tasks refused at this shard's admission cap.
    pub admission_shed: u64,
    /// Tasks this shard handed off to neighbours.
    pub handoffs_out: u64,
    /// Tasks this shard received via handoff.
    pub handoffs_in: u64,
    /// Eq. (2) recalls performed by this shard.
    pub reassignments: u64,
    /// Tasks shed by the shard's own recovery layer.
    pub sheds: u64,
    /// Tasks still assigned when the run ended.
    pub stranded: u64,
    /// Matching batches run.
    pub batches: u64,
    /// Modelled scheduler compute time (seconds).
    pub total_matching_seconds: f64,
    /// Workers mapped to this shard at the end (after rebalancing).
    pub workers_final: usize,
    /// Final-worker execution time per completed task.
    pub exec_times: Vec<f64>,
    /// First-submission→completion time per completed task (measured
    /// from the task's *original* submission, across handoffs).
    pub total_times: Vec<f64>,
    /// The shard's audit log, when `config.audit` was enabled.
    pub audit: Option<AuditLog>,
}

/// Aggregated outcome of a coupled cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Scenario label.
    pub label: String,
    /// Per-shard reports, in shard order.
    pub shards: Vec<ShardReport>,
    /// Tasks that arrived cluster-wide (workload + bursts).
    pub received: u64,
    /// Tasks whose location fell outside every shard (0 for workloads
    /// generated inside the area).
    pub unroutable: u64,
    /// Workers relocated by the rebalance passes.
    pub workers_rebalanced: u64,
    /// Injected burst tasks.
    pub burst_tasks: u64,
    /// Assignments silently abandoned by the fault plan.
    pub abandons: u64,
    /// Completion messages lost in flight.
    pub completions_lost: u64,
    /// Duplicate completion deliveries the servers rejected.
    pub duplicates_rejected: u64,
    /// Simulated duration (seconds).
    pub sim_duration: f64,
}

impl ClusterReport {
    /// Cluster-wide completions.
    pub fn completed(&self) -> u64 {
        self.shards.iter().map(|s| s.completed).sum()
    }

    /// Cluster-wide deadline-met count.
    pub fn met_deadline(&self) -> u64 {
        self.shards.iter().map(|s| s.met_deadline).sum()
    }

    /// Cluster-wide positive feedbacks.
    pub fn positive_feedback(&self) -> u64 {
        self.shards.iter().map(|s| s.positive_feedback).sum()
    }

    /// Cluster-wide expiries (incl. queued leftovers at the horizon).
    pub fn expired_unassigned(&self) -> u64 {
        self.shards.iter().map(|s| s.expired_unassigned).sum()
    }

    /// Cluster-wide admission sheds.
    pub fn admission_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.admission_shed).sum()
    }

    /// Cluster-wide stranded (still-assigned) tasks.
    pub fn stranded(&self) -> u64 {
        self.shards.iter().map(|s| s.stranded).sum()
    }

    /// Cluster-wide handoffs (out == in when conservation holds).
    pub fn handoffs(&self) -> u64 {
        self.shards.iter().map(|s| s.handoffs_out).sum()
    }

    /// Fraction of received tasks that met their deadline.
    pub fn deadline_ratio(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.met_deadline() as f64 / self.received as f64
        }
    }

    /// The conservation identity: every task that arrived is accounted
    /// for exactly once — completed somewhere, expired somewhere, shed
    /// at an admission cap, stranded in a faulty worker's hands, or
    /// unroutable. Handoffs move tasks between shards without creating
    /// or destroying them, so they must also balance pairwise.
    pub fn conserved(&self) -> bool {
        let accounted = self.completed()
            + self.expired_unassigned()
            + self.admission_shed()
            + self.stranded()
            + self.unroutable;
        let handoffs_balanced = self.shards.iter().map(|s| s.handoffs_out).sum::<u64>()
            == self.shards.iter().map(|s| s.handoffs_in).sum::<u64>();
        accounted == self.received && handoffs_balanced
    }

    /// Whether two cluster reports are bit-identical across every
    /// per-shard metric including the full per-task time series — the
    /// check behind the serial/parallel determinism guarantee.
    pub fn identical(&self, other: &ClusterReport) -> bool {
        self.received == other.received
            && self.unroutable == other.unroutable
            && self.workers_rebalanced == other.workers_rebalanced
            && self.burst_tasks == other.burst_tasks
            && self.abandons == other.abandons
            && self.completions_lost == other.completions_lost
            && self.duplicates_rejected == other.duplicates_rejected
            && self.sim_duration.to_bits() == other.sim_duration.to_bits()
            && self.shards.len() == other.shards.len()
            && self.shards.iter().zip(other.shards.iter()).all(|(a, b)| {
                a.server == b.server
                    && a.received == b.received
                    && a.completed == b.completed
                    && a.met_deadline == b.met_deadline
                    && a.positive_feedback == b.positive_feedback
                    && a.expired_unassigned == b.expired_unassigned
                    && a.admission_shed == b.admission_shed
                    && a.handoffs_out == b.handoffs_out
                    && a.handoffs_in == b.handoffs_in
                    && a.reassignments == b.reassignments
                    && a.sheds == b.sheds
                    && a.stranded == b.stranded
                    && a.batches == b.batches
                    && a.total_matching_seconds.to_bits() == b.total_matching_seconds.to_bits()
                    && a.workers_final == b.workers_final
                    && a.exec_times == b.exec_times
                    && a.total_times == b.total_times
            })
    }
}

/// How the per-tick shard execution is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardExec {
    /// Honour the `parallel` feature and `REACT_PARALLEL_THREADS`.
    Auto,
    /// Force the serial baseline.
    Serial,
    /// Force the scoped-thread path.
    Parallel,
}

/// Events driving the cluster simulation.
#[derive(Debug)]
enum Event {
    /// A requester submits a task somewhere in the area.
    Arrival(Task),
    /// Cluster-wide control step: every shard ticks, then the handoff
    /// and (periodically) rebalance passes run.
    Tick,
    /// A worker finishes a task it was assigned on `shard`.
    Finish {
        shard: ServerId,
        task: TaskId,
        worker: WorkerId,
        epoch: u32,
    },
    /// A fault-plan dropout (recalls any held task on the worker's
    /// current shard).
    WorkerOffline(WorkerId),
    /// A dropped-out worker rejoins its current shard.
    WorkerOnline(WorkerId),
    /// A fault-plan burst: `size` extra tasks at one instant.
    Burst { size: u32 },
}

/// Runs one [`ClusterScenario`] to completion.
pub struct ClusterRunner {
    scenario: ClusterScenario,
    observer: ObserverHandle,
}

impl ClusterRunner {
    /// Creates a runner.
    pub fn new(scenario: ClusterScenario) -> Self {
        ClusterRunner {
            scenario,
            observer: null_observer(),
        }
    }

    /// Attaches an observability sink shared by every shard server; the
    /// cluster additionally reports `shard.tick` spans and the
    /// `shard.*` counters. Observers are write-only: reports stay
    /// bit-identical whatever sink is attached.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// The coupled cluster run. With the `parallel` feature (and
    /// `REACT_PARALLEL_THREADS` ≠ 1) shards tick on scoped threads;
    /// otherwise serially. Both are bit-identical.
    pub fn run(&self) -> ClusterReport {
        self.run_with(ShardExec::Auto)
    }

    /// The serial baseline: shards tick one after another.
    pub fn run_serial(&self) -> ClusterReport {
        self.run_with(ShardExec::Serial)
    }

    /// Forces the scoped-thread shard path (always compiled; thread
    /// count bounded by `react_core::par::parallelism`).
    pub fn run_parallel(&self) -> ClusterReport {
        self.run_with(ShardExec::Parallel)
    }

    /// The degenerate single-tier fallback: no coupling mechanisms, no
    /// shared event queue — the scenario is partitioned by
    /// `react_crowd::partition_scenarios` and each region replays
    /// through a plain `ScenarioRunner`, exactly as
    /// `MultiRegionRunner::run_serial` does. Bit-identical to the
    /// multi-region runner by construction (both call the same
    /// partition function and per-region runner with the same seeds).
    pub fn run_single_tier(&self) -> MultiRegionReport {
        let per_region = partition_scenarios(
            &self.scenario.global,
            self.scenario.rows,
            self.scenario.cols,
        )
        .into_iter()
        .map(|(region_id, sc)| {
            let enabled = self.observer.enabled();
            let timer = enabled.then(SpanTimer::start);
            let report = ScenarioRunner::new(sc)
                .with_observer(self.observer.clone())
                .run();
            if let Some(timer) = timer {
                timer.finish(self.observer.as_ref(), SpanKind::RegionRun);
                self.observer.incr(CounterKind::RegionsRun, 1);
            }
            (region_id, report)
        })
        .collect();
        MultiRegionReport { per_region }
    }

    fn run_with(&self, exec: ShardExec) -> ClusterReport {
        let sc = &self.scenario.global;
        let grid = RegionGrid::new(sc.region, self.scenario.rows, self.scenario.cols)
            .expect("non-zero grid dimensions");
        let streams = RngStreams::new(sc.seed ^ 0xc1);
        let mut pop_rng = streams.stream("population");
        let mut workload_rng = streams.stream("workload");
        let mut behavior_rng = streams.stream("behavior");
        let mut burst_rng = streams.stream("fault.burst-tasks");
        let fault_schedule = match &sc.faults {
            Some(plan) if !plan.is_noop() => plan.materialize(&streams, sc.n_workers),
            _ => FaultSchedule::none(),
        };

        // Crowd: behaviours first, then locations, both from the
        // population stream (mirroring the single-server runner's draw
        // order). The locations double as the pre-split projection.
        let behaviors: Vec<WorkerBehavior> =
            generate_population(sc.n_workers, &sc.behavior, &mut pop_rng);
        let locations: Vec<GeoPoint> = (0..sc.n_workers)
            .map(|_| sc.region.random_point(&mut pop_rng))
            .collect();

        let mut cluster = Cluster::new(
            &grid,
            sc.config.clone(),
            sc.seed,
            self.scenario.policy,
            self.observer.clone(),
            streams.stream("cluster.rebalance"),
            &locations,
        )
        .expect("scenario carries a valid middleware config");
        for (w, location) in locations.iter().enumerate() {
            cluster.register_worker(WorkerId(w as u64), *location);
        }

        let server_ids = cluster.server_ids();
        let shard_index: HashMap<ServerId, usize> = server_ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        let n_shards = server_ids.len();
        let mut shards: Vec<ShardReport> = server_ids
            .iter()
            .map(|&server| ShardReport {
                server,
                received: 0,
                completed: 0,
                met_deadline: 0,
                positive_feedback: 0,
                expired_unassigned: 0,
                admission_shed: 0,
                handoffs_out: 0,
                handoffs_in: 0,
                reassignments: 0,
                sheds: 0,
                stranded: 0,
                batches: 0,
                total_matching_seconds: 0.0,
                workers_final: 0,
                exec_times: Vec::new(),
                total_times: Vec::new(),
                audit: None,
            })
            .collect();
        let mut report = ClusterReport {
            label: sc.label.clone(),
            shards: Vec::new(),
            received: 0,
            unroutable: 0,
            workers_rebalanced: 0,
            burst_tasks: 0,
            abandons: 0,
            completions_lost: 0,
            duplicates_rejected: 0,
            sim_duration: 0.0,
        };

        // Preload the whole workload (preset replay or Poisson stream).
        let workload: Vec<(f64, Task)> = match &sc.workload {
            Some(preset) => preset.clone(),
            None => react_crowd::TaskGenerator::new(sc.arrival_rate, sc.region)
                .with_deadline_range(sc.deadline_range.0, sc.deadline_range.1)
                .with_categories(sc.n_categories)
                .take_n(sc.total_tasks, &mut workload_rng),
        };
        let total_tasks = workload.len();

        let mut sim: Simulator<Event> = Simulator::new();
        for (at, task) in workload {
            sim.schedule_at(SimTime::from_secs(at), Event::Arrival(task));
        }
        sim.schedule_in(SimDuration::from_secs(sc.tick_interval), Event::Tick);
        for d in fault_schedule.dropouts() {
            if d.worker >= sc.n_workers {
                continue;
            }
            sim.schedule_at(
                SimTime::from_secs(d.at),
                Event::WorkerOffline(WorkerId(d.worker as u64)),
            );
            if let Some(rejoin) = d.rejoin_at {
                sim.schedule_at(
                    SimTime::from_secs(rejoin),
                    Event::WorkerOnline(WorkerId(d.worker as u64)),
                );
            }
        }
        for &(at, size) in fault_schedule.bursts() {
            sim.schedule_at(SimTime::from_secs(at), Event::Burst { size });
        }

        // Global per-task epoch counters (a recall invalidates pending
        // finishes), first-submission times (total_times span handoffs),
        // and per-worker FIFO release times.
        let mut epochs: HashMap<TaskId, u32> = HashMap::new();
        let mut first_submitted: HashMap<TaskId, f64> = HashMap::new();
        let mut next_free: Vec<f64> = vec![0.0; sc.n_workers];
        let mut last_arrival_at = 0.0f64;

        while let Some((at, event)) = sim.next_event() {
            let now = at.as_secs();
            match event {
                Event::Arrival(task) => {
                    report.received += 1;
                    last_arrival_at = now;
                    let task_id = task.id;
                    match cluster.submit_task(task, now) {
                        crate::cluster::Submission::Accepted(server) => {
                            let i = shard_index[&server];
                            shards[i].received += 1;
                            first_submitted.entry(task_id).or_insert(now);
                            // Arrival doubles as a local control step so
                            // the batch trigger reacts immediately.
                            if let Some((_, outcome)) = cluster.tick_shard(server, now) {
                                apply_outcome(
                                    server,
                                    &outcome,
                                    now,
                                    &behaviors,
                                    &mut behavior_rng,
                                    &fault_schedule,
                                    &mut epochs,
                                    &mut next_free,
                                    &mut sim,
                                    &mut shards[i],
                                    &mut report,
                                );
                            }
                        }
                        crate::cluster::Submission::Shed(_) => {}
                        crate::cluster::Submission::Unroutable => report.unroutable += 1,
                    }
                }
                Event::Burst { size } => {
                    for _ in 0..size {
                        let id = TaskId(BURST_ID_BASE + report.burst_tasks);
                        let deadline = burst_rng.gen_range(
                            sc.deadline_range.0
                                ..sc.deadline_range.1.max(sc.deadline_range.0 + f64::EPSILON),
                        );
                        let reward = burst_rng.gen_range(0.01..0.10);
                        let category = TaskCategory(burst_rng.gen_range(0..sc.n_categories.max(1)));
                        let task = Task::new(
                            id,
                            sc.region.random_point(&mut burst_rng),
                            deadline,
                            reward,
                            category,
                            "burst",
                        );
                        report.received += 1;
                        report.burst_tasks += 1;
                        if let crate::cluster::Submission::Accepted(server) =
                            cluster.submit_task(task, now)
                        {
                            shards[shard_index[&server]].received += 1;
                            first_submitted.entry(id).or_insert(now);
                        }
                    }
                    last_arrival_at = now;
                }
                Event::Tick => {
                    let outcome = match exec {
                        ShardExec::Auto => cluster.tick(now),
                        ShardExec::Serial => cluster.tick_serial(now),
                        ShardExec::Parallel => cluster.tick_parallel(now),
                    };
                    for (server, shard_outcome) in &outcome.shard_ticks {
                        let i = shard_index[server];
                        apply_outcome(
                            *server,
                            shard_outcome,
                            now,
                            &behaviors,
                            &mut behavior_rng,
                            &fault_schedule,
                            &mut epochs,
                            &mut next_free,
                            &mut sim,
                            &mut shards[i],
                            &mut report,
                        );
                    }
                    let workload_done =
                        (report.received - report.burst_tasks) as usize >= total_tasks;
                    let tasks_open = (0..n_shards).any(|i| {
                        let server = cluster.server(server_ids[i]).expect("shard exists");
                        server.tasks().unassigned_count() > 0 || server.tasks().assigned_count() > 0
                    });
                    let past_horizon = workload_done && now > last_arrival_at + sc.drain_horizon;
                    if (!workload_done || tasks_open) && !past_horizon {
                        sim.schedule_in(SimDuration::from_secs(sc.tick_interval), Event::Tick);
                    }
                }
                Event::WorkerOffline(worker) => {
                    for task in cluster.worker_offline(worker, now) {
                        *epochs.entry(task).or_insert(0) += 1;
                    }
                    next_free[worker.0 as usize] = now;
                }
                Event::WorkerOnline(worker) => {
                    cluster.worker_online(worker);
                }
                Event::Finish {
                    shard,
                    task,
                    worker,
                    epoch,
                } => {
                    if epochs.get(&task).copied() != Some(epoch) {
                        continue; // stale: the task was recalled (or moved)
                    }
                    if fault_schedule.loses_completion(task.0, epoch) {
                        report.completions_lost += 1;
                        continue;
                    }
                    let behavior = &behaviors[worker.0 as usize];
                    let quality_ok = behavior.sample_quality_ok(&mut behavior_rng);
                    let outcome = cluster
                        .complete_task(shard, task, worker, now, quality_ok)
                        .expect("valid-epoch finish events match the assignment");
                    let i = shard_index[&shard];
                    shards[i].completed += 1;
                    if outcome.met_deadline {
                        shards[i].met_deadline += 1;
                    }
                    if outcome.positive_feedback {
                        shards[i].positive_feedback += 1;
                    }
                    shards[i].exec_times.push(outcome.exec_time);
                    let t0 = first_submitted.get(&task).copied().unwrap_or(now);
                    shards[i].total_times.push(now - t0);
                    if fault_schedule.duplicates_completion(task.0, epoch)
                        && cluster
                            .complete_task(shard, task, worker, now, quality_ok)
                            .is_err()
                    {
                        report.duplicates_rejected += 1;
                    }
                }
            }
            report.sim_duration = now;
        }

        // Horizon accounting + per-shard server stats.
        for (i, &server_id) in server_ids.iter().enumerate() {
            let server = cluster.server(server_id).expect("shard exists");
            shards[i].expired_unassigned += server.tasks().unassigned_count() as u64;
            shards[i].stranded = server.tasks().assigned_count() as u64;
            shards[i].batches = server.batches_run();
            shards[i].total_matching_seconds = server.total_matching_seconds();
            shards[i].audit = server.audit().cloned();
            shards[i].admission_shed = cluster.admission_shed()[i];
            shards[i].handoffs_out = cluster.handoffs_out()[i];
            shards[i].handoffs_in = cluster.handoffs_in()[i];
        }
        for (i, n) in cluster.workers_per_shard().into_iter().enumerate() {
            shards[i].workers_final = n;
        }
        report.workers_rebalanced = cluster.workers_rebalanced();
        report.shards = shards;
        report
    }
}

/// Applies one shard tick outcome to the global event queue and the
/// shard's report: expiries and sheds retire tasks, recalls invalidate
/// pending finishes, fresh assignments schedule them.
#[allow(clippy::too_many_arguments)]
fn apply_outcome(
    shard: ServerId,
    outcome: &react_core::TickOutcome,
    now: f64,
    behaviors: &[WorkerBehavior],
    behavior_rng: &mut rand::rngs::SmallRng,
    fault_schedule: &FaultSchedule,
    epochs: &mut HashMap<TaskId, u32>,
    next_free: &mut [f64],
    sim: &mut Simulator<Event>,
    shard_report: &mut ShardReport,
    report: &mut ClusterReport,
) {
    shard_report.expired_unassigned += outcome.expired.len() as u64;
    shard_report.expired_unassigned += outcome.shed.len() as u64;
    shard_report.sheds += outcome.shed.len() as u64;
    for recall in &outcome.recalls {
        *epochs.entry(recall.task).or_insert(0) += 1;
        shard_report.reassignments += 1;
        next_free[recall.worker.0 as usize] = now;
    }
    for &(worker, task) in &outcome.assignments {
        let epoch = {
            let e = epochs.entry(task).or_insert(0);
            *e += 1;
            *e
        };
        let w = worker.0 as usize;
        let start = outcome.effective_at.max(next_free[w]);
        let exec_time =
            behaviors[w].sample_exec_time(behavior_rng) * fault_schedule.slowdown_factor(w);
        next_free[w] = start + exec_time;
        if fault_schedule.abandons(task.0, epoch) {
            report.abandons += 1;
            continue;
        }
        sim.schedule_at(
            SimTime::from_secs(start + exec_time),
            Event::Finish {
                shard,
                task,
                worker,
                epoch,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AdmissionPolicy, HandoffPolicy, RebalancePolicy};
    use react_core::MatcherPolicy;
    use react_crowd::MultiRegionRunner;

    fn scenario(seed: u64, rows: u32, cols: u32, policy: ClusterPolicy) -> ClusterScenario {
        let mut global = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
        global.n_workers = 60;
        global.arrival_rate = 4.0;
        global.total_tasks = 240;
        ClusterScenario {
            global,
            rows,
            cols,
            policy,
        }
    }

    #[test]
    fn coupled_run_conserves_every_task() {
        let r = ClusterRunner::new(scenario(1, 2, 2, ClusterPolicy::coupled())).run_serial();
        assert_eq!(r.received, 240);
        assert_eq!(r.unroutable, 0, "generator stays inside the area");
        assert!(r.conserved(), "conservation identity must hold: {r:?}");
        assert!(r.completed() > 0);
        assert!(r.met_deadline() <= r.completed());
        assert_eq!(r.shards.len(), 4);
        let per_shard_received: u64 = r.shards.iter().map(|s| s.received).sum();
        assert_eq!(per_shard_received + r.admission_shed() + r.unroutable, 240);
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let runner = ClusterRunner::new(scenario(2, 2, 2, ClusterPolicy::coupled()));
        let serial = runner.run_serial();
        let parallel = runner.run_parallel();
        assert!(
            serial.identical(&parallel),
            "parallel shard execution must not perturb any result"
        );
        assert!(serial.identical(&runner.run()));
        let other = ClusterRunner::new(scenario(3, 2, 2, ClusterPolicy::coupled())).run_serial();
        assert!(!serial.identical(&other), "different seeds should differ");
    }

    #[test]
    fn single_tier_matches_multiregion_bit_for_bit() {
        let sc = scenario(4, 2, 2, ClusterPolicy::single_tier());
        let cluster = ClusterRunner::new(sc.clone()).run_single_tier();
        let multi = MultiRegionRunner::new(react_crowd::MultiRegionScenario {
            global: sc.global,
            rows: sc.rows,
            cols: sc.cols,
        })
        .run_serial();
        assert!(
            cluster.identical(&multi),
            "single-tier cluster must reproduce the multi-region runner"
        );
    }

    #[test]
    fn handoffs_rescue_tasks_from_a_depleted_shard() {
        // Drop half the crowd early via the fault plan; handoff keeps
        // queues moving toward whichever shards still have workers.
        let mut sc = scenario(5, 2, 2, ClusterPolicy::coupled());
        sc.policy.handoff = Some(HandoffPolicy {
            pool_floor: 8,
            max_per_tick: 16,
        });
        sc.policy.rebalance = None;
        sc.global.faults = Some(react_faults::FaultPlan {
            dropout: Some(react_faults::DropoutPlan {
                probability: 0.6,
                window: (1.0, 20.0),
                offline_range: None,
            }),
            ..react_faults::FaultPlan::none()
        });
        let r = ClusterRunner::new(sc).run_serial();
        assert!(r.conserved(), "conservation under handoff: {r:?}");
        assert!(
            r.handoffs() > 0,
            "pool collapse must trigger handoffs: {r:?}"
        );
    }

    #[test]
    fn rebalancing_moves_workers_and_stays_conserved() {
        let mut sc = scenario(6, 2, 2, ClusterPolicy::coupled());
        sc.policy.rebalance = Some(RebalancePolicy {
            period_ticks: 2,
            min_idle: 1,
            max_moves: 4,
        });
        let r = ClusterRunner::new(sc.clone()).run_serial();
        assert!(r.conserved());
        let total_workers: usize = r.shards.iter().map(|s| s.workers_final).sum();
        assert_eq!(total_workers, sc.global.n_workers, "workers conserved");
    }

    #[test]
    fn admission_cap_sheds_and_still_conserves() {
        let mut sc = scenario(7, 1, 1, ClusterPolicy::coupled());
        sc.policy.admission = Some(AdmissionPolicy { max_open_tasks: 5 });
        sc.policy.handoff = None;
        sc.global.arrival_rate = 40.0; // slam the single shard
        let r = ClusterRunner::new(sc).run_serial();
        assert!(r.admission_shed() > 0, "overload must shed: {r:?}");
        assert!(r.conserved());
    }

    #[test]
    fn audit_logs_verify_across_handoffs() {
        let mut sc = scenario(8, 2, 2, ClusterPolicy::coupled());
        sc.global.config.audit = true;
        sc.policy.handoff = Some(HandoffPolicy {
            pool_floor: 8,
            max_per_tick: 16,
        });
        sc.global.faults = Some(react_faults::FaultPlan {
            dropout: Some(react_faults::DropoutPlan {
                probability: 0.4,
                window: (1.0, 20.0),
                offline_range: None,
            }),
            ..react_faults::FaultPlan::none()
        });
        let r = ClusterRunner::new(sc).run_serial();
        assert!(r.conserved());
        let mut verified = 0;
        for shard in &r.shards {
            let log = shard.audit.as_ref().expect("audit enabled");
            verified += react_core::verify_lifecycles(log);
        }
        assert!(verified > 0, "audit logs must cover the workload");
    }

    #[test]
    fn coupled_run_is_deterministic() {
        let a = ClusterRunner::new(scenario(9, 2, 2, ClusterPolicy::coupled())).run_serial();
        let b = ClusterRunner::new(scenario(9, 2, 2, ClusterPolicy::coupled())).run_serial();
        assert!(a.identical(&b));
    }
}
