//! Self-test for the invariant gate, covering the two acceptance-side
//! behaviours:
//!
//! 1. a rule-violating line added to `react-core` is detected (the CLI
//!    exits non-zero exactly when the divergence list is non-empty), and
//! 2. the committed tree passes against the checked-in baseline.

use std::fs;
use std::path::{Path, PathBuf};

use react_analyze::rules::{Rule, ScannedFile};
use react_analyze::{Baseline, Workspace};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Builds a throwaway workspace with one react-core source file.
fn synthetic_workspace(name: &str, core_source: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("react-analyze-self-{name}"));
    fs::remove_dir_all(&root).ok();
    let core_src = root.join("crates/core/src");
    fs::create_dir_all(&core_src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("root manifest");
    fs::write(
        root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"react-core\"\nversion = \"0.1.0\"\n\n[features]\nparallel = []\n",
    )
    .expect("core manifest");
    fs::write(core_src.join("offender.rs"), core_source).expect("source");
    root
}

#[test]
fn violating_line_in_react_core_fails_the_gate() {
    let root = synthetic_workspace(
        "violations",
        "pub fn tick() {\n    let t = std::time::Instant::now();\n    let x = compute().unwrap();\n    if x == 0.5 {\n        let r = rand::thread_rng();\n    }\n}\n#[cfg(feature = \"turbo\")]\npub fn gated() {}\n",
    );
    let ws = Workspace::open(&root).expect("open synthetic workspace");
    let outcome = ws.check().expect("scan");
    let rules: Vec<Rule> = outcome.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&Rule::NoWallClock), "wall clock: {rules:?}");
    assert!(rules.contains(&Rule::NoPanicInLib), "panic: {rules:?}");
    assert!(rules.contains(&Rule::NoFloatEq), "float eq: {rules:?}");
    assert!(rules.contains(&Rule::NoAmbientRng), "rng: {rules:?}");
    assert!(rules.contains(&Rule::FeatureGateHygiene), "gate: {rules:?}");

    // Against an empty baseline every violation is a divergence — this is
    // exactly the condition under which the CLI exits non-zero.
    let divergences = outcome.against(&Baseline::empty());
    assert!(!divergences.is_empty());

    // Grandfather everything and the gate passes again.
    let grandfathered = Baseline::from_violations(&outcome.violations);
    assert!(outcome.against(&grandfathered).is_empty());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn adding_a_violation_to_existing_react_core_file_is_detected() {
    // Take a real react-core source file, count its violations, then
    // append an offending line and assert the count strictly grows —
    // i.e. debt cannot hide behind the baseline.
    let path = repo_root().join("crates/core/src/scheduling.rs");
    let original = fs::read_to_string(&path).expect("read scheduling.rs");
    let rel = "crates/core/src/scheduling.rs";
    let before = ScannedFile::new(rel, &original).check_token_rules().len();
    let tampered = format!("{original}\npub fn sneak() {{ let t = std::time::Instant::now(); }}\n");
    let after = ScannedFile::new(rel, &tampered).check_token_rules().len();
    assert_eq!(
        after,
        before + 1,
        "appended wall-clock call must be flagged"
    );
}

#[test]
fn committed_tree_passes_against_checked_in_baseline() {
    let ws = Workspace::open(&repo_root()).expect("open repo");
    let outcome = ws.check().expect("scan repo");
    assert!(outcome.files_scanned > 50, "walker found the workspace");
    let baseline = ws.load_baseline().expect("load checked-in baseline");
    let divergences = outcome.against(&baseline);
    assert!(
        divergences.is_empty(),
        "committed tree must pass the gate:\n{}",
        divergences
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_file_is_checked_in_and_parses() {
    let path = repo_root().join("analyze-baseline.toml");
    let text = fs::read_to_string(&path).expect("analyze-baseline.toml is checked in");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    assert!(
        baseline.total() > 0,
        "remaining grandfathered debt is recorded"
    );
}
