//! Self-test for the invariant gate, covering the acceptance-side
//! behaviours:
//!
//! 1. a rule-violating line added to `react-core` is detected (the CLI
//!    exits non-zero exactly when the divergence list is non-empty),
//! 2. the committed tree passes against the checked-in baseline,
//! 3. each symbol-aware rule family fires on a positive fixture, stays
//!    silent on the negative one, and honours its allow marker, and
//! 4. the real obs catalog has zero unknown call-site names and zero
//!    dead entries.

use std::fs;
use std::path::{Path, PathBuf};

use react_analyze::rules::{Rule, ScannedFile};
use react_analyze::symbols::{self, FileAnalysis, SymbolTable};
use react_analyze::{Baseline, Workspace};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Builds a throwaway workspace with one react-core source file.
fn synthetic_workspace(name: &str, core_source: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("react-analyze-self-{name}"));
    fs::remove_dir_all(&root).ok();
    let core_src = root.join("crates/core/src");
    fs::create_dir_all(&core_src).expect("mkdir");
    fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("root manifest");
    fs::write(
        root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"react-core\"\nversion = \"0.1.0\"\n\n[features]\nparallel = []\n",
    )
    .expect("core manifest");
    fs::write(core_src.join("offender.rs"), core_source).expect("source");
    root
}

#[test]
fn violating_line_in_react_core_fails_the_gate() {
    let root = synthetic_workspace(
        "violations",
        "pub fn tick() {\n    let t = std::time::Instant::now();\n    let x = compute().unwrap();\n    if x == 0.5 {\n        let r = rand::thread_rng();\n    }\n}\n#[cfg(feature = \"turbo\")]\npub fn gated() {}\n",
    );
    let ws = Workspace::open(&root).expect("open synthetic workspace");
    let outcome = ws.check().expect("scan");
    let rules: Vec<Rule> = outcome.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&Rule::NoWallClock), "wall clock: {rules:?}");
    assert!(rules.contains(&Rule::NoPanicInLib), "panic: {rules:?}");
    assert!(rules.contains(&Rule::NoFloatEq), "float eq: {rules:?}");
    assert!(rules.contains(&Rule::NoAmbientRng), "rng: {rules:?}");
    assert!(rules.contains(&Rule::FeatureGateHygiene), "gate: {rules:?}");

    // Against an empty baseline every violation is a divergence — this is
    // exactly the condition under which the CLI exits non-zero.
    let divergences = outcome.against(&Baseline::empty());
    assert!(!divergences.is_empty());

    // Grandfather everything and the gate passes again.
    let grandfathered = Baseline::from_violations(&outcome.violations);
    assert!(outcome.against(&grandfathered).is_empty());
    fs::remove_dir_all(&root).ok();
}

#[test]
fn adding_a_violation_to_existing_react_core_file_is_detected() {
    // Take a real react-core source file, count its violations, then
    // append an offending line and assert the count strictly grows —
    // i.e. debt cannot hide behind the baseline.
    let path = repo_root().join("crates/core/src/scheduling.rs");
    let original = fs::read_to_string(&path).expect("read scheduling.rs");
    let rel = "crates/core/src/scheduling.rs";
    let before = ScannedFile::new(rel, &original).check_token_rules().len();
    let tampered = format!("{original}\npub fn sneak() {{ let t = std::time::Instant::now(); }}\n");
    let after = ScannedFile::new(rel, &tampered).check_token_rules().len();
    assert_eq!(
        after,
        before + 1,
        "appended wall-clock call must be flagged"
    );
}

#[test]
fn committed_tree_passes_against_checked_in_baseline() {
    let ws = Workspace::open(&repo_root()).expect("open repo");
    let outcome = ws.check().expect("scan repo");
    assert!(outcome.files_scanned > 50, "walker found the workspace");
    let baseline = ws.load_baseline().expect("load checked-in baseline");
    let divergences = outcome.against(&baseline);
    assert!(
        divergences.is_empty(),
        "committed tree must pass the gate:\n{}",
        divergences
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Per-family fixtures: (rule, positive, negative). The positive snippet
/// must produce exactly one violation of the family's rule in a
/// scheduling-visible core file; the negative must produce none; and the
/// positive with an `analyze: allow(<rule>)` marker on the flagged line
/// must produce none.
#[test]
fn symbol_rule_families_fire_and_respect_allow_markers() {
    let cases: Vec<(Rule, &str, &str)> = vec![
        (
            Rule::UnorderedHashIter,
            "struct S { m: HashMap<u64, u64> }\nimpl S {\n    fn f(&self) {\n        for v in self.m.values() {\n            schedule(v);\n        }\n    }\n}\n",
            "struct S { m: BTreeMap<u64, u64> }\nimpl S {\n    fn f(&self) {\n        for v in self.m.values() {\n            schedule(v);\n        }\n    }\n}\n",
        ),
        (
            Rule::RngStreamDiscipline,
            "fn f() {\n    let rng = SmallRng::seed_from_u64(12345);\n}\n",
            "fn f(streams: &RngStreams) {\n    let rng = streams.stream(\"arrivals\");\n}\n",
        ),
    ];
    for (rule, positive, negative) in cases {
        let check = |src: &str| {
            let fa = FileAnalysis::new("crates/core/src/fixture.rs", src);
            let mut v = symbols::check_unordered_iter(&fa);
            v.extend(symbols::check_rng_discipline(&fa));
            v
        };
        let pos = check(positive);
        assert_eq!(pos.len(), 1, "{rule}: positive fixture fires once: {pos:?}");
        assert_eq!(pos[0].rule, rule);
        assert!(
            check(negative).is_empty(),
            "{rule}: negative fixture stays silent"
        );
        // Allow marker on the flagged line suppresses.
        let flagged_line = pos[0].line - 1; // 0-based
        let mut lines: Vec<String> = positive.lines().map(str::to_string).collect();
        lines[flagged_line].push_str(&format!(" // analyze: allow({}) fixture", rule.name()));
        let allowed = check(&(lines.join("\n") + "\n"));
        assert!(allowed.is_empty(), "{rule}: allow marker suppresses");
    }
}

#[test]
fn obs_catalog_family_fires_on_typo_and_dead_entry() {
    let obs = FileAnalysis::new(
        "crates/obs/src/observer.rs",
        "pub enum CounterKind {\n    TasksAssigned,\n    Orphaned,\n}\nimpl CounterKind {\n    pub fn name(&self) -> &'static str {\n        match self {\n            CounterKind::TasksAssigned => \"tasks.assigned\",\n            CounterKind::Orphaned => \"tasks.orphaned\",\n        }\n    }\n}\n",
    );
    let good_user = FileAnalysis::new(
        "crates/metrics/src/registry.rs",
        "fn f(r: &Registry) {\n    r.counter(\"tasks.assigned\");\n    r.counter(\"tasks.assigned.count\");\n    obs(CounterKind::TasksAssigned);\n    obs(CounterKind::Orphaned);\n}\n",
    );
    let files = vec![obs.clone(), good_user];
    let table = SymbolTable::build(&files);
    assert!(
        table.check_obs_catalog(&files).is_empty(),
        "negative fixture stays silent"
    );

    let bad_user = FileAnalysis::new(
        "crates/metrics/src/registry.rs",
        "fn f(r: &Registry) {\n    r.counter(\"tasks.asigned\");\n}\n",
    );
    let files = vec![obs, bad_user];
    let table = SymbolTable::build(&files);
    let v = table.check_obs_catalog(&files);
    // The typo'd call site, plus both catalog variants now dead (no
    // reference outside crates/obs).
    assert_eq!(v.len(), 3, "{v:#?}");
    assert!(v.iter().all(|x| x.rule == Rule::ObsCatalog));
    assert!(v.iter().any(|x| x.file.contains("metrics")), "typo flagged");
    assert!(
        v.iter().any(|x| x.file.contains("obs")),
        "dead entries flagged"
    );

    // Allow marker on a dead variant's declaration line suppresses it.
    let obs_allowed = FileAnalysis::new(
        "crates/obs/src/observer.rs",
        "pub enum CounterKind {\n    TasksAssigned,\n    // analyze: allow(obs-catalog) reserved for the ingest front-end\n    Orphaned,\n}\nimpl CounterKind {\n    pub fn name(&self) -> &'static str {\n        match self {\n            CounterKind::TasksAssigned => \"tasks.assigned\",\n            CounterKind::Orphaned => \"tasks.orphaned\",\n        }\n    }\n}\n",
    );
    let user = FileAnalysis::new(
        "crates/metrics/src/registry.rs",
        "fn f(r: &Registry) {\n    obs(CounterKind::TasksAssigned);\n}\n",
    );
    let files = vec![obs_allowed, user];
    let table = SymbolTable::build(&files);
    assert!(
        table.check_obs_catalog(&files).is_empty(),
        "allow marker covers the dead variant"
    );
}

#[test]
fn audit_exhaustiveness_family_fires_on_missing_arm() {
    let check = |src: &str| {
        let files = vec![FileAnalysis::new("crates/core/src/events.rs", src)];
        SymbolTable::build(&files).check_audit_exhaustiveness(&files)
    };
    let positive = "pub enum TaskEventKind {\n    Submitted,\n    Vanished,\n}\npub fn verify_lifecycles() {\n    match k {\n        TaskEventKind::Submitted => {}\n        _ => {}\n    }\n}\n";
    let v = check(positive);
    assert_eq!(v.len(), 1, "{v:#?}");
    assert_eq!(v[0].rule, Rule::AuditEventExhaustiveness);
    let negative = "pub enum TaskEventKind {\n    Submitted,\n    Vanished,\n}\npub fn verify_lifecycles() {\n    match k {\n        TaskEventKind::Submitted => {}\n        TaskEventKind::Vanished => {}\n    }\n}\n";
    assert!(check(negative).is_empty(), "covered variants stay silent");
    let allowed = "pub enum TaskEventKind {\n    Submitted,\n    // analyze: allow(audit-event-exhaustiveness) synthetic marker event\n    Vanished,\n}\npub fn verify_lifecycles() {\n    match k {\n        TaskEventKind::Submitted => {}\n        _ => {}\n    }\n}\n";
    assert!(check(allowed).is_empty(), "allow marker suppresses");
}

/// The real workspace's observer catalog must be fully consistent: every
/// dotted name at a metric call site is declared, and every declared
/// variant is referenced outside `crates/obs`. This is the workspace-level
/// acceptance check — it holds the catalog at zero unknown/dead entries
/// going forward (new debt cannot even be baselined without showing up
/// here).
#[test]
fn real_obs_catalog_has_zero_unknown_and_zero_dead_entries() {
    let ws = Workspace::open(&repo_root()).expect("open repo");
    let outcome = ws.check().expect("scan repo");
    let catalog_violations: Vec<_> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == Rule::ObsCatalog)
        .collect();
    assert!(
        catalog_violations.is_empty(),
        "obs catalog must be consistent:\n{}",
        catalog_violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the catalog itself was actually discovered — an empty
    // catalog would make the check above pass vacuously.
    let analysis = FileAnalysis::new(
        "crates/obs/src/observer.rs",
        &fs::read_to_string(repo_root().join("crates/obs/src/observer.rs"))
            .expect("read observer.rs"),
    );
    let table = SymbolTable::build(&[analysis]);
    assert!(
        table.catalog_names().len() >= 30,
        "catalog discovery found {} names (expected the full span/counter/histogram tables)",
        table.catalog_names().len()
    );
}

#[test]
fn baseline_file_is_checked_in_and_parses() {
    let path = repo_root().join("analyze-baseline.toml");
    let text = fs::read_to_string(&path).expect("analyze-baseline.toml is checked in");
    let baseline = Baseline::parse(&text).expect("baseline parses");
    assert!(
        baseline.total() > 0,
        "remaining grandfathered debt is recorded"
    );
}
