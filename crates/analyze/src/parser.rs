//! A lightweight item-level Rust parser built on the token scanner.
//!
//! The workspace has no `syn` (fully offline, no vendored parser), so the
//! symbol-aware rules run on a deliberately small structural model
//! recovered from the comment/string-blanked code text of a
//! [`ScannedFile`]:
//!
//! * **items** — `fn` / `struct` / `enum` / `trait` / `mod` / `impl`
//!   declarations with their brace-delimited line spans;
//! * **enum definitions** — variant names with declaration lines (the
//!   observer catalog and audit-event rules key off these);
//! * **bindings** — `let` locals, struct fields and `fn` parameters whose
//!   declared type or initializer classifies them as hash-ordered
//!   collections (`HashMap`/`HashSet`) or RNGs (`SmallRng`, `StdRng`,
//!   `impl Rng`, `RngCore`);
//! * **string literals** — with line and, for single-line literals that
//!   are the first argument of a call, the callee identifier
//!   (`counter("tasks.assigned")` → callee `counter`);
//! * **spawn sites** — the line spans of `.spawn(...)` call arguments,
//!   i.e. closures that cross a thread boundary.
//!
//! The model is heuristic: no macro expansion, no generics resolution, no
//! cross-statement type inference. Rules built on it are written so that
//! a miss is a false *negative* (the escape hatch for the rare false
//! positive is the `analyze: allow(...)` marker).

use crate::rules::ScannedFile;

/// What kind of item a declaration introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (`fn`).
    Fn,
    /// A struct.
    Struct,
    /// An enum.
    Enum,
    /// A trait.
    Trait,
    /// An inline module.
    Mod,
    /// An `impl` block (name = the implemented type's last segment).
    Impl,
}

/// One item declaration with its brace-delimited span.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// The declared name (for `impl`, the self type's last segment).
    pub name: String,
    /// 0-based line of the declaring keyword.
    pub line: usize,
    /// 0-based line of the closing brace (== `line` for braceless items).
    pub end_line: usize,
}

/// An enum definition with its variants.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 0-based line of the `enum` keyword.
    pub line: usize,
    /// 0-based line of the closing brace.
    pub end_line: usize,
    /// Variant names with their 0-based declaration lines.
    pub variants: Vec<(String, usize)>,
    /// Whether the definition sits in test code.
    pub in_test: bool,
}

/// How a binding classifies for the determinism rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindClass {
    /// Declared type / initializer names `HashMap` or `HashSet`.
    HashOrdered,
    /// Declared type / initializer names an RNG (`SmallRng`, `StdRng`,
    /// `impl Rng`, `dyn RngCore`, …).
    Rng,
}

/// A named binding (local, field or parameter) of interest to the rules.
#[derive(Debug, Clone)]
pub struct Binding {
    /// The bound name.
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
    /// The classification that made the binding interesting.
    pub class: BindClass,
}

/// A string literal with its call-site context.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 0-based line of the opening quote.
    pub line: usize,
    /// The literal's text (escape sequences left as written).
    pub text: String,
    /// The identifier immediately before the enclosing call's `(`, when
    /// the literal is a direct argument: `counter("x")` → `counter`.
    pub callee: Option<String>,
    /// Whether the literal sits in test code.
    pub in_test: bool,
}

/// The line span of one `.spawn(...)` call's argument list.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// 0-based line of the `.spawn(` token.
    pub start_line: usize,
    /// 0-based line where the argument parens close.
    pub end_line: usize,
}

/// The structural model of one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Item declarations, in source order.
    pub items: Vec<Item>,
    /// Enum definitions, in source order.
    pub enums: Vec<EnumDef>,
    /// Hash-collection / RNG bindings, in source order.
    pub bindings: Vec<Binding>,
    /// String literals, in source order.
    pub strings: Vec<StrLit>,
    /// `.spawn(...)` call spans, in source order.
    pub spawns: Vec<SpawnSite>,
}

/// Is `c` part of an identifier?
fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier ending at byte offset `end` of `s` (exclusive), if any.
fn ident_ending_at(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end || (bytes[start] as char).is_ascii_digit() {
        return None;
    }
    Some(&s[start..end])
}

/// The identifier starting at byte offset `start` of `s`, if any.
fn ident_starting_at(s: &str, start: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    if start >= bytes.len()
        || !is_ident(bytes[start] as char)
        || (bytes[start] as char).is_ascii_digit()
    {
        return None;
    }
    let mut end = start;
    while end < bytes.len() && is_ident(bytes[end] as char) {
        end += 1;
    }
    Some(&s[start..end])
}

/// Does the type-or-initializer text classify a binding?
fn classify(text: &str) -> Option<BindClass> {
    if (text.contains("HashMap") || text.contains("HashSet")) && !text.contains("BTree") {
        return Some(BindClass::HashOrdered);
    }
    if text.contains("SmallRng")
        || text.contains("StdRng")
        || text.contains("RngCore")
        || text.contains("impl Rng")
        || text.contains("dyn Rng")
        || text.contains(".stream(")
        || text.contains(".stream_indexed(")
    {
        return Some(BindClass::Rng);
    }
    None
}

impl ParsedFile {
    /// Parses the structural model out of a scanned file.
    pub fn parse(scanned: &ScannedFile) -> Self {
        let code: Vec<&str> = scanned.lines.iter().map(|l| l.code.as_str()).collect();
        ParsedFile {
            items: parse_items(&code),
            enums: parse_enums(&code, scanned),
            bindings: parse_bindings(&code),
            strings: parse_strings(scanned),
            spawns: parse_spawns(&code),
        }
    }

    /// The hash-collection binding names declared anywhere in the file.
    pub fn hash_names(&self) -> Vec<&str> {
        self.bindings
            .iter()
            .filter(|b| b.class == BindClass::HashOrdered)
            .map(|b| b.name.as_str())
            .collect()
    }

    /// The RNG bindings declared anywhere in the file.
    pub fn rng_bindings(&self) -> Vec<&Binding> {
        self.bindings
            .iter()
            .filter(|b| b.class == BindClass::Rng)
            .collect()
    }
}

/// Running brace depth at the *start* of each line.
fn depth_at_line_start(code: &[&str]) -> Vec<i64> {
    let mut out = Vec::with_capacity(code.len());
    let mut depth = 0i64;
    for line in code {
        out.push(depth);
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    out
}

/// Finds the 0-based line where the brace opened on `open_line` (at
/// running depth `open_depth` *after* the opening brace) closes.
fn find_close_line(code: &[&str], open_line: usize, mut depth: i64) -> usize {
    // `depth` is the depth *after* consuming the open brace; walk forward
    // until it returns to depth-1.
    let target = depth - 1;
    for (i, line) in code.iter().enumerate().skip(open_line) {
        let mut chars = line.chars();
        if i == open_line {
            // Skip up to and including the first '{' on the open line.
            let mut seen_open = false;
            for c in chars.by_ref() {
                match c {
                    '{' if !seen_open => seen_open = true,
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == target {
                            return i;
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        for c in chars {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == target {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    code.len().saturating_sub(1)
}

/// Extracts item declarations (keyword-at-clause heuristics).
fn parse_items(code: &[&str]) -> Vec<Item> {
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        for (kw, kind) in [
            ("fn ", ItemKind::Fn),
            ("struct ", ItemKind::Struct),
            ("enum ", ItemKind::Enum),
            ("trait ", ItemKind::Trait),
            ("mod ", ItemKind::Mod),
            ("impl ", ItemKind::Impl),
        ] {
            let Some(pos) = find_keyword(line, kw.trim_end()) else {
                continue;
            };
            let name = match kind {
                ItemKind::Impl => impl_self_type(&line[pos + kw.len() - 1..]),
                _ => ident_starting_at(line, skip_ws(line, pos + kw.len() - 1)).map(str::to_string),
            };
            let Some(name) = name else { continue };
            let end_line = item_end(code, i);
            out.push(Item {
                kind,
                name,
                line: i,
                end_line,
            });
        }
    }
    out
}

/// Byte offset of the first non-space char at or after `from`.
fn skip_ws(line: &str, from: usize) -> usize {
    let bytes = line.as_bytes();
    let mut i = from;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Finds `kw` as a standalone word in `line`, returning the offset just
/// past it (the space separator's position + 1 handled by caller).
fn find_keyword(line: &str, kw: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(kw) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_ident(line.as_bytes()[pos - 1] as char);
        let after = pos + kw.len();
        let after_ok = line
            .as_bytes()
            .get(after)
            .is_none_or(|&b| !is_ident(b as char));
        if before_ok && after_ok {
            return Some(pos + 1);
        }
        from = pos + kw.len();
    }
    None
}

/// The self type's last path segment of an `impl` clause:
/// `impl<T> Foo for Bar<T> {` → `Bar`; `impl Baz {` → `Baz`.
fn impl_self_type(clause: &str) -> Option<String> {
    let clause = clause.split('{').next().unwrap_or(clause);
    let subject = match clause.find(" for ") {
        Some(pos) => &clause[pos + 5..],
        None => {
            // Skip a generic parameter list directly after `impl`.
            let c = clause.trim_start();
            if let Some(rest) = c.strip_prefix('<') {
                let mut depth = 1;
                let mut idx = 0;
                for (j, ch) in rest.char_indices() {
                    match ch {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                idx = j + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                &rest[idx..]
            } else {
                c
            }
        }
    };
    subject
        .split(['<', ' '])
        .find(|s| !s.is_empty())?
        .rsplit("::")
        .next()
        .map(|s| s.trim_end_matches(';').to_string())
        .filter(|s| {
            !s.is_empty()
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_alphabetic() || c == '_')
        })
}

/// End line of the item declared on `decl_line`: the matching close brace
/// of the first `{` at or after the declaration, or the `;` line for
/// braceless items.
fn item_end(code: &[&str], decl_line: usize) -> usize {
    let depths = depth_at_line_start(code);
    for (i, line) in code.iter().enumerate().skip(decl_line) {
        // A `;` before any `{` ends a braceless item (fn decl in trait,
        // `struct Unit;`, `use ...;`).
        let brace = line.find('{');
        let semi = line.find(';');
        match (brace, semi) {
            (None, Some(_)) => return i,
            (Some(b), Some(s)) if s < b => return i,
            (Some(b), _) => {
                // Depth after consuming everything before + the brace.
                let mut depth = depths[i];
                for c in line[..=b].chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                return find_close_line(code, i, depth);
            }
            (None, None) => continue,
        }
    }
    decl_line
}

/// Extracts enum definitions with variant names.
fn parse_enums(code: &[&str], scanned: &ScannedFile) -> Vec<EnumDef> {
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        let Some(pos) = find_keyword(line, "enum") else {
            continue;
        };
        let Some(name) = ident_starting_at(line, skip_ws(line, pos + "enum".len())) else {
            continue;
        };
        let end_line = item_end(code, i);
        let mut variants = Vec::new();
        // Variant entries sit at depth base+1 inside the enum braces. An
        // entry starts after `{` or after a `,` at that depth; the first
        // identifier of an entry (skipping attribute lines) is the name.
        let mut depth = 0i64; // relative brace depth inside the enum body
        let mut paren = 0i64; // paren depth (tuple-variant payloads)
        let mut entered = false;
        let mut at_entry_start = false;
        for (j, body_line) in code.iter().enumerate().take(end_line + 1).skip(i) {
            let mut chars = body_line.char_indices().peekable();
            while let Some((col, c)) = chars.next() {
                match c {
                    '{' => {
                        depth += 1;
                        if !entered && depth == 1 {
                            entered = true;
                            at_entry_start = true;
                        }
                    }
                    '}' => depth -= 1,
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    ',' if entered && depth == 1 && paren == 0 => at_entry_start = true,
                    '#' if entered && depth == 1 => {
                        // Attribute on a variant: skip the line.
                        break;
                    }
                    _ if entered
                        && depth == 1
                        && paren == 0
                        && at_entry_start
                        && is_ident(c)
                        && !c.is_ascii_digit() =>
                    {
                        if let Some(ident) = ident_starting_at(body_line, col) {
                            variants.push((ident.to_string(), j));
                            at_entry_start = false;
                            // Skip past the identifier.
                            while let Some(&(c2, ch2)) = chars.peek() {
                                if c2 < col + ident.len() && is_ident(ch2) {
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let in_test = scanned.lines.get(i).map(|l| l.in_test).unwrap_or(false);
        out.push(EnumDef {
            name: name.to_string(),
            line: i,
            end_line,
            variants,
            in_test,
        });
    }
    out
}

/// Extracts classified bindings: `let` locals, struct fields and `fn`
/// parameters whose declared type or initializer text matches a
/// collection/RNG class. Uniform line-level heuristic: any
/// `name : <Type>` or `let [mut] name [: T] = <init>` clause.
fn parse_bindings(code: &[&str]) -> Vec<Binding> {
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        // `let [mut] name` bindings: classify on the rest of the
        // statement (type annotation and/or initializer), which for
        // multi-line statements continues onto following lines.
        if let Some(pos) = find_keyword(line, "let") {
            let mut at = skip_ws(line, pos + "let".len());
            if let Some("mut") = ident_starting_at(line, at) {
                at = skip_ws(line, at + 3);
            }
            if let Some(name) = ident_starting_at(line, at) {
                let mut text = line[at + name.len()..].to_string();
                let mut j = i;
                while !text.contains(';') && j + 1 < code.len() && j < i + 3 {
                    j += 1;
                    text.push_str(code[j]);
                }
                if let Some(class) = classify(&text) {
                    out.push(Binding {
                        name: name.to_string(),
                        line: i,
                        class,
                    });
                }
            }
        }
        // `name : Type` clauses (fields and params). Scan every `:` that
        // is not part of `::` and classify the text up to the clause end.
        let bytes = line.as_bytes();
        for (col, &b) in bytes.iter().enumerate() {
            if b != b':' {
                continue;
            }
            if col + 1 < bytes.len() && bytes[col + 1] == b':' {
                continue;
            }
            if col > 0 && bytes[col - 1] == b':' {
                continue;
            }
            let Some(name) = ident_ending_at(line, rtrim_end(line, col)) else {
                continue;
            };
            if name == "let" || name == "mut" || name == "ref" {
                continue;
            }
            // The clause: up to a top-level `,`, `)`, `;` or line end.
            let mut depth = 0i32;
            let mut end = bytes.len();
            for (k, &c) in bytes.iter().enumerate().skip(col + 1) {
                match c as char {
                    '<' | '(' | '[' => depth += 1,
                    '>' | ']' => depth -= 1,
                    ')' if depth > 0 => depth -= 1,
                    ')' | ';' if depth <= 0 => {
                        end = k;
                        break;
                    }
                    ',' if depth <= 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
            }
            if let Some(class) = classify(&line[col + 1..end]) {
                // `let` clauses were already handled above; skip them so
                // a `let x: HashMap<..> = ..` line does not double-count.
                if find_keyword(line, "let").is_some_and(|p| p < col) {
                    continue;
                }
                out.push(Binding {
                    name: name.to_string(),
                    line: i,
                    class,
                });
            }
        }
    }
    out
}

/// Byte offset just past the last non-space char strictly before `end`.
fn rtrim_end(line: &str, end: usize) -> usize {
    let bytes = line.as_bytes();
    let mut i = end;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    i
}

/// Extracts string literals with their call-site callee. Works off the
/// raw lines (contents) guided by the blanked code lines (structure):
/// a literal starts where the code copy has a `"` and takes its text
/// from the raw line at the same columns.
fn parse_strings(scanned: &ScannedFile) -> Vec<StrLit> {
    let mut out = Vec::new();
    for (i, scan) in scanned.lines.iter().enumerate() {
        let code = scan.code.as_bytes();
        let Some(raw) = scanned.raw_lines.get(i) else {
            continue;
        };
        let raw_bytes = raw.as_bytes();
        let mut col = 0;
        while col < code.len() {
            if code[col] != b'"' {
                col += 1;
                continue;
            }
            // Find the closing quote on the same line in the code copy.
            let mut close = None;
            for (k, &b) in code.iter().enumerate().skip(col + 1) {
                if b == b'"' {
                    close = Some(k);
                    break;
                }
            }
            let Some(close) = close else {
                break; // multi-line literal: skip (never a catalog name)
            };
            let text: String = raw_bytes
                .get(col + 1..close)
                .map(|s| String::from_utf8_lossy(s).into_owned())
                .unwrap_or_default();
            // Callee: `ident(` directly before the quote (allowing
            // whitespace), or `ident(&` for by-ref arguments.
            let mut p = rtrim_end(&scan.code, col);
            if p > 0 && code[p - 1] == b'&' {
                p = rtrim_end(&scan.code, p - 1);
            }
            let callee = if p > 0 && code[p - 1] == b'(' {
                ident_ending_at(&scan.code, rtrim_end(&scan.code, p - 1)).map(str::to_string)
            } else {
                None
            };
            out.push(StrLit {
                line: i,
                text,
                callee,
                in_test: scan.in_test,
            });
            col = close + 1;
        }
    }
    out
}

/// Extracts `.spawn(...)` argument spans.
fn parse_spawns(code: &[&str]) -> Vec<SpawnSite> {
    let mut out = Vec::new();
    for (i, line) in code.iter().enumerate() {
        let Some(pos) = line.find(".spawn(") else {
            continue;
        };
        // Walk until the paren opened by `.spawn(` closes.
        let mut depth = 0i32;
        let mut end_line = i;
        'outer: for (j, l) in code.iter().enumerate().skip(i) {
            let start_col = if j == i { pos + ".spawn(".len() - 1 } else { 0 };
            for c in l[start_col.min(l.len())..].chars() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = j;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            end_line = j;
        }
        out.push(SpawnSite {
            start_line: i,
            end_line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse(&ScannedFile::new("crates/core/src/x.rs", src))
    }

    #[test]
    fn items_and_spans() {
        let src = "pub fn f() {\n    body();\n}\n\npub struct S {\n    x: u32,\n}\n\nimpl S {\n    fn m(&self) {}\n}\n";
        let p = parse(src);
        let f = p.items.iter().find(|i| i.name == "f").expect("fn f");
        assert_eq!((f.kind, f.line, f.end_line), (ItemKind::Fn, 0, 2));
        let s = p
            .items
            .iter()
            .find(|i| i.name == "S" && i.kind == ItemKind::Struct)
            .expect("struct S");
        assert_eq!((s.line, s.end_line), (4, 6));
        let im = p
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Impl)
            .expect("impl S");
        assert_eq!((im.name.as_str(), im.line, im.end_line), ("S", 8, 10));
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let p = parse("impl<T: Clone> Observer for FanoutObserver<T> {\n}\n");
        assert_eq!(p.items[0].name, "FanoutObserver");
    }

    #[test]
    fn enum_variants_parsed_with_payloads() {
        let src = "pub enum Kind {\n    Plain,\n    Tuple(u32, f64),\n    Struct {\n        field: u64,\n    },\n    #[allow(dead_code)]\n    Attributed,\n}\n";
        let p = parse(src);
        assert_eq!(p.enums.len(), 1);
        let e = &p.enums[0];
        assert_eq!(e.name, "Kind");
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Plain", "Tuple", "Struct", "Attributed"]);
        // Struct-variant fields and tuple payload types are not variants.
        assert_eq!(e.variants[2].1, 3);
    }

    #[test]
    fn bindings_classified_from_type_and_initializer() {
        let src = "struct S {\n    index: HashMap<u64, usize>,\n    sorted: BTreeMap<u64, usize>,\n}\nfn f(rng: &mut SmallRng) {\n    let mut seen = std::collections::HashSet::new();\n    let stream = streams.stream(\"arrivals\");\n    let n: usize = seen.len();\n}\n";
        let p = parse(src);
        let hash: Vec<&str> = p.hash_names();
        assert!(hash.contains(&"index"), "{hash:?}");
        assert!(hash.contains(&"seen"), "{hash:?}");
        assert!(!hash.contains(&"sorted"), "BTreeMap is ordered: {hash:?}");
        assert!(!hash.contains(&"n"));
        let rngs: Vec<&str> = p.rng_bindings().iter().map(|b| b.name.as_str()).collect();
        assert!(rngs.contains(&"rng"), "{rngs:?}");
        assert!(rngs.contains(&"stream"), "{rngs:?}");
    }

    #[test]
    fn string_literals_carry_callee() {
        let src = "fn f() {\n    registry.counter(\"matcher.cycles\");\n    let s = \"free-standing\";\n    incr(&\"by.ref\");\n}\n";
        let p = parse(src);
        assert_eq!(p.strings.len(), 3);
        assert_eq!(p.strings[0].text, "matcher.cycles");
        assert_eq!(p.strings[0].callee.as_deref(), Some("counter"));
        assert_eq!(p.strings[1].callee, None);
        assert_eq!(p.strings[2].text, "by.ref");
        assert_eq!(p.strings[2].callee.as_deref(), Some("incr"));
    }

    #[test]
    fn spawn_spans_cover_closures() {
        let src = "fn f() {\n    scope.spawn(move || {\n        work();\n        more();\n    });\n    after();\n}\n";
        let p = parse(src);
        assert_eq!(p.spawns.len(), 1);
        assert_eq!(p.spawns[0].start_line, 1);
        assert_eq!(p.spawns[0].end_line, 4);
    }
}
