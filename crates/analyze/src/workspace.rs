//! Workspace discovery: walks the repo's `.rs` files, maps each file to
//! its owning crate manifest, and aggregates rule violations.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::baseline::{Baseline, Divergence};
use crate::rules::Violation;
use crate::symbols::{self, FileAnalysis, SymbolTable};

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", ".github"];

/// A workspace rooted at the repository top level.
#[derive(Debug, Clone)]
pub struct Workspace {
    root: PathBuf,
}

/// The result of scanning a workspace.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// All violations, ordered by rule then file then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl CheckOutcome {
    /// Compares against a baseline; empty result means pass.
    pub fn against(&self, baseline: &Baseline) -> Vec<Divergence> {
        baseline.diff(&self.violations)
    }
}

impl Workspace {
    /// Opens the workspace at `root`. Fails if `root` does not look like
    /// the repo top level (no `Cargo.toml`).
    pub fn open(root: &Path) -> io::Result<Workspace> {
        if !root.join("Cargo.toml").is_file() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{} has no Cargo.toml; pass --root", root.display()),
            ));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
        })
    }

    /// The workspace root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path to the checked-in baseline file.
    pub fn baseline_path(&self) -> PathBuf {
        self.root.join("analyze-baseline.toml")
    }

    /// Loads the checked-in baseline, or an empty one when the file does
    /// not exist yet.
    pub fn load_baseline(&self) -> io::Result<Baseline> {
        let path = self.baseline_path();
        if !path.is_file() {
            return Ok(Baseline::empty());
        }
        let text = fs::read_to_string(&path)?;
        Baseline::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Scans every workspace `.rs` file and runs all rules.
    pub fn check(&self) -> io::Result<CheckOutcome> {
        let mut files = Vec::new();
        collect_rs_files(&self.root, &mut files)?;
        files.sort();

        let mut features: BTreeMap<PathBuf, Vec<String>> = BTreeMap::new();
        let mut outcome = CheckOutcome::default();
        let mut analyses = Vec::with_capacity(files.len());
        for path in &files {
            let rel = relative_slash_path(&self.root, path);
            let source = fs::read_to_string(path)?;
            let analysis = FileAnalysis::new(&rel, &source);
            outcome
                .violations
                .extend(analysis.scanned.check_token_rules());
            if let Some(manifest_dir) = owning_manifest_dir(&self.root, path) {
                let declared = features.entry(manifest_dir.clone()).or_insert_with(|| {
                    declared_features(&manifest_dir.join("Cargo.toml")).unwrap_or_default()
                });
                outcome
                    .violations
                    .extend(analysis.scanned.check_feature_gates(declared));
            }
            outcome
                .violations
                .extend(symbols::check_unordered_iter(&analysis));
            outcome
                .violations
                .extend(symbols::check_rng_discipline(&analysis));
            analyses.push(analysis);
            outcome.files_scanned += 1;
        }
        // Workspace-level rules need the cross-file symbol table.
        let table = SymbolTable::build(&analyses);
        outcome
            .violations
            .extend(table.check_obs_catalog(&analyses));
        outcome
            .violations
            .extend(table.check_audit_exhaustiveness(&analyses));
        outcome
            .violations
            .sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
        Ok(outcome)
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Nearest ancestor directory (within `root`) containing a `Cargo.toml`.
fn owning_manifest_dir(root: &Path, file: &Path) -> Option<PathBuf> {
    let mut dir = file.parent()?;
    loop {
        if dir.join("Cargo.toml").is_file() {
            return Some(dir.to_path_buf());
        }
        if dir == root {
            return None;
        }
        dir = dir.parent()?;
    }
}

/// Feature names declared in a crate manifest's `[features]` section.
/// Hand-rolled line parser: a feature declaration is a `name = [...]`
/// line between `[features]` and the next section header.
fn declared_features(manifest: &Path) -> io::Result<Vec<String>> {
    let text = fs::read_to_string(manifest)?;
    let mut in_features = false;
    let mut out = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_features = line == "[features]";
            continue;
        }
        if !in_features || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, _)) = line.split_once('=') {
            let name = name.trim().trim_matches('"');
            if !name.is_empty() {
                out.push(name.to_string());
            }
        }
    }
    // Optional dependencies implicitly declare a feature of the same
    // name; cover `dep = { ..., optional = true }` lines anywhere.
    for raw in text.lines() {
        let line = raw.trim();
        if line.contains("optional") && line.contains("true") {
            if let Some((name, _)) = line.split_once('=') {
                let name = name.trim().trim_matches('"');
                if !name.is_empty() && !out.contains(&name.to_string()) {
                    out.push(name.to_string());
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_features_parses_manifest() {
        let dir = std::env::temp_dir().join("react-analyze-feat-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let manifest = dir.join("Cargo.toml");
        fs::write(
            &manifest,
            "[package]\nname = \"x\"\n\n[features]\ndefault = []\nparallel = [\"dep/parallel\"]\n\
             debug-invariants = []\n\n[dependencies]\nserde = { version = \"1\", optional = true }\n",
        )
        .expect("write manifest");
        let feats = declared_features(&manifest).expect("parse");
        assert!(feats.contains(&"default".to_string()));
        assert!(feats.contains(&"parallel".to_string()));
        assert!(feats.contains(&"debug-invariants".to_string()));
        assert!(feats.contains(&"serde".to_string()));
        assert!(!feats.contains(&"name".to_string()));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/repo");
        let file = Path::new("/repo/crates/core/src/lib.rs");
        assert_eq!(relative_slash_path(root, file), "crates/core/src/lib.rs");
    }
}
