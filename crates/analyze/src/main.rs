//! `react-analyze` CLI — the workspace invariant gate.
//!
//! ```text
//! cargo run -p react-analyze                  # check against analyze-baseline.toml
//! cargo run -p react-analyze -- --write-baseline
//! cargo run -p react-analyze -- --list        # print every violation, incl. grandfathered
//! cargo run -p react-analyze -- --root <dir>  # explicit workspace root
//! ```
//!
//! Exit codes: `0` clean (or fully explained by the baseline), `1` rule
//! violations or a stale baseline, `2` usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use react_analyze::baseline::Divergence;
use react_analyze::Workspace;

struct Options {
    root: Option<PathBuf>,
    write_baseline: bool,
    list: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        write_baseline: false,
        list: false,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => opts.write_baseline = true,
            "--list" => opts.list = true,
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: react-analyze [--root <dir>] [--write-baseline] [--list]".to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

/// The workspace root: `--root` if given, else two levels above this
/// crate's manifest (set by cargo), else the current directory.
fn resolve_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    if let Ok(manifest_dir) = env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(manifest_dir).join("../..");
        if candidate.join("Cargo.toml").is_file() {
            return candidate;
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = resolve_root(&opts);
    let workspace = match Workspace::open(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("react-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match workspace.check() {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("react-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let baseline = react_analyze::Baseline::from_violations(&outcome.violations);
        let path = workspace.baseline_path();
        if let Err(e) = fs::write(&path, baseline.serialize()) {
            eprintln!("react-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} grandfathered violation(s) across {} file(s) scanned)",
            path.display(),
            baseline.total(),
            outcome.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    if opts.list {
        for v in &outcome.violations {
            println!("{v}");
        }
        println!(
            "{} violation(s) in {} file(s) scanned",
            outcome.violations.len(),
            outcome.files_scanned
        );
    }

    let baseline = match workspace.load_baseline() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("react-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let divergences = outcome.against(&baseline);
    if divergences.is_empty() {
        println!(
            "react-analyze: OK — {} file(s) scanned, {} grandfathered violation(s), 0 new",
            outcome.files_scanned,
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("react-analyze: FAIL");
    for d in &divergences {
        eprintln!("  {d}");
        if let Divergence::Exceeded { violations, .. } = d {
            for v in violations {
                eprintln!("    {}:{}: {}", v.file, v.line, v.snippet);
            }
        }
    }
    eprintln!(
        "{} divergence(s) from the baseline ({} file(s) scanned)",
        divergences.len(),
        outcome.files_scanned
    );
    ExitCode::FAILURE
}
