//! `react-analyze` CLI — the workspace invariant gate.
//!
//! ```text
//! cargo run -p react-analyze                  # check against analyze-baseline.toml
//! cargo run -p react-analyze -- --write-baseline
//! cargo run -p react-analyze -- --list        # rule registry + every violation
//! cargo run -p react-analyze -- --explain <rule>  # what a rule means + how to fix
//! cargo run -p react-analyze -- --root <dir>  # explicit workspace root
//! ```
//!
//! Exit codes: `0` clean (or fully explained by the baseline), `1` rule
//! violations or a stale baseline, `2` usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use react_analyze::baseline::Divergence;
use react_analyze::rules::ALL_RULES;
use react_analyze::{Rule, Workspace};

struct Options {
    root: Option<PathBuf>,
    write_baseline: bool,
    list: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        write_baseline: false,
        list: false,
        explain: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => opts.write_baseline = true,
            "--list" => opts.list = true,
            "--explain" => {
                let value = args
                    .next()
                    .ok_or("--explain needs a rule name (or 'all')")?;
                opts.explain = Some(value);
            }
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(value));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: react-analyze [--root <dir>] [--write-baseline] [--list] \
                     [--explain <rule>|all]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(opts)
}

/// Prints the explanation block for one rule.
fn print_explain(rule: Rule) {
    let (what, fix) = rule.explain();
    println!("{}", rule.name());
    println!("  why: {what}");
    println!("  fix: {fix}");
}

/// Handles `--explain <rule>` / `--explain all`. Returns the exit code.
fn run_explain(arg: &str) -> ExitCode {
    if arg == "all" {
        for rule in ALL_RULES {
            print_explain(rule);
            println!();
        }
        return ExitCode::SUCCESS;
    }
    match Rule::from_name(arg) {
        Some(rule) => {
            print_explain(rule);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "react-analyze: unknown rule {arg:?}; known rules: {}",
                ALL_RULES
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `--root` if given, else two levels above this
/// crate's manifest (set by cargo), else the current directory.
fn resolve_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    if let Ok(manifest_dir) = env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(manifest_dir).join("../..");
        if candidate.join("Cargo.toml").is_file() {
            return candidate;
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(arg) = &opts.explain {
        return run_explain(arg);
    }
    let root = resolve_root(&opts);
    let workspace = match Workspace::open(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("react-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let outcome = match workspace.check() {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("react-analyze: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let baseline = react_analyze::Baseline::from_violations(&outcome.violations);
        let path = workspace.baseline_path();
        if let Err(e) = fs::write(&path, baseline.serialize()) {
            eprintln!("react-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} grandfathered violation(s) across {} file(s) scanned)",
            path.display(),
            baseline.total(),
            outcome.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    if opts.list {
        // Rule registry first — CI smoke-checks this block to catch
        // registry drift (a rule added without docs/baseline support).
        println!("rules ({}):", ALL_RULES.len());
        for rule in ALL_RULES {
            println!("  {}", rule.name());
        }
        for v in &outcome.violations {
            println!("{v}");
        }
        println!(
            "{} violation(s) in {} file(s) scanned",
            outcome.violations.len(),
            outcome.files_scanned
        );
    }

    let baseline = match workspace.load_baseline() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("react-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    let divergences = outcome.against(&baseline);
    if divergences.is_empty() {
        println!(
            "react-analyze: OK — {} file(s) scanned, {} grandfathered violation(s), 0 new",
            outcome.files_scanned,
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("react-analyze: FAIL");
    let mut failed_rules: Vec<&'static str> = Vec::new();
    for d in &divergences {
        eprintln!("  {d}");
        if let Divergence::Exceeded {
            rule, violations, ..
        } = d
        {
            if !failed_rules.contains(&rule.name()) {
                failed_rules.push(rule.name());
            }
            for v in violations {
                eprintln!("    {}:{}: {}", v.file, v.line, v.snippet);
            }
        }
    }
    for name in failed_rules {
        eprintln!("  run `cargo run -p react-analyze -- --explain {name}` for fix guidance");
    }
    eprintln!(
        "{} divergence(s) from the baseline ({} file(s) scanned)",
        divergences.len(),
        outcome.files_scanned
    );
    ExitCode::FAILURE
}
