//! The cross-file symbol table and the symbol-aware rule checks.
//!
//! Two of the new rule families are per-file (they only need the file's
//! own bindings): [`check_unordered_iter`] and [`check_rng_discipline`].
//! The other two are workspace-level and run off a [`SymbolTable`] built
//! from every parsed file: [`SymbolTable::check_obs_catalog`]
//! (call-site metric names vs. the `crates/obs` catalog, both directions)
//! and [`SymbolTable::check_audit_exhaustiveness`] (every
//! `TaskEventKind` variant must appear in `verify_lifecycles`'
//! transition table).

use std::collections::{BTreeMap, BTreeSet};

use crate::parser::{ItemKind, ParsedFile};
use crate::rules::{in_test_tree, Rule, ScannedFile, Violation};

/// One scanned + parsed file, the unit the symbol-aware checks consume.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// The token-level scan (code/comment split, test regions, allows).
    pub scanned: ScannedFile,
    /// The structural model.
    pub parsed: ParsedFile,
}

impl FileAnalysis {
    /// Scans and parses `source` as `path`.
    pub fn new(path: &str, source: &str) -> Self {
        let scanned = ScannedFile::new(path, source);
        let parsed = ParsedFile::parse(&scanned);
        FileAnalysis { scanned, parsed }
    }
}

/// The obs catalog enums, declared under [`OBS_DIR`].
const OBS_ENUMS: [&str; 3] = ["SpanKind", "CounterKind", "HistogramKind"];
/// Where the observer catalog lives.
const OBS_DIR: &str = "crates/obs/src/";
/// Call-site callees whose dotted string argument must be a catalog name.
const METRIC_CALLEES: [&str; 4] = ["counter", "histogram", "span", "series"];
/// The audit-event enum checked for transition-table exhaustiveness.
const AUDIT_ENUM: &str = "TaskEventKind";
/// The file declaring both the enum and the transition table.
const AUDIT_FILE: &str = "crates/core/src/events.rs";
/// The function whose body is the transition table.
const AUDIT_TABLE_FN: &str = "verify_lifecycles";

/// Iterator-producing method suffixes whose receiver order is observable.
const ITER_METHODS: [&str; 9] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Checks [`Rule::UnorderedHashIter`] over one file: iteration over a
/// binding whose declared type (in this file) is `HashMap`/`HashSet`,
/// unless the surrounding statement window sorts or re-collects into an
/// ordered container.
pub fn check_unordered_iter(fa: &FileAnalysis) -> Vec<Violation> {
    let rule = Rule::UnorderedHashIter;
    let path = &fa.scanned.path;
    if !rule.applies_to(path) || in_test_tree(path) {
        return Vec::new();
    }
    let hash_names: BTreeSet<&str> = fa.parsed.hash_names().into_iter().collect();
    if hash_names.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, line) in fa.scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut hit = false;
        for m in ITER_METHODS {
            let mut from = 0;
            while let Some(rel) = line.code[from..].find(m) {
                let pos = from + rel;
                if let Some(name) = ident_ending_at(&line.code, pos) {
                    if hash_names.contains(name) {
                        hit = true;
                    }
                }
                from = pos + m.len();
            }
        }
        if !hit {
            if let Some(expr) = for_loop_expr(&line.code) {
                if let Some(name) = expr.rsplit('.').next() {
                    if hash_names.contains(name) {
                        hit = true;
                    }
                }
            }
        }
        if !hit || fa.scanned.allowed(i, rule) {
            continue;
        }
        // Sanctioned when the statement window sorts or re-collects into
        // an ordered container: look at this line plus the next few
        // (multi-line iterator chains ending in `.collect::<BTreeMap>()`
        // or a `v.sort()` immediately after).
        let window_end = (i + 5).min(fa.scanned.lines.len());
        let sanctioned = fa.scanned.lines[i..window_end]
            .iter()
            .any(|l| l.code.contains("sort") || l.code.contains("BTree"));
        if sanctioned {
            continue;
        }
        out.push(fa.scanned.violation(rule, i));
    }
    out
}

/// The iterated expression of a `for <pat> in <expr> {` line, when the
/// expression is a plain (possibly `&`-prefixed, possibly dotted)
/// identifier path. Ranges, calls and anything more structured return
/// `None` — method-call receivers are handled by the `ITER_METHODS` scan.
fn for_loop_expr(code: &str) -> Option<&str> {
    let pos = find_word(code, "for")?;
    let in_pos = code[pos..].find(" in ")? + pos;
    let rest = &code[in_pos + 4..];
    let expr = rest.split('{').next()?.trim();
    let expr = expr
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    if expr.is_empty()
        || !expr
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        || expr.contains("..")
    {
        return None;
    }
    Some(expr)
}

/// Checks [`Rule::RngStreamDiscipline`] over one file: magic literal
/// seeds, and RNG bindings declared outside a `.spawn(` closure but
/// referenced inside it.
pub fn check_rng_discipline(fa: &FileAnalysis) -> Vec<Violation> {
    let rule = Rule::RngStreamDiscipline;
    let path = &fa.scanned.path;
    if !rule.applies_to(path) || in_test_tree(path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Magic literal seeds: `seed_from_u64(` whose first argument char is
    // a digit. Derived seeds (`seed_from_u64(splitmix64(...))`,
    // `seed_from_u64(master ^ i)`) start with an identifier and pass.
    for (i, line) in fa.scanned.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut from = 0;
        while let Some(rel) = line.code[from..].find("seed_from_u64(") {
            let pos = from + rel + "seed_from_u64(".len();
            let arg = line.code[pos..].trim_start();
            if arg.chars().next().is_some_and(|c| c.is_ascii_digit())
                && !fa.scanned.allowed(i, rule)
            {
                out.push(fa.scanned.violation(rule, i));
                break;
            }
            from = pos;
        }
    }
    // Cross-thread RNG capture: an RNG binding declared before a
    // `.spawn(` closure and referenced inside its span. A same-named
    // binding declared inside the span shadows the outer one and is fine.
    for spawn in &fa.parsed.spawns {
        for binding in fa.parsed.rng_bindings() {
            if binding.line >= spawn.start_line && binding.line <= spawn.end_line {
                continue; // declared inside the closure
            }
            if binding.line > spawn.end_line {
                continue; // declared after; can't be captured
            }
            let shadowed = fa.parsed.rng_bindings().iter().any(|b| {
                b.name == binding.name && b.line >= spawn.start_line && b.line <= spawn.end_line
            });
            if shadowed {
                continue;
            }
            for j in spawn.start_line..=spawn.end_line.min(fa.scanned.lines.len() - 1) {
                let line = &fa.scanned.lines[j];
                if line.in_test {
                    continue;
                }
                // Skip the declaration-bearing spawn line itself when the
                // binding is a parameter of the spawning function.
                if j == binding.line {
                    continue;
                }
                if find_word(&line.code, &binding.name).is_some() && !fa.scanned.allowed(j, rule) {
                    out.push(fa.scanned.violation(rule, j));
                    break; // one report per (binding, spawn)
                }
            }
        }
    }
    out.sort_by_key(|v| v.line);
    out.dedup();
    out
}

/// One `Enum::Variant` path reference (the referencing file). A test
/// reference still counts as "alive" for the dead-entry check: a catalog
/// series exercised only by tests is a test-coverage question, not a
/// catalog typo.
#[derive(Debug, Clone)]
struct VariantRef {
    file: String,
}

/// The workspace symbol table: enum definitions and `Enum::Variant`
/// references, plus the obs catalog names.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    /// `(enum name, variant) ->` every reference site.
    variant_refs: BTreeMap<(String, String), Vec<VariantRef>>,
    /// Catalog metric names declared in the obs `name()` tables.
    catalog_names: BTreeSet<String>,
}

impl SymbolTable {
    /// Builds the table from every analysed file.
    pub fn build(files: &[FileAnalysis]) -> Self {
        let mut table = SymbolTable::default();
        for fa in files {
            for line in &fa.scanned.lines {
                collect_variant_refs(&line.code, |enum_name, variant| {
                    table
                        .variant_refs
                        .entry((enum_name.to_string(), variant.to_string()))
                        .or_default()
                        .push(VariantRef {
                            file: fa.scanned.path.clone(),
                        });
                });
            }
            // Catalog names: dotted string literals in non-test obs code
            // that are not call arguments — i.e. the `name()` match-arm
            // tables (`CounterKind::TasksAssigned => "tasks.assigned"`).
            if fa.scanned.path.starts_with(OBS_DIR) {
                for lit in &fa.parsed.strings {
                    if !lit.in_test && lit.callee.is_none() && is_dotted_name(&lit.text) {
                        table.catalog_names.insert(lit.text.clone());
                    }
                }
            }
        }
        table
    }

    /// The catalog names discovered in `crates/obs`.
    pub fn catalog_names(&self) -> &BTreeSet<String> {
        &self.catalog_names
    }

    /// Checks [`Rule::ObsCatalog`] in both directions: unknown dotted
    /// names at metric call sites, and catalog variants never referenced
    /// outside `crates/obs`.
    pub fn check_obs_catalog(&self, files: &[FileAnalysis]) -> Vec<Violation> {
        let rule = Rule::ObsCatalog;
        let mut out = Vec::new();
        // Direction 1: unknown names at call sites. Indexed counters
        // derive a `<name>.count` sibling series (see
        // `MetricsObserver::record_indexed`), recognised automatically.
        for fa in files {
            if !rule.applies_to(&fa.scanned.path) {
                continue;
            }
            for lit in &fa.parsed.strings {
                let Some(callee) = lit.callee.as_deref() else {
                    continue;
                };
                if !METRIC_CALLEES.contains(&callee) || !is_dotted_name(&lit.text) {
                    continue;
                }
                let base = lit.text.strip_suffix(".count").unwrap_or(&lit.text);
                if self.catalog_names.contains(lit.text.as_str())
                    || self.catalog_names.contains(base)
                    || fa.scanned.allowed(lit.line, rule)
                {
                    continue;
                }
                out.push(fa.scanned.violation(rule, lit.line));
            }
        }
        // Direction 2: dead catalog entries — a variant of the obs enums
        // with no `Enum::Variant` reference outside `crates/obs/src/`.
        for fa in files {
            if !fa.scanned.path.starts_with(OBS_DIR) {
                continue;
            }
            for def in &fa.parsed.enums {
                if !OBS_ENUMS.contains(&def.name.as_str()) || def.in_test {
                    continue;
                }
                for (variant, line) in &def.variants {
                    let key = (def.name.clone(), variant.clone());
                    let alive = self
                        .variant_refs
                        .get(&key)
                        .is_some_and(|refs| refs.iter().any(|r| !r.file.starts_with(OBS_DIR)));
                    if !alive && !fa.scanned.allowed(*line, rule) {
                        out.push(fa.scanned.violation(rule, *line));
                    }
                }
            }
        }
        out
    }

    /// Checks [`Rule::AuditEventExhaustiveness`]: every variant of
    /// `TaskEventKind` must be referenced inside the span of
    /// `fn verify_lifecycles` in `crates/core/src/events.rs`.
    pub fn check_audit_exhaustiveness(&self, files: &[FileAnalysis]) -> Vec<Violation> {
        let rule = Rule::AuditEventExhaustiveness;
        let mut out = Vec::new();
        for fa in files {
            if fa.scanned.path != AUDIT_FILE {
                continue;
            }
            let Some(def) = fa
                .parsed
                .enums
                .iter()
                .find(|d| d.name == AUDIT_ENUM && !d.in_test)
            else {
                continue;
            };
            let table_fn = fa
                .parsed
                .items
                .iter()
                .find(|it| it.kind == ItemKind::Fn && it.name == AUDIT_TABLE_FN);
            for (variant, decl_line) in &def.variants {
                let covered = table_fn.is_some_and(|f| {
                    (f.line..=f.end_line).any(|j| {
                        fa.scanned
                            .lines
                            .get(j)
                            .map(|l| {
                                l.code.contains(&format!("{AUDIT_ENUM}::{variant}"))
                                    || line_names_variant(&l.code, variant)
                            })
                            .unwrap_or(false)
                    })
                });
                if !covered && !fa.scanned.allowed(*decl_line, rule) {
                    out.push(fa.scanned.violation(rule, *decl_line));
                }
            }
        }
        out
    }
}

/// Does `code` reference `variant` as a bare enum path segment
/// (`Kind::Variant` imported via `use TaskEventKind::*` patterns are out
/// of idiom here, but match arms inside the table may shorten the path
/// after a `use super::TaskEventKind as K;` — cover `::Variant`).
fn line_names_variant(code: &str, variant: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find("::") {
        let pos = from + rel + 2;
        if ident_starting_at(code, pos) == Some(variant) {
            return true;
        }
        from = pos;
    }
    false
}

/// Calls `sink(enum_name, variant)` for every `Upper::ident` path pair
/// in one code line.
fn collect_variant_refs(code: &str, mut sink: impl FnMut(&str, &str)) {
    let mut from = 0;
    while let Some(rel) = code[from..].find("::") {
        let pos = from + rel;
        let before = ident_ending_at(code, pos);
        let after = ident_starting_at(code, pos + 2);
        if let (Some(b), Some(a)) = (before, after) {
            if b.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && a.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            {
                sink(b, a);
            }
        }
        from = pos + 2;
    }
}

/// A catalog-shaped metric name: lowercase dotted segments
/// (`tasks.assigned`, `tick.match.count`).
fn is_dotted_name(s: &str) -> bool {
    if !s.contains('.') {
        return false;
    }
    s.split('.').all(|seg| {
        !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

/// The identifier ending at byte offset `end` of `s` (exclusive), if any.
fn ident_ending_at(s: &str, end: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        return None;
    }
    Some(&s[start..end])
}

/// The identifier starting at byte offset `start` of `s`, if any.
fn ident_starting_at(s: &str, start: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    if start >= bytes.len() || !is_ident_byte(bytes[start]) || bytes[start].is_ascii_digit() {
        return None;
    }
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    Some(&s[start..end])
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `word` in `code` with identifier boundaries on both sides.
fn find_word(code: &str, word: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(word) {
        let pos = from + rel;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = bytes.get(after).is_none_or(|&b| !is_ident_byte(b));
        if before_ok && after_ok {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(path: &str, src: &str) -> FileAnalysis {
        FileAnalysis::new(path, src)
    }

    #[test]
    fn unordered_iter_flags_hash_receivers() {
        let src = "struct S { tasks: HashMap<u64, Task> }\nimpl S {\n    fn f(&self) {\n        for (_, t) in self.tasks.iter() {\n            use_task(t);\n        }\n    }\n}\n";
        let v = check_unordered_iter(&analyze("crates/core/src/x.rs", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnorderedHashIter);
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn unordered_iter_ignores_btree_and_sorted_sites() {
        // BTreeMap binding: ordered, never flagged.
        let btree = "struct S { tasks: BTreeMap<u64, Task> }\nfn f(s: &S) { for t in s.tasks.values() { go(t); } }\n";
        assert!(check_unordered_iter(&analyze("crates/core/src/x.rs", btree)).is_empty());
        // Hash binding, but the statement window sorts first.
        let sorted = "fn f(seen: HashSet<u64>) {\n    let mut v: Vec<_> = seen.iter().collect();\n    v.sort();\n}\n";
        assert!(check_unordered_iter(&analyze("crates/core/src/x.rs", sorted)).is_empty());
        // Out-of-scope crate.
        let src = "fn f(m: HashMap<u64, u64>) { for k in m.keys() { go(k); } }\n";
        assert!(check_unordered_iter(&analyze("crates/obs/src/x.rs", src)).is_empty());
        // Test code is exempt.
        let test = format!("#[cfg(test)]\nmod tests {{\n    {src}}}\n");
        assert!(check_unordered_iter(&analyze("crates/core/src/x.rs", &test)).is_empty());
    }

    #[test]
    fn unordered_iter_for_loop_and_allow_marker() {
        let src = "fn f(group_state: HashMap<u64, bool>) {\n    for (_, v) in group_state {\n        count(v);\n    }\n}\n";
        let v = check_unordered_iter(&analyze("crates/crowd/src/x.rs", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        let allowed = "fn f(group_state: HashMap<u64, bool>) {\n    // analyze: allow(unordered-hash-iter) commutative count\n    for (_, v) in group_state {\n        count(v);\n    }\n}\n";
        assert!(check_unordered_iter(&analyze("crates/crowd/src/x.rs", allowed)).is_empty());
    }

    #[test]
    fn rng_discipline_flags_magic_seeds() {
        let src = "fn f() { let rng = SmallRng::seed_from_u64(42); }\n";
        let v = check_rng_discipline(&analyze("crates/core/src/x.rs", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RngStreamDiscipline);
        // Derived seeds pass.
        let derived = "fn f(s: u64) { let rng = SmallRng::seed_from_u64(splitmix64(s)); }\n";
        assert!(check_rng_discipline(&analyze("crates/core/src/x.rs", derived)).is_empty());
        // The stream factory itself is exempt.
        assert!(check_rng_discipline(&analyze("crates/sim/src/rng.rs", src)).is_empty());
        // Test code is exempt (fixed seeds in tests are fine).
        let test = format!("#[cfg(test)]\nmod tests {{\n    {src}}}\n");
        assert!(check_rng_discipline(&analyze("crates/core/src/x.rs", &test)).is_empty());
    }

    #[test]
    fn rng_discipline_flags_cross_spawn_capture() {
        let src = "fn f(rng: &mut SmallRng, scope: &Scope) {\n    scope.spawn(move || {\n        draw(rng);\n    });\n}\n";
        let v = check_rng_discipline(&analyze("crates/core/src/x.rs", src));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        // A stream constructed inside the closure passes.
        let inside = "fn f(streams: &RngStreams, scope: &Scope) {\n    scope.spawn(move || {\n        let mut rng = streams.stream_indexed(\"region\", i);\n        draw(&mut rng);\n    });\n}\n";
        assert!(check_rng_discipline(&analyze("crates/core/src/x.rs", inside)).is_empty());
        // Allow marker suppresses.
        let allowed = "fn f(rng: &mut SmallRng, scope: &Scope) {\n    scope.spawn(move || {\n        draw(rng); // analyze: allow(rng-stream-discipline) single thread\n    });\n}\n";
        assert!(check_rng_discipline(&analyze("crates/core/src/x.rs", allowed)).is_empty());
    }

    #[test]
    fn obs_catalog_cross_checks_names() {
        let obs = analyze(
            "crates/obs/src/observer.rs",
            "pub enum CounterKind {\n    TasksAssigned,\n    NeverUsed,\n}\nimpl CounterKind {\n    pub fn name(&self) -> &'static str {\n        match self {\n            CounterKind::TasksAssigned => \"tasks.assigned\",\n            CounterKind::NeverUsed => \"never.used\",\n        }\n    }\n}\n",
        );
        let user = analyze(
            "crates/metrics/src/registry.rs",
            "fn f(reg: &Registry) {\n    reg.counter(\"tasks.assigned\");\n    reg.counter(\"tasks.assigned.count\");\n    reg.counter(\"tasks.asigned\");\n    obs.record(CounterKind::TasksAssigned);\n}\n",
        );
        let files = vec![obs, user];
        let table = SymbolTable::build(&files);
        assert!(table.catalog_names().contains("tasks.assigned"));
        let v = table.check_obs_catalog(&files);
        // One typo at the call site + one dead variant.
        assert_eq!(v.len(), 2, "{v:#?}");
        assert!(v
            .iter()
            .any(|x| x.file == "crates/metrics/src/registry.rs" && x.line == 4));
        assert!(v
            .iter()
            .any(|x| x.file == "crates/obs/src/observer.rs" && x.line == 3));
    }

    #[test]
    fn audit_exhaustiveness_requires_table_arm() {
        let src = "pub enum TaskEventKind {\n    Submitted,\n    Vanished,\n}\npub fn verify_lifecycles() {\n    match kind {\n        TaskEventKind::Submitted => {}\n        _ => {}\n    }\n}\n";
        let fa = analyze("crates/core/src/events.rs", src);
        let files = vec![fa];
        let table = SymbolTable::build(&files);
        let v = table.check_audit_exhaustiveness(&files);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].rule, Rule::AuditEventExhaustiveness);
        assert_eq!(v[0].line, 3, "reported at the Vanished declaration");
        // Same enum in any other file is not audited.
        let elsewhere = analyze("crates/cluster/src/events.rs", src);
        let files = vec![elsewhere];
        let table = SymbolTable::build(&files);
        assert!(table.check_audit_exhaustiveness(&files).is_empty());
    }
}
