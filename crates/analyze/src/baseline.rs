//! The shrink-only violation baseline (`analyze-baseline.toml`).
//!
//! Pre-existing violations are grandfathered per `(rule, file)` count in
//! a checked-in TOML file. The ratchet is strict in both directions:
//!
//! * a file with **more** violations than its baseline entry fails the
//!   check (new violations never land), and
//! * a file with **fewer** violations than its baseline entry also fails,
//!   with instructions to regenerate — so the baseline can only shrink
//!   and burned-down debt can never silently creep back.
//!
//! The format is a deliberately tiny TOML subset (section headers +
//! `"path" = count` pairs) so no external parser is needed:
//!
//! ```toml
//! [no-panic-in-lib]
//! "crates/core/src/server.rs" = 2
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::rules::{Rule, Violation, ALL_RULES};

/// Grandfathered violation counts per rule and file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<Rule, BTreeMap<String, usize>>,
}

/// A problem found while parsing a baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineParseError {
    /// 1-based line number in the baseline file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BaselineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline line {}: {}", self.line, self.message)
    }
}

/// One divergence between the observed violations and the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Divergence {
    /// More violations than the baseline allows — new debt.
    Exceeded {
        /// The rule involved.
        rule: Rule,
        /// Workspace-relative file.
        file: String,
        /// Grandfathered count (0 when the file has no entry).
        allowed: usize,
        /// Observed count.
        actual: usize,
        /// The violations beyond explanation by the baseline.
        violations: Vec<Violation>,
    },
    /// Fewer violations than the baseline records — the baseline is
    /// stale and must shrink.
    Stale {
        /// The rule involved.
        rule: Rule,
        /// Workspace-relative file.
        file: String,
        /// Grandfathered count.
        allowed: usize,
        /// Observed count.
        actual: usize,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Exceeded {
                rule,
                file,
                allowed,
                actual,
                ..
            } => write!(
                f,
                "[{rule}] {file}: {actual} violation(s), baseline allows {allowed}"
            ),
            Divergence::Stale {
                rule,
                file,
                allowed,
                actual,
            } => write!(
                f,
                "[{rule}] {file}: baseline records {allowed} but only {actual} remain \
                 — shrink the baseline (cargo run -p react-analyze -- --write-baseline)"
            ),
        }
    }
}

impl Baseline {
    /// An empty baseline (everything must be clean).
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Builds a baseline that grandfathers exactly `violations`.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut counts: BTreeMap<Rule, BTreeMap<String, usize>> = BTreeMap::new();
        for v in violations {
            *counts
                .entry(v.rule)
                .or_default()
                .entry(v.file.clone())
                .or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// The grandfathered count for `(rule, file)`.
    pub fn allowed(&self, rule: Rule, file: &str) -> usize {
        self.counts
            .get(&rule)
            .and_then(|m| m.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Total grandfathered violations across all rules.
    pub fn total(&self) -> usize {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Parses the `analyze-baseline.toml` format.
    pub fn parse(text: &str) -> Result<Self, BaselineParseError> {
        let mut counts: BTreeMap<Rule, BTreeMap<String, usize>> = BTreeMap::new();
        let mut current: Option<Rule> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let rule = Rule::from_name(section.trim()).ok_or_else(|| BaselineParseError {
                    line: lineno,
                    message: format!("unknown rule section [{section}]"),
                })?;
                current = Some(rule);
                counts.entry(rule).or_default();
                continue;
            }
            let rule = current.ok_or_else(|| BaselineParseError {
                line: lineno,
                message: "entry before any [rule] section".to_string(),
            })?;
            let (key, value) = line.split_once('=').ok_or_else(|| BaselineParseError {
                line: lineno,
                message: "expected `\"path\" = count`".to_string(),
            })?;
            let key = key.trim();
            let path = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| BaselineParseError {
                    line: lineno,
                    message: "path must be double-quoted".to_string(),
                })?;
            let count: usize = value.trim().parse().map_err(|_| BaselineParseError {
                line: lineno,
                message: format!("invalid count {:?}", value.trim()),
            })?;
            if count == 0 {
                return Err(BaselineParseError {
                    line: lineno,
                    message: "zero-count entries are not allowed; delete the line".to_string(),
                });
            }
            let per_file = counts.entry(rule).or_default();
            if per_file.insert(path.to_string(), count).is_some() {
                return Err(BaselineParseError {
                    line: lineno,
                    message: format!("duplicate entry for {path:?}"),
                });
            }
        }
        Ok(Baseline { counts })
    }

    /// Serializes back to the `analyze-baseline.toml` format
    /// (deterministic ordering, round-trips through [`Baseline::parse`]).
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Grandfathered react-analyze violations. Shrink-only: CI fails if a file\n\
             # gains violations OR if an entry here overstates what remains. Regenerate\n\
             # with `cargo run -p react-analyze -- --write-baseline` after burning debt.\n",
        );
        for rule in ALL_RULES {
            let Some(per_file) = self.counts.get(&rule) else {
                continue;
            };
            if per_file.is_empty() {
                continue;
            }
            out.push('\n');
            out.push_str(&format!("[{}]\n", rule.name()));
            for (path, count) in per_file {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        out
    }

    /// Compares observed violations against the baseline. Empty result
    /// means the check passes.
    pub fn diff(&self, violations: &[Violation]) -> Vec<Divergence> {
        let actual = Baseline::from_violations(violations);
        let mut out = Vec::new();
        // Every (rule, file) appearing on either side.
        let mut keys: Vec<(Rule, String)> = Vec::new();
        for (rule, per_file) in actual.counts.iter().chain(self.counts.iter()) {
            for file in per_file.keys() {
                let key = (*rule, file.clone());
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        keys.sort();
        for (rule, file) in keys {
            let allowed = self.allowed(rule, &file);
            let n = actual.allowed(rule, &file);
            if n > allowed {
                let extra: Vec<Violation> = violations
                    .iter()
                    .filter(|v| v.rule == rule && v.file == file)
                    .skip(allowed)
                    .cloned()
                    .collect();
                out.push(Divergence::Exceeded {
                    rule,
                    file,
                    allowed,
                    actual: n,
                    violations: extra,
                });
            } else if n < allowed {
                out.push(Divergence::Stale {
                    rule,
                    file,
                    allowed,
                    actual: n,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: Rule, file: &str, line: usize) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            snippet: "x".to_string(),
        }
    }

    #[test]
    fn round_trip() {
        let vs = [
            v(Rule::NoPanicInLib, "crates/core/src/a.rs", 1),
            v(Rule::NoPanicInLib, "crates/core/src/a.rs", 9),
            v(Rule::NoFloatEq, "crates/matching/src/react.rs", 100),
        ];
        let b = Baseline::from_violations(&vs);
        let parsed = Baseline::parse(&b.serialize()).expect("round trip");
        assert_eq!(b, parsed);
        assert_eq!(parsed.total(), 3);
        assert_eq!(
            parsed.allowed(Rule::NoPanicInLib, "crates/core/src/a.rs"),
            2
        );
    }

    #[test]
    fn exact_match_passes() {
        let vs = [
            v(Rule::NoPanicInLib, "a.rs", 1),
            v(Rule::NoPanicInLib, "a.rs", 2),
        ];
        let b = Baseline::from_violations(&vs);
        assert!(b.diff(&vs).is_empty());
    }

    #[test]
    fn new_violation_fails() {
        let b = Baseline::from_violations(&[v(Rule::NoPanicInLib, "a.rs", 1)]);
        let now = [
            v(Rule::NoPanicInLib, "a.rs", 1),
            v(Rule::NoPanicInLib, "a.rs", 5),
        ];
        let d = b.diff(&now);
        assert_eq!(d.len(), 1);
        assert!(matches!(
            &d[0],
            Divergence::Exceeded {
                allowed: 1,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn new_file_fails_against_empty_baseline() {
        let d = Baseline::empty().diff(&[v(Rule::NoWallClock, "b.rs", 3)]);
        assert_eq!(d.len(), 1);
        assert!(matches!(
            &d[0],
            Divergence::Exceeded {
                allowed: 0,
                actual: 1,
                ..
            }
        ));
    }

    #[test]
    fn stale_entry_fails_shrink_only() {
        let b = Baseline::from_violations(&[
            v(Rule::NoPanicInLib, "a.rs", 1),
            v(Rule::NoPanicInLib, "a.rs", 2),
        ]);
        let d = b.diff(&[v(Rule::NoPanicInLib, "a.rs", 1)]);
        assert_eq!(d.len(), 1);
        assert!(matches!(
            &d[0],
            Divergence::Stale {
                allowed: 2,
                actual: 1,
                ..
            }
        ));
        // Fully cleaned file with a lingering entry is also stale.
        let d = b.diff(&[]);
        assert_eq!(d.len(), 1);
        assert!(matches!(
            &d[0],
            Divergence::Stale {
                allowed: 2,
                actual: 0,
                ..
            }
        ));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[not-a-rule]\n").is_err());
        assert!(Baseline::parse("\"orphan.rs\" = 1\n").is_err());
        assert!(Baseline::parse("[no-float-eq]\nunquoted = 1\n").is_err());
        assert!(Baseline::parse("[no-float-eq]\n\"a.rs\" = zero\n").is_err());
        assert!(Baseline::parse("[no-float-eq]\n\"a.rs\" = 0\n").is_err());
        assert!(Baseline::parse("[no-float-eq]\n\"a.rs\" = 1\n\"a.rs\" = 2\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# header\n\n[no-float-eq]\n# note\n\"a.rs\" = 2\n").expect("ok");
        assert_eq!(b.allowed(Rule::NoFloatEq, "a.rs"), 2);
    }
}
