//! The lint rules and the token-level file scanner.
//!
//! The scanner is deliberately simple: it strips comments and string
//! literal *contents* from each line (so rule patterns never fire inside
//! documentation or message text), tracks `#[cfg(test)]` regions with a
//! brace counter (so rules can exempt test code), honours the
//! `analyze: allow(...)` / `analyze: allow-file(...)` escape markers, and
//! then matches plain token patterns. No macro expansion, no type
//! information — rules are written so that token-level matching is
//! sufficient (see each rule's docs for its exact heuristic).

use std::fmt;

/// The project rules enforced over workspace source files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No ambient wall-clock reads (`Instant::now`, `SystemTime::now`)
    /// or raw timing arithmetic (`.elapsed(`) outside the sanctioned
    /// clock module (`react-runtime::clock`) and the observability leaf
    /// crate (`react-obs`, whose `SpanTimer` is the one sanctioned way
    /// to measure a span). The parallel runner's
    /// bit-identical-determinism guarantee depends on scheduling
    /// decisions never observing real time.
    NoWallClock,
    /// No ambient randomness (`thread_rng`, `from_entropy`,
    /// `rand::random`): RNGs must be seeded streams from
    /// `react-sim::rng` or injected `RngCore` handles, or reproducibility
    /// from a master seed is silently lost.
    NoAmbientRng,
    /// No `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!`
    /// in non-test code of the library crates (`react-core`,
    /// `react-matching`, `react-prob`): failures must surface as typed
    /// errors. (`debug_assert!` stays legal — it vanishes in release.)
    NoPanicInLib,
    /// No `==` / `!=` against floating-point literals: edge weights and
    /// fitness values are `f64`, and exact equality on computed floats is
    /// a latent bug. Heuristic: flags comparisons where either operand is
    /// a float literal (`x == 0.0`); variable-vs-variable comparisons are
    /// invisible to a token scanner and left to review.
    NoFloatEq,
    /// Every `feature = "name"` in a `cfg` must name a feature declared
    /// in the owning crate's `Cargo.toml`; an undeclared feature gate is
    /// dead code that silently never compiles.
    FeatureGateHygiene,
    /// No raw wall-clock sleeps in test code: `thread::sleep` in a test
    /// couples the suite to real time, which makes it slow at best and
    /// flaky under CI load at worst. Waiting must go through the
    /// `ScaledClock` conversion (`clock.to_wall(...)`) or stay in
    /// simulated time entirely. The inverse of the other rules: it fires
    /// *only* inside test code (`tests/` trees, `benches/`,
    /// `#[cfg(test)]` regions).
    NoSleepInTests,
    /// No unordered iteration over `HashMap`/`HashSet` bindings in
    /// scheduling-visible crates (`core`, `matching`, `cluster`, `crowd`,
    /// `faults`): hash iteration order varies across runs and toolchains,
    /// so any scheduling decision downstream of it silently breaks the
    /// serial ≡ parallel bit-identity guarantee. Symbol-aware: fires on
    /// `for`-loops and `.iter()`/`.keys()`/`.values()`/`.drain()` calls
    /// whose receiver resolves to a binding declared with a hash-ordered
    /// type in the same file, unless the surrounding statement sorts or
    /// collects into a `BTreeMap`/`BTreeSet` first.
    UnorderedHashIter,
    /// Every RNG must derive from a named stream: flags magic literal
    /// seeds (`seed_from_u64(42)` — use `RngStreams::stream("label")`,
    /// which SplitMix64-derives from the master seed) and RNG bindings
    /// declared *outside* a closure that is passed across a `.spawn(`
    /// thread boundary (shared RNG state across scoped threads makes
    /// draw order depend on interleaving). Complements `no-ambient-rng`,
    /// which catches `thread_rng`/`from_entropy` construction.
    RngStreamDiscipline,
    /// Observer-catalog consistency: every dotted metric-name string
    /// literal passed to a `counter(`/`histogram(`/`span(`/`series(`
    /// call site must name an entry of the catalog declared in
    /// `crates/obs` (the `SpanKind`/`CounterKind`/`HistogramKind`
    /// `name()` tables), and every catalog variant must be referenced
    /// somewhere outside `crates/obs` — an unknown name is a typo that
    /// silently records to a dead series, and an unreferenced variant is
    /// a dead catalog entry.
    ObsCatalog,
    /// Audit-event exhaustiveness: every `TaskEventKind` variant must
    /// appear in the lifecycle transition table that
    /// `verify_lifecycles` consults (`crates/core/src/events.rs`), so a
    /// new event kind cannot ship without a legality rule for replay
    /// verification.
    AuditEventExhaustiveness,
    /// No raw sockets (`std::net`, `TcpListener`, `TcpStream`,
    /// `UdpSocket`) outside the sanctioned wire boundary: the ingest
    /// front-end (`crates/runtime/src/ingest/`) and its load-generator
    /// counterpart (`crates/load/src/`). Network reads anywhere else
    /// would smuggle non-determinism (peer timing, kernel buffering)
    /// into code the replay guarantee covers. Test trees stay exempt —
    /// golden wire tests drive the boundary from outside.
    NetBoundary,
}

/// All rules, in reporting order.
pub const ALL_RULES: [Rule; 11] = [
    Rule::NoWallClock,
    Rule::NoAmbientRng,
    Rule::NoPanicInLib,
    Rule::NoFloatEq,
    Rule::FeatureGateHygiene,
    Rule::NoSleepInTests,
    Rule::UnorderedHashIter,
    Rule::RngStreamDiscipline,
    Rule::ObsCatalog,
    Rule::AuditEventExhaustiveness,
    Rule::NetBoundary,
];

/// Whether `path` (workspace-relative, forward slashes) is a test-only
/// tree: integration tests, benches, or demo code.
pub(crate) fn in_test_tree(path: &str) -> bool {
    path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.starts_with("examples/")
}

impl Rule {
    /// The rule's stable name — used in baseline sections and allow
    /// markers.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoAmbientRng => "no-ambient-rng",
            Rule::NoPanicInLib => "no-panic-in-lib",
            Rule::NoFloatEq => "no-float-eq",
            Rule::FeatureGateHygiene => "feature-gate-hygiene",
            Rule::NoSleepInTests => "no-sleep-in-tests",
            Rule::UnorderedHashIter => "unordered-hash-iter",
            Rule::RngStreamDiscipline => "rng-stream-discipline",
            Rule::ObsCatalog => "obs-catalog",
            Rule::AuditEventExhaustiveness => "audit-event-exhaustiveness",
            Rule::NetBoundary => "net-boundary",
        }
    }

    /// A one-paragraph explanation plus concrete fix guidance, for
    /// `react-analyze --explain <rule>`.
    pub fn explain(&self) -> (&'static str, &'static str) {
        match self {
            Rule::NoWallClock => (
                "Scheduling code must never observe real time: `Instant::now()`, \
                 `SystemTime::now()` and `.elapsed()` make decisions depend on host load, \
                 which breaks bit-identical replay from a seed.",
                "Thread simulated time through explicitly (crowd-seconds), measure spans \
                 with `react_obs::SpanTimer`, and keep real-time conversion inside \
                 `react-runtime`'s `ScaledClock`.",
            ),
            Rule::NoAmbientRng => (
                "`thread_rng()` / `from_entropy()` / `rand::random` pull entropy from the \
                 OS, so two runs with the same master seed diverge.",
                "Take an `&mut impl Rng` parameter, or derive a stream with \
                 `react_sim::rng::RngStreams::stream(\"label\")` — every draw then replays \
                 from the master seed.",
            ),
            Rule::NoPanicInLib => (
                "`unwrap()` / `expect()` / `panic!` in `react-core`, `react-matching` or \
                 `react-prob` turns a recoverable condition into a process abort inside \
                 the scheduling loop.",
                "Return `Result<_, ReactError>` (or keep the invariant in a \
                 `debug_assert!`, which vanishes in release builds).",
            ),
            Rule::NoFloatEq => (
                "Edge weights and fitness values are computed `f64`s; `==`/`!=` against a \
                 float literal is a latent always-false (or flaky) comparison.",
                "Compare against an epsilon band, use total ordering (`total_cmp`), or \
                 restate the condition on the integer quantity that produced the float.",
            ),
            Rule::FeatureGateHygiene => (
                "A `#[cfg(feature = \"name\")]` whose name is not declared in the owning \
                 crate's Cargo.toml compiles to silently-dead code.",
                "Declare the feature under `[features]` in the crate manifest, or fix the \
                 typo in the gate.",
            ),
            Rule::NoSleepInTests => (
                "`thread::sleep` in tests couples the suite to wall time: slow at best, \
                 flaky under CI load at worst.",
                "Sleep through the scaled clock (`thread::sleep(clock.to_wall(crowd_secs))`) \
                 so waits shrink with the test clock, or restructure the test to run in \
                 simulated time.",
            ),
            Rule::UnorderedHashIter => (
                "Iterating a `HashMap`/`HashSet` yields an arbitrary, run-dependent order; \
                 in scheduling-visible crates any decision downstream of that order breaks \
                 the serial ≡ parallel bit-identity guarantee probabilistically — exactly \
                 the class of bug proptests only catch sometimes.",
                "Switch the binding to `BTreeMap`/`BTreeSet`, or sort before use \
                 (`let mut v: Vec<_> = m.iter().collect(); v.sort_by_key(...)`), or collect \
                 into a `BTreeMap` in the same statement. Order-insensitive reductions \
                 (counting, summing) may carry `// analyze: allow(unordered-hash-iter) \
                 <why>` with a justification.",
            ),
            Rule::RngStreamDiscipline => (
                "A magic literal seed (`seed_from_u64(42)`) is not derived from the master \
                 seed, so it cannot be replayed or swept; an RNG captured by a closure \
                 crossing a `.spawn(` boundary makes draw order depend on thread \
                 interleaving.",
                "Derive RNGs from named streams: `RngStreams::new(master).stream(\"label\")` \
                 or `stream_indexed(\"label\", i)` for per-shard streams — each spawned \
                 closure must construct its own stream inside the closure body.",
            ),
            Rule::ObsCatalog => (
                "Metric names are declared once in `crates/obs` (`SpanKind` / `CounterKind` \
                 / `HistogramKind` and their `name()` tables). A dotted name at a \
                 `counter(`/`histogram(`/`span(`/`series(` call site that is not in the \
                 catalog records to a series no dashboard knows; a catalog variant never \
                 referenced outside `crates/obs` is dead weight.",
                "Fix the typo at the call site, or add the name to the catalog enum in \
                 `crates/obs/src/observer.rs`; delete (or wire up) dead variants. Derived \
                 `<name>.count` series from indexed counters are recognised automatically.",
            ),
            Rule::AuditEventExhaustiveness => (
                "`verify_lifecycles` replays the audit log against a per-task legality \
                 table; a `TaskEventKind` variant missing from that table means the new \
                 event ships without any replay-time legality rule (PR 6's `HandedOff` \
                 almost did).",
                "Add a transition arm for the variant inside `fn verify_lifecycles` in \
                 `crates/core/src/events.rs` — both the states it is legal from and the \
                 state it moves the task to.",
            ),
            Rule::NetBoundary => (
                "Raw sockets (`std::net`, `TcpListener`/`TcpStream`/`UdpSocket`) outside \
                 the sanctioned wire boundary smuggle peer timing and kernel buffering \
                 into code covered by the bit-identical-replay guarantee.",
                "Keep socket I/O inside `crates/runtime/src/ingest/` (the door) or \
                 `crates/load/src/` (the generator); everything else exchanges messages \
                 over channels. Test trees may open sockets to drive the boundary from \
                 outside.",
            ),
        }
    }

    /// Parses a rule name (the inverse of [`Rule::name`]).
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }

    /// Whether the rule applies to `path` (workspace-relative, forward
    /// slashes). Test-only trees (`tests/`, `benches/`) and demo code
    /// (`examples/`) are exempt from everything except feature-gate
    /// hygiene, which is checked by the workspace walker separately.
    pub fn applies_to(&self, path: &str) -> bool {
        if in_test_tree(path) {
            return matches!(
                self,
                Rule::FeatureGateHygiene | Rule::NoSleepInTests | Rule::ObsCatalog
            );
        }
        match self {
            Rule::NoWallClock => {
                path != "crates/runtime/src/clock.rs" && !path.starts_with("crates/obs/src/")
            }
            Rule::NoAmbientRng => path != "crates/sim/src/rng.rs",
            Rule::NoPanicInLib => {
                path.starts_with("crates/core/src/")
                    || path.starts_with("crates/matching/src/")
                    || path.starts_with("crates/prob/src/")
            }
            Rule::NoFloatEq => true,
            Rule::FeatureGateHygiene => true,
            // `#[cfg(test)]` modules live inside crate sources too.
            Rule::NoSleepInTests => true,
            Rule::UnorderedHashIter => [
                "crates/core/src/",
                "crates/matching/src/",
                "crates/cluster/src/",
                "crates/crowd/src/",
                "crates/faults/src/",
            ]
            .iter()
            .any(|p| path.starts_with(p)),
            Rule::RngStreamDiscipline => path != "crates/sim/src/rng.rs",
            Rule::ObsCatalog => true,
            // The transition table lives in one file; violations are
            // reported at the variant declarations there.
            Rule::AuditEventExhaustiveness => path == "crates/core/src/events.rs",
            Rule::NetBoundary => {
                !path.starts_with("crates/runtime/src/ingest/")
                    && !path.starts_with("crates/load/src/")
            }
        }
    }

    /// Whether violations inside `#[cfg(test)]` regions count.
    pub fn applies_to_test_code(&self) -> bool {
        matches!(
            self,
            Rule::FeatureGateHygiene | Rule::NoSleepInTests | Rule::ObsCatalog
        )
    }

    /// Whether the rule fires *only* inside test code (test trees and
    /// `#[cfg(test)]` regions) — the inverse scope of every other rule.
    pub fn test_only(&self) -> bool {
        matches!(self, Rule::NoSleepInTests)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )
    }
}

/// One source line after preprocessing.
#[derive(Debug, Clone)]
pub struct ScanLine {
    /// The line with comments and string-literal contents blanked.
    pub code: String,
    /// The comment text of the line (for allow markers).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// A preprocessed source file ready for rule matching.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The raw source lines (for snippets).
    pub raw_lines: Vec<String>,
    /// Preprocessed lines, parallel to `raw_lines`.
    pub lines: Vec<ScanLine>,
    /// Rules disabled for the whole file via `analyze: allow-file(...)`.
    pub file_allows: Vec<Rule>,
    /// Per-line allows: `(line index, rule)` pairs.
    pub line_allows: Vec<(usize, Rule)>,
}

impl ScannedFile {
    /// Preprocesses `source` (the contents of `path`).
    pub fn new(path: &str, source: &str) -> Self {
        let (code_text, comment_text) = strip_non_code(source);
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let code_lines: Vec<&str> = code_text.lines().collect();
        let comment_lines: Vec<&str> = comment_text.lines().collect();
        let test_flags = mark_test_regions(&code_lines);

        let mut file_allows = Vec::new();
        let mut line_allows = Vec::new();
        for (i, comment) in comment_lines.iter().enumerate() {
            for rule in parse_markers(comment, "analyze: allow-file(") {
                file_allows.push(rule);
            }
            for rule in parse_markers(comment, "analyze: allow(") {
                let has_code = code_lines
                    .get(i)
                    .map(|c| !c.trim().is_empty())
                    .unwrap_or(false);
                // A standalone comment marker covers the next line.
                let target = if has_code { i } else { i + 1 };
                line_allows.push((target, rule));
            }
        }

        let n = raw_lines.len();
        let lines = (0..n)
            .map(|i| ScanLine {
                code: code_lines.get(i).unwrap_or(&"").to_string(),
                comment: comment_lines.get(i).unwrap_or(&"").to_string(),
                in_test: test_flags.get(i).copied().unwrap_or(false),
            })
            .collect();
        ScannedFile {
            path: path.to_string(),
            raw_lines,
            lines,
            file_allows,
            line_allows,
        }
    }

    pub(crate) fn allowed(&self, line_idx: usize, rule: Rule) -> bool {
        self.file_allows.contains(&rule)
            || self
                .line_allows
                .iter()
                .any(|&(l, r)| l == line_idx && r == rule)
    }

    /// Runs every applicable token rule over the file.
    /// ([`Rule::FeatureGateHygiene`] needs the crate's feature list and
    /// runs from [`crate::workspace`] via
    /// [`ScannedFile::check_feature_gates`].)
    pub fn check_token_rules(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        let test_tree = in_test_tree(&self.path);
        for rule in [
            Rule::NoWallClock,
            Rule::NoAmbientRng,
            Rule::NoPanicInLib,
            Rule::NoFloatEq,
            Rule::NoSleepInTests,
            Rule::NetBoundary,
        ] {
            if !rule.applies_to(&self.path) {
                continue;
            }
            for (i, line) in self.lines.iter().enumerate() {
                let in_test = line.in_test || test_tree;
                if in_test && !rule.applies_to_test_code() {
                    continue;
                }
                if rule.test_only() && !in_test {
                    continue;
                }
                if !line_matches(rule, &line.code) || self.allowed(i, rule) {
                    continue;
                }
                out.push(self.violation(rule, i));
            }
        }
        out
    }

    /// Checks every `feature = "name"` gate against the declared feature
    /// names of the owning crate.
    pub fn check_feature_gates(&self, declared: &[String]) -> Vec<Violation> {
        let rule = Rule::FeatureGateHygiene;
        if !rule.applies_to(&self.path) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, line) in self.lines.iter().enumerate() {
            // String contents are blanked by preprocessing, so the
            // feature name must be recovered from the raw line; the
            // blanked line still proves the gate is real code.
            if !line.code.contains("feature") {
                continue;
            }
            for name in feature_names_in(&self.raw_lines[i]) {
                if !declared.iter().any(|d| d == &name) && !self.allowed(i, rule) {
                    out.push(self.violation(rule, i));
                }
            }
        }
        out
    }

    pub(crate) fn violation(&self, rule: Rule, line_idx: usize) -> Violation {
        Violation {
            rule,
            file: self.path.clone(),
            line: line_idx + 1,
            snippet: self.raw_lines[line_idx].trim().to_string(),
        }
    }
}

/// Does one preprocessed code line violate `rule`?
fn line_matches(rule: Rule, code: &str) -> bool {
    match rule {
        Rule::NoWallClock => {
            code.contains("Instant::now")
                || code.contains("SystemTime::now")
                || code.contains(".elapsed(")
        }
        Rule::NoAmbientRng => {
            code.contains("thread_rng")
                || code.contains("from_entropy")
                || code.contains("rand::random")
        }
        Rule::NoPanicInLib => {
            code.contains(".unwrap()")
                || code.contains(".expect(")
                || code.contains("panic!(")
                || code.contains("todo!(")
                || code.contains("unimplemented!(")
        }
        Rule::NoFloatEq => has_float_literal_eq(code),
        Rule::FeatureGateHygiene => false, // handled by check_feature_gates
        Rule::NoSleepInTests => {
            // `clock.to_wall(...)` is the sanctioned ScaledClock
            // conversion; a sleep through it scales with the test clock.
            code.contains("thread::sleep") && !code.contains("to_wall(")
        }
        Rule::NetBoundary => {
            code.contains("std::net")
                || code.contains("TcpListener")
                || code.contains("TcpStream")
                || code.contains("UdpSocket")
        }
        // Symbol-aware rules run from `crate::symbols`, not per line.
        Rule::UnorderedHashIter
        | Rule::RngStreamDiscipline
        | Rule::ObsCatalog
        | Rule::AuditEventExhaustiveness => false,
    }
}

/// Detects `== <float literal>` / `!= <float literal>` (either operand
/// side). A float literal here is `digits '.' [digits]`, optionally with
/// an `f32`/`f64` suffix or exponent.
fn has_float_literal_eq(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &code[i..i + 2];
        if two == "==" || two == "!=" {
            // Skip ===-like runs (not Rust, but be safe) and comparisons
            // that are part of `<=`/`>=` (previous char `<`/`>`).
            let prev = if i > 0 { bytes[i - 1] } else { b' ' };
            if prev != b'<' && prev != b'>' && prev != b'=' && bytes.get(i + 2) != Some(&b'=') {
                let left = code[..i].trim_end();
                let right = code[i + 2..].trim_start();
                if ends_with_float_literal(left) || starts_with_float_literal(right) {
                    return true;
                }
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    false
}

fn starts_with_float_literal(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s).trim_start();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i == 0 || i >= bytes.len() {
        return false;
    }
    // digits '.' — reject method calls like `0.max(...)` by requiring the
    // char after '.' to not start an identifier.
    if bytes[i] != b'.' {
        return false;
    }
    match bytes.get(i + 1) {
        None => true,
        Some(c) => c.is_ascii_digit() || !(c.is_ascii_alphabetic() || *c == b'_'),
    }
}

fn ends_with_float_literal(s: &str) -> bool {
    let s = s.trim_end();
    // Strip a type suffix (`0.5f64`).
    let s = s.strip_suffix("f64").unwrap_or(s);
    let s = s.strip_suffix("f32").unwrap_or(s);
    let bytes = s.as_bytes();
    let mut i = bytes.len();
    while i > 0 && bytes[i - 1].is_ascii_digit() {
        i -= 1;
    }
    let frac_digits = bytes.len() - i;
    if i == 0 || bytes[i - 1] != b'.' {
        return false;
    }
    // The '.' must follow digits (a literal like `1.0` / `3.`), not an
    // identifier (`x.0` is a tuple field — only flag when there are
    // fractional digits AND integer digits before the dot).
    let mut j = i - 1;
    while j > 0 && bytes[j - 1].is_ascii_digit() {
        j -= 1;
    }
    let int_digits = (i - 1) - j;
    if int_digits == 0 {
        return false;
    }
    // Reject tuple-field access `pair.0` by requiring the char before the
    // integer digits to not be '.' or an identifier char.
    if j > 0 {
        let c = bytes[j - 1];
        if c == b'.' || c.is_ascii_alphanumeric() || c == b'_' {
            return false;
        }
    }
    frac_digits > 0 || int_digits > 0
}

/// Extracts `feature = "name"` names from a raw source line.
fn feature_names_in(raw: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find("feature") {
        rest = &rest[pos + "feature".len()..];
        let after = rest.trim_start();
        if let Some(after_eq) = after.strip_prefix('=') {
            let after_eq = after_eq.trim_start();
            if let Some(stripped) = after_eq.strip_prefix('"') {
                if let Some(end) = stripped.find('"') {
                    out.push(stripped[..end].to_string());
                }
            }
        }
    }
    out
}

/// Parses `analyze: allow(<rule>)`-style markers out of comment text.
fn parse_markers(comment: &str, prefix: &str) -> Vec<Rule> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find(prefix) {
        rest = &rest[pos + prefix.len()..];
        if let Some(end) = rest.find(')') {
            if let Some(rule) = Rule::from_name(rest[..end].trim()) {
                out.push(rule);
            }
        }
    }
    out
}

/// Splits source into a code-only copy and a comment-only copy (same
/// line structure; non-code bytes blanked with spaces in the code copy
/// and vice versa). String and char literal *contents* are blanked in
/// the code copy so token patterns never fire inside text.
fn strip_non_code(source: &str) -> (String, String) {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = State::Code;
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    code.push(' ');
                    comment.push(c);
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code.push(' ');
                    comment.push(c);
                }
                '"' => {
                    state = State::Str;
                    code.push('"');
                    comment.push(' ');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                            comment.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        i = j + 1;
                        continue;
                    }
                    code.push(c);
                    comment.push(' ');
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes
                    // within a few chars (`'a'`, `'\n'`, `'\u{1F600}'`);
                    // a lifetime never closes with a quote.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&'\\') {
                        j += 1;
                        if bytes.get(j) == Some(&'u') {
                            while j < bytes.len() && bytes[j] != '\'' {
                                j += 1;
                            }
                        } else {
                            j += 1;
                        }
                    } else if bytes.get(j).is_some() {
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'\'') {
                        state = State::Char;
                        code.push('\'');
                        comment.push(' ');
                    } else {
                        code.push(c); // lifetime tick
                        comment.push(' ');
                    }
                }
                '\n' => {
                    code.push('\n');
                    comment.push('\n');
                }
                _ => {
                    code.push(c);
                    comment.push(' ');
                }
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    code.push('\n');
                    comment.push('\n');
                } else {
                    code.push(' ');
                    comment.push(c);
                }
            }
            State::BlockComment(depth) => {
                if c == '\n' {
                    code.push('\n');
                    comment.push('\n');
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    code.push(' ');
                    code.push(' ');
                    comment.push('*');
                    comment.push('/');
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    comment.push('/');
                    comment.push('*');
                    i += 2;
                    continue;
                } else {
                    code.push(' ');
                    comment.push(c);
                }
            }
            State::Str => match c {
                '\\' => {
                    // Preserve line structure when the escaped char is a
                    // newline (string line-continuation `\` at EOL).
                    let fill = if next == Some('\n') { '\n' } else { ' ' };
                    code.push(' ');
                    code.push(fill);
                    comment.push(' ');
                    comment.push(fill);
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Code;
                    code.push('"');
                    comment.push(' ');
                }
                '\n' => {
                    code.push('\n');
                    comment.push('\n');
                }
                _ => {
                    code.push(' ');
                    comment.push(' ');
                }
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        state = State::Code;
                        code.push('"');
                        comment.push(' ');
                        for _ in 0..hashes {
                            code.push(' ');
                            comment.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                    code.push(' ');
                    comment.push(' ');
                } else if c == '\n' {
                    code.push('\n');
                    comment.push('\n');
                } else {
                    code.push(' ');
                    comment.push(' ');
                }
            }
            State::Char => {
                if c == '\'' {
                    state = State::Code;
                    code.push('\'');
                    comment.push(' ');
                } else if c == '\\' {
                    code.push(' ');
                    code.push(' ');
                    comment.push(' ');
                    comment.push(' ');
                    i += 2;
                    continue;
                } else {
                    code.push(' ');
                    comment.push(' ');
                }
            }
        }
        i += 1;
    }
    (code, comment)
}

/// Marks which lines fall inside `#[cfg(test)]` regions, by tracking the
/// brace depth of the item that follows the attribute.
fn mark_test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; code_lines.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    let mut region_depth: Option<i64> = None;
    for (i, line) in code_lines.iter().enumerate() {
        if line.contains("#[cfg(test)]") || line.contains("#[cfg(all(test") {
            pending_attr = true;
        }
        if region_depth.is_some() {
            flags[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_attr && region_depth.is_none() {
                        region_depth = Some(depth);
                        pending_attr = false;
                        flags[i] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if let Some(rd) = region_depth {
                        if depth <= rd {
                            region_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Violation> {
        ScannedFile::new(path, src).check_token_rules()
    }

    #[test]
    fn wall_clock_flagged_outside_allowed_files() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let v = scan("crates/core/src/scheduling.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoWallClock);
        assert_eq!(v[0].line, 1);
        // The sanctioned clock module and the observability leaf crate
        // (home of `SpanTimer`) are exempt; the server is NOT — its
        // stage timings must go through `react_obs::SpanTimer`.
        assert!(scan("crates/runtime/src/clock.rs", src).is_empty());
        assert!(scan("crates/obs/src/timer.rs", src).is_empty());
        assert_eq!(scan("crates/core/src/server.rs", src).len(), 1);
    }

    #[test]
    fn raw_timing_arithmetic_flagged() {
        let src = "fn f(t: std::time::Instant) -> f64 { t.elapsed().as_secs_f64() }\n";
        let v = scan("crates/core/src/server.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoWallClock);
        assert!(scan("crates/obs/src/timer.rs", src).is_empty());
        // Identifiers merely containing the word are not flagged.
        assert!(scan(
            "crates/core/src/server.rs",
            "let elapsed = timings.total();\n"
        )
        .is_empty());
    }

    #[test]
    fn ambient_rng_flagged() {
        let src = "fn f() { let mut r = rand::thread_rng(); }\n";
        let v = scan("crates/crowd/src/runner.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoAmbientRng);
    }

    #[test]
    fn panic_hygiene_scoped_to_lib_crates() {
        let src = "fn f() { x.unwrap(); y.expect(\"boom\"); panic!(\"no\"); }\n";
        let v = scan("crates/core/src/weight.rs", src);
        assert_eq!(v.len(), 1, "one violation per line, not per token");
        assert_eq!(v[0].rule, Rule::NoPanicInLib);
        // Outside the three lib crates the rule is silent.
        assert!(scan("crates/crowd/src/runner.rs", src).is_empty());
    }

    #[test]
    fn float_eq_heuristic() {
        for bad in [
            "if weight == 0.0 {",
            "if 1.5 != x {",
            "let b = f == 0.25f64;",
            "while x != 10.0 {",
        ] {
            assert_eq!(
                scan("crates/geo/src/grid.rs", &format!("{bad}\n")).len(),
                1,
                "{bad}"
            );
        }
        for good in [
            "if weight <= 0.0 {",
            "if a == b {",
            "if pair.0 == other.0 {",
            "if n == 10 {",
            "let s = \"x == 0.0\";",
            "// weight == 0.0 would be wrong",
        ] {
            assert!(
                scan("crates/geo/src/grid.rs", &format!("{good}\n")).is_empty(),
                "{good}"
            );
        }
    }

    #[test]
    fn comments_strings_and_chars_do_not_fire() {
        let src = r#"
// Instant::now() in a comment
/* thread_rng in a block comment */
fn f() {
    let s = "Instant::now()";
    let c = '"';
    let after_char_literal = Instant::now(); // real violation
}
"#;
        let v = scan("crates/geo/src/grid.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 7);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        assert!(scan("crates/core/src/weight.rs", src).is_empty());
        // ...but code after the test module is scanned again.
        let src2 = format!("{src}fn h() {{ y.unwrap(); }}\n");
        let v = scan("crates/core/src/weight.rs", &src2);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn allow_markers_suppress() {
        let line_marker =
            "fn f() { let t = Instant::now(); } // analyze: allow(no-wall-clock) legit\n";
        assert!(scan("crates/geo/src/grid.rs", line_marker).is_empty());
        let standalone = "// analyze: allow(no-wall-clock) next line is sanctioned\nfn f() { let t = Instant::now(); }\n";
        assert!(scan("crates/geo/src/grid.rs", standalone).is_empty());
        let file_marker = "// analyze: allow-file(no-wall-clock) benchmark harness\nfn f() { let t = Instant::now(); }\nfn g() { let t = Instant::now(); }\n";
        assert!(scan("crates/geo/src/grid.rs", file_marker).is_empty());
        // A marker for a different rule does not suppress.
        let wrong = "fn f() { let t = Instant::now(); } // analyze: allow(no-float-eq)\n";
        assert_eq!(scan("crates/geo/src/grid.rs", wrong).len(), 1);
    }

    #[test]
    fn feature_gate_check_uses_declared_list() {
        let src =
            "#[cfg(feature = \"parallel\")]\nfn f() {}\n#[cfg(feature = \"tubro\")]\nfn g() {}\n";
        let file = ScannedFile::new("crates/core/src/par.rs", src);
        let v = file.check_feature_gates(&["parallel".to_string()]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FeatureGateHygiene);
        assert_eq!(v[0].line, 3);
        assert!(file
            .check_feature_gates(&["parallel".to_string(), "tubro".to_string()])
            .is_empty());
    }

    #[test]
    fn raw_sleeps_flagged_in_test_code_only() {
        let sleep = "fn f() { std::thread::sleep(Duration::from_millis(20)); }\n";
        // Test trees: flagged.
        let v = scan("tests/fault_recovery.rs", sleep);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoSleepInTests);
        // `#[cfg(test)]` regions inside crate sources: flagged too.
        let src = format!("fn f() {{}}\n#[cfg(test)]\nmod tests {{\n    {sleep}}}\n");
        let v = scan("crates/runtime/src/worker_host.rs", &src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NoSleepInTests);
        // Non-test code is out of scope (the runtime's own clock-driven
        // sleep is legal — and goes through `to_wall` anyway).
        assert!(scan("crates/runtime/src/runtime.rs", sleep).is_empty());
        // The sanctioned ScaledClock conversion is exempt everywhere.
        let scaled = "fn f() { thread::sleep(clock.to_wall(wait)); }\n";
        assert!(scan("tests/end_to_end.rs", scaled).is_empty());
        // Allow markers still work.
        let allowed =
            "fn f() { std::thread::sleep(d); } // analyze: allow(no-sleep-in-tests) why\n";
        assert!(scan("tests/end_to_end.rs", allowed).is_empty());
    }

    #[test]
    fn tests_dir_exempt_from_token_rules() {
        let src = "fn f() { let t = Instant::now(); x.unwrap(); }\n";
        assert!(scan("tests/end_to_end.rs", src).is_empty());
        assert!(scan("crates/bench/benches/fig3.rs", src).is_empty());
        assert!(scan("examples/quickstart.rs", src).is_empty());
    }

    #[test]
    fn sockets_flagged_outside_the_wire_boundary() {
        let src = "fn f() { let l = std::net::TcpListener::bind(addr); }\n";
        // Scheduling-visible code: flagged once per offending line.
        let v = scan("crates/core/src/server.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NetBoundary);
        // The sanctioned boundary on both sides of the wire is exempt.
        assert!(scan("crates/runtime/src/ingest/server.rs", src).is_empty());
        assert!(scan("crates/load/src/client.rs", src).is_empty());
        // But the rest of the runtime crate is not.
        let v = scan("crates/runtime/src/runtime.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::NetBoundary);
        // Test trees drive the boundary from outside — exempt.
        assert!(scan("tests/wire_protocol.rs", src).is_empty());
        // All the socket tokens are covered.
        for token in ["TcpStream::connect(a)", "UdpSocket::bind(a)"] {
            let src = format!("fn f() {{ let s = {token}; }}\n");
            let v = scan("crates/crowd/src/runner.rs", &src);
            assert_eq!(v.len(), 1, "{token} must be flagged");
        }
        // Allow markers still work.
        let allowed = "fn f() { let s = TcpStream::connect(a); } \
// analyze: allow(net-boundary) health probe\n";
        assert!(scan("crates/cluster/src/router.rs", allowed).is_empty());
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in ALL_RULES {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("nope"), None);
    }
}
