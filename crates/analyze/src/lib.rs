//! Workspace invariant checker for the REACT codebase.
//!
//! REACT's correctness claims rest on invariants the Rust compiler cannot
//! see: runs must be bit-identically reproducible from a seed (so no
//! ambient wall-clock or RNG in scheduling code), library crates must
//! surface failures as typed errors rather than panics, and weighted
//! edges must never be compared with exact float equality. This crate is
//! a small, fully offline static analysis engine that enforces those
//! project rules over the workspace's `.rs` files — no rustc plugin, no
//! network, no third-party parser.
//!
//! Two layers:
//!
//! * **token rules** ([`rules`]) match patterns over comment/string
//!   stripped code lines;
//! * **symbol-aware rules** ([`parser`], [`symbols`]) run over a
//!   lightweight item-level parse (items, enum variants, typed bindings,
//!   string literals with call-site callees, `.spawn(` closure spans)
//!   plus a cross-file symbol table — unordered hash iteration in
//!   scheduling-visible crates, RNG stream discipline across thread
//!   boundaries, observer-catalog consistency, and audit-event
//!   transition-table exhaustiveness.
//!
//! The engine is rule-driven ([`rules`]), walks the workspace
//! ([`workspace`]), and ratchets existing violations through a checked-in
//! baseline file ([`baseline`]): new violations fail the check, the
//! baseline can only shrink.
//!
//! Escape hatches, for code whose violation is *by design*:
//!
//! * `analyze: allow(<rule>)` in a comment — exempts the same line (or,
//!   when the comment stands alone, the next line);
//! * `analyze: allow-file(<rule>)` in a comment — exempts the whole file.
//!
//! Both markers should carry a trailing justification. The CLI
//! (`cargo run -p react-analyze`) exits non-zero on any violation not
//! covered by the baseline, which is how CI consumes it.

pub mod baseline;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod workspace;

pub use baseline::Baseline;
pub use rules::{Rule, Violation};
pub use symbols::{FileAnalysis, SymbolTable};
pub use workspace::{CheckOutcome, Workspace};
