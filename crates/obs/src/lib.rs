//! Observability layer for REACT: structured spans, typed counters,
//! histograms, and pluggable sinks.
//!
//! The scheduling stack reports *what happened* through the [`Observer`]
//! trait: every server tick stage, matcher run, reassignment decision,
//! profile refit, and multi-region execution emits spans and counters.
//! Sinks decide what to do with them:
//!
//! * [`NullObserver`] — the default; reports `enabled() == false` so hot
//!   paths skip all bookkeeping. Provably zero-cost: schedules are
//!   bit-identical with or without it.
//! * [`RecordingObserver`] — accumulates span statistics, counters, and
//!   histograms in memory for tests, benches, and report generation.
//! * [`JsonLinesObserver`] — streams one JSON object per event to any
//!   `Write` sink for offline analysis.
//! * [`FanoutObserver`] — composes several sinks behind one handle.
//!
//! A bridge into `react-metrics::registry` lives in the `react-metrics`
//! crate (`MetricsObserver`) to keep this crate dependency-free.
//!
//! This crate is a *leaf*: it sits below `react-core` and therefore
//! cannot use `react-runtime`'s clock layer (which depends on core).
//! It owns the only other sanctioned use of monotonic wall-clock reads
//! in the workspace — see [`SpanTimer`] — and the `react-analyze`
//! `no-wall-clock` lint enforces that sanction.
//!
//! Observers are strictly write-only from the scheduler's perspective:
//! nothing in the scheduling pipeline reads observer state back, so no
//! sink can perturb assignment decisions.

#![warn(missing_docs)]

mod fanout;
mod histogram;
mod json;
mod observer;
mod recording;
mod timer;

pub use fanout::FanoutObserver;
pub use histogram::{Histogram, HistogramBucket};
pub use json::JsonLinesObserver;
pub use observer::{
    null_observer, CounterKind, HistogramKind, NullObserver, Observer, ObserverHandle, SpanKind,
};
pub use recording::{CounterEntry, RecordingObserver, SpanStats};
pub use timer::SpanTimer;
