//! In-memory accumulating sink for tests, benches, and reports.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::Histogram;
use crate::observer::{CounterKind, HistogramKind, Observer, SpanKind};

/// Aggregate statistics for one span kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStats {
    /// Number of spans recorded.
    pub count: u64,
    /// Sum of all span durations, in seconds.
    pub total_seconds: f64,
    /// Shortest span, in seconds.
    pub min_seconds: f64,
    /// Longest span, in seconds.
    pub max_seconds: f64,
}

impl SpanStats {
    fn absorb(&mut self, seconds: f64) {
        self.count += 1;
        self.total_seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
    }

    /// Mean span duration in seconds (0 when no spans were recorded).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }
}

/// One named counter value, as returned by [`RecordingObserver::counters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterEntry {
    /// Stable dotted counter name.
    pub name: &'static str,
    /// Accumulated value.
    pub value: u64,
}

#[derive(Default)]
struct Inner {
    spans: BTreeMap<&'static str, SpanStats>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Accumulates every event in memory behind a mutex.
///
/// Cloning is shallow: clones share the same buffers, so a clone handed
/// to a server keeps feeding the original held by the test.
#[derive(Clone, Default)]
pub struct RecordingObserver {
    inner: Arc<Mutex<Inner>>,
}

impl RecordingObserver {
    /// New empty recorder.
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// Statistics for `kind`, or `None` if no such span was recorded.
    pub fn span_stats(&self, kind: SpanKind) -> Option<SpanStats> {
        self.inner.lock().spans.get(kind.name()).copied()
    }

    /// Current value of `kind` (0 if never incremented).
    pub fn counter(&self, kind: CounterKind) -> u64 {
        self.inner
            .lock()
            .counters
            .get(kind.name())
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of the histogram for `kind`, or `None` if empty.
    pub fn histogram(&self, kind: HistogramKind) -> Option<Histogram> {
        self.inner.lock().histograms.get(kind.name()).cloned()
    }

    /// All non-zero counters in name order.
    pub fn counters(&self) -> Vec<CounterEntry> {
        self.inner
            .lock()
            .counters
            .iter()
            .map(|(&name, &value)| CounterEntry { name, value })
            .collect()
    }

    /// All span stats in name order.
    pub fn spans(&self) -> Vec<(&'static str, SpanStats)> {
        self.inner
            .lock()
            .spans
            .iter()
            .map(|(&n, &s)| (n, s))
            .collect()
    }

    /// Discard everything recorded so far.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.spans.clear();
        inner.counters.clear();
        inner.histograms.clear();
    }

    /// Human-readable multi-line summary (spans, then counters), used by
    /// bench reports and debugging.
    pub fn summary(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        out.push_str("spans:\n");
        for (name, s) in &inner.spans {
            out.push_str(&format!(
                "  {:<18} count={:<8} total={:.6}s mean={:.9}s max={:.9}s\n",
                name,
                s.count,
                s.total_seconds,
                s.mean_seconds(),
                s.max_seconds,
            ));
        }
        out.push_str("counters:\n");
        for (name, v) in &inner.counters {
            out.push_str(&format!("  {:<28} {}\n", name, v));
        }
        if !inner.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &inner.histograms {
                out.push_str(&format!(
                    "  {:<18} count={} mean={:.6} p99<={:.6}\n",
                    name,
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.quantile(0.99).unwrap_or(0.0),
                ));
            }
        }
        out
    }
}

impl std::fmt::Debug for RecordingObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("RecordingObserver")
            .field("spans", &inner.spans.len())
            .field("counters", &inner.counters.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Observer for RecordingObserver {
    fn span(&self, kind: SpanKind, seconds: f64) {
        let mut inner = self.inner.lock();
        inner
            .spans
            .entry(kind.name())
            .or_insert(SpanStats {
                count: 0,
                total_seconds: 0.0,
                min_seconds: f64::INFINITY,
                max_seconds: f64::NEG_INFINITY,
            })
            .absorb(seconds);
    }

    fn incr(&self, kind: CounterKind, by: u64) {
        *self.inner.lock().counters.entry(kind.name()).or_insert(0) += by;
    }

    fn observe(&self, kind: HistogramKind, value: f64) {
        self.inner
            .lock()
            .histograms
            .entry(kind.name())
            .or_default()
            .record(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_counters_histograms() {
        let rec = RecordingObserver::new();
        rec.span(SpanKind::Tick, 0.25);
        rec.span(SpanKind::Tick, 0.75);
        rec.incr(CounterKind::TasksAssigned, 2);
        rec.incr(CounterKind::TasksAssigned, 3);
        rec.observe(HistogramKind::MatchingSeconds, 0.01);

        let stats = rec.span_stats(SpanKind::Tick).unwrap();
        assert_eq!(stats.count, 2);
        assert!((stats.total_seconds - 1.0).abs() < 1e-12);
        assert!((stats.mean_seconds() - 0.5).abs() < 1e-12);
        assert_eq!(stats.min_seconds, 0.25);
        assert_eq!(stats.max_seconds, 0.75);

        assert_eq!(rec.counter(CounterKind::TasksAssigned), 5);
        assert_eq!(rec.counter(CounterKind::TasksExpired), 0);
        assert_eq!(
            rec.histogram(HistogramKind::MatchingSeconds)
                .unwrap()
                .count(),
            1
        );
        assert!(rec.histogram(HistogramKind::ExecSeconds).is_none());
    }

    #[test]
    fn clones_share_state() {
        let rec = RecordingObserver::new();
        let clone = rec.clone();
        clone.incr(CounterKind::RegionsRun, 4);
        assert_eq!(rec.counter(CounterKind::RegionsRun), 4);
        rec.reset();
        assert_eq!(clone.counter(CounterKind::RegionsRun), 0);
    }

    #[test]
    fn summary_names_everything_recorded() {
        let rec = RecordingObserver::new();
        rec.span(SpanKind::StageMatch, 0.1);
        rec.incr(CounterKind::MatcherCycles, 10);
        rec.observe(HistogramKind::BatchSize, 12.0);
        let s = rec.summary();
        assert!(s.contains("tick.match"));
        assert!(s.contains("matcher.cycles"));
        assert!(s.contains("batch.size"));
    }
}
