//! JSON-lines export sink.

use std::io::Write;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::observer::{CounterKind, HistogramKind, Observer, SpanKind};

/// Streams one JSON object per event to a `Write` sink.
///
/// Output shape (one object per line, no trailing commas):
///
/// ```text
/// {"event":"span","name":"tick.match","seconds":0.00042}
/// {"event":"counter","name":"matcher.cycles","by":1200}
/// {"event":"hist","name":"matching.seconds","value":0.0185}
/// ```
///
/// Event names come from the typed vocabularies in this crate and
/// contain only `[a-z._]`, so no string escaping is required. Non-finite
/// numbers (which JSON cannot represent) are emitted as `null`.
///
/// Write errors are swallowed: telemetry export must never take down a
/// scheduling run.
pub struct JsonLinesObserver {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesObserver {
    /// Export to an arbitrary writer (file, stdout lock, socket, ...).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesObserver {
            out: Mutex::new(writer),
        }
    }

    /// Export into a shared in-memory buffer; returns the observer and
    /// the buffer handle so callers (mainly tests) can inspect the
    /// emitted lines afterwards.
    pub fn shared_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer = SharedBufferWriter {
            buf: Arc::clone(&buf),
        };
        (JsonLinesObserver::new(Box::new(writer)), buf)
    }

    fn emit(&self, line: String) {
        let mut out = self.out.lock();
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl std::fmt::Debug for JsonLinesObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonLinesObserver")
    }
}

/// Format an `f64` as a JSON number, mapping non-finite values to `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Observer for JsonLinesObserver {
    fn span(&self, kind: SpanKind, seconds: f64) {
        self.emit(format!(
            r#"{{"event":"span","name":"{}","seconds":{}}}"#,
            kind.name(),
            json_f64(seconds)
        ));
    }

    fn incr(&self, kind: CounterKind, by: u64) {
        self.emit(format!(
            r#"{{"event":"counter","name":"{}","by":{}}}"#,
            kind.name(),
            by
        ));
    }

    fn observe(&self, kind: HistogramKind, value: f64) {
        self.emit(format!(
            r#"{{"event":"hist","name":"{}","value":{}}}"#,
            kind.name(),
            json_f64(value)
        ));
    }
}

struct SharedBufferWriter {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl Write for SharedBufferWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.lock().extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn emits_one_object_per_line_with_expected_shape() {
        let (obs, buf) = JsonLinesObserver::shared_buffer();
        obs.span(SpanKind::StageMatch, 0.5);
        obs.incr(CounterKind::MatcherCycles, 42);
        obs.observe(HistogramKind::MatchingSeconds, 0.125);

        let lines = lines(&buf);
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            r#"{"event":"span","name":"tick.match","seconds":0.5}"#
        );
        assert_eq!(
            lines[1],
            r#"{"event":"counter","name":"matcher.cycles","by":42}"#
        );
        assert_eq!(
            lines[2],
            r#"{"event":"hist","name":"matching.seconds","value":0.125}"#
        );
    }

    #[test]
    fn every_line_is_minimally_valid_json() {
        let (obs, buf) = JsonLinesObserver::shared_buffer();
        obs.span(SpanKind::Tick, 1e-7);
        obs.span(SpanKind::RegionRun, 3.25);
        obs.incr(CounterKind::RegionsRun, 1);
        for line in lines(&buf) {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            assert!(line.contains(r#""event":"#), "line: {line}");
            assert!(line.contains(r#""name":"#), "line: {line}");
            // Balanced quotes (even count) is a cheap well-formedness proxy.
            assert_eq!(line.matches('"').count() % 2, 0, "line: {line}");
        }
    }

    #[test]
    fn nonfinite_values_become_null() {
        let (obs, buf) = JsonLinesObserver::shared_buffer();
        obs.span(SpanKind::Tick, f64::NAN);
        obs.observe(HistogramKind::ExecSeconds, f64::INFINITY);
        let lines = lines(&buf);
        assert_eq!(lines[0], r#"{"event":"span","name":"tick","seconds":null}"#);
        assert_eq!(
            lines[1],
            r#"{"event":"hist","name":"exec.seconds","value":null}"#
        );
    }
}
