//! Composition of several sinks behind one handle.

use crate::observer::{CounterKind, HistogramKind, Observer, ObserverHandle, SpanKind};

/// Forwards every event to each wrapped sink.
///
/// `enabled()` is true iff any wrapped sink is enabled, so wrapping only
/// disabled sinks keeps the fanout itself zero-cost. Disabled sinks are
/// skipped on every event.
#[derive(Clone, Default)]
pub struct FanoutObserver {
    sinks: Vec<ObserverHandle>,
}

impl FanoutObserver {
    /// Compose the given sinks.
    pub fn new(sinks: Vec<ObserverHandle>) -> Self {
        FanoutObserver { sinks }
    }

    /// Add one more sink.
    pub fn push(&mut self, sink: ObserverHandle) {
        self.sinks.push(sink);
    }
}

impl std::fmt::Debug for FanoutObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FanoutObserver({} sinks)", self.sinks.len())
    }
}

impl Observer for FanoutObserver {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn span(&self, kind: SpanKind, seconds: f64) {
        for s in &self.sinks {
            if s.enabled() {
                s.span(kind, seconds);
            }
        }
    }

    fn incr(&self, kind: CounterKind, by: u64) {
        for s in &self.sinks {
            if s.enabled() {
                s.incr(kind, by);
            }
        }
    }

    fn observe(&self, kind: HistogramKind, value: f64) {
        for s in &self.sinks {
            if s.enabled() {
                s.observe(kind, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::null_observer;
    use crate::recording::RecordingObserver;
    use std::sync::Arc;

    #[test]
    fn forwards_to_all_enabled_sinks() {
        let a = RecordingObserver::new();
        let b = RecordingObserver::new();
        let fan = FanoutObserver::new(vec![
            Arc::new(a.clone()),
            null_observer(),
            Arc::new(b.clone()),
        ]);
        assert!(fan.enabled());
        fan.incr(CounterKind::TasksAssigned, 7);
        fan.span(SpanKind::Tick, 0.5);
        assert_eq!(a.counter(CounterKind::TasksAssigned), 7);
        assert_eq!(b.counter(CounterKind::TasksAssigned), 7);
        assert_eq!(b.span_stats(SpanKind::Tick).unwrap().count, 1);
    }

    #[test]
    fn all_null_sinks_mean_disabled() {
        let fan = FanoutObserver::new(vec![null_observer(), null_observer()]);
        assert!(!fan.enabled());
        let empty = FanoutObserver::default();
        assert!(!empty.enabled());
    }
}
