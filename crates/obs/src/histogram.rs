//! Exponential-bucket histogram for latency-like distributions.

/// One histogram bucket: counts values in `(lower, upper]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBucket {
    /// Exclusive lower bound (0 for the first bucket).
    pub lower: f64,
    /// Inclusive upper bound (`f64::INFINITY` for the overflow bucket).
    pub upper: f64,
    /// Number of recorded values that fell in this bucket.
    pub count: u64,
}

/// A histogram with exponentially growing bucket bounds.
///
/// Latency distributions in the scheduler span many orders of magnitude
/// (a stage timer may read hundreds of nanoseconds, a matching batch
/// tens of milliseconds), so buckets grow geometrically: bucket `i`
/// (for `i < n-1`) covers `(first * factor^(i-1), first * factor^i]`,
/// with bucket 0 covering `[0, first]` and the last bucket catching
/// everything above the largest bound, including non-finite values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    first_bound: f64,
    factor: f64,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Default layout: 40 buckets starting at 1 µs growing ×2, covering
    /// roughly 1e-6 s … 5e5 s before the overflow bucket.
    pub fn new() -> Self {
        Histogram::with_layout(1e-6, 2.0, 40)
    }

    /// Custom layout. `first_bound` must be positive and finite,
    /// `factor` must exceed 1, and there must be at least 2 buckets;
    /// out-of-range arguments are clamped to the nearest valid value.
    pub fn with_layout(first_bound: f64, factor: f64, buckets: usize) -> Self {
        let first_bound = if first_bound.is_finite() && first_bound > 0.0 {
            first_bound
        } else {
            1e-6
        };
        let factor = if factor.is_finite() && factor > 1.0 {
            factor
        } else {
            2.0
        };
        let buckets = buckets.max(2);
        Histogram {
            first_bound,
            factor,
            counts: vec![0; buckets],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one value.
    pub fn record(&mut self, value: f64) {
        let idx = self.bucket_index(value);
        self.counts[idx] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Index of the bucket `value` falls into.
    ///
    /// Negative values land in bucket 0; non-finite values land in the
    /// overflow bucket.
    pub fn bucket_index(&self, value: f64) -> usize {
        let last = self.counts.len() - 1;
        if !value.is_finite() {
            return last;
        }
        if value <= self.first_bound {
            return 0;
        }
        // Smallest i with first_bound * factor^i >= value.
        let i = (value / self.first_bound).ln() / self.factor.ln();
        let i = i.ceil() as usize;
        i.min(last)
    }

    /// Inclusive upper bound of bucket `i` (infinite for the last).
    pub fn bucket_upper(&self, i: usize) -> f64 {
        if i + 1 >= self.counts.len() {
            f64::INFINITY
        } else {
            self.first_bound * self.factor.powi(i as i32)
        }
    }

    /// All buckets with their bounds and counts.
    pub fn buckets(&self) -> Vec<HistogramBucket> {
        (0..self.counts.len())
            .map(|i| HistogramBucket {
                lower: if i == 0 {
                    0.0
                } else {
                    self.bucket_upper(i - 1)
                },
                upper: self.bucket_upper(i),
                count: self.counts[i],
            })
            .collect()
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of finite recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Smallest finite recorded value, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.min.is_finite() {
            Some(self.min)
        } else {
            None
        }
    }

    /// Largest finite recorded value, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.max.is_finite() {
            Some(self.max)
        } else {
            None
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) read from bucket bounds:
    /// returns the upper bound of the bucket containing the `q`-th
    /// value. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_upper(i).min(self.max.max(self.first_bound)));
            }
        }
        Some(self.bucket_upper(self.counts.len() - 1))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_bucket_catches_small_and_negative() {
        let h = Histogram::with_layout(1e-6, 2.0, 8);
        assert_eq!(h.bucket_index(0.0), 0);
        assert_eq!(h.bucket_index(-5.0), 0);
        assert_eq!(h.bucket_index(1e-6), 0);
        assert_eq!(h.bucket_index(5e-7), 0);
    }

    #[test]
    fn bucket_bounds_are_geometric_and_half_open() {
        let h = Histogram::with_layout(1e-6, 2.0, 8);
        // (1e-6, 2e-6] -> bucket 1, (2e-6, 4e-6] -> bucket 2, ...
        assert_eq!(h.bucket_index(1.5e-6), 1);
        assert_eq!(h.bucket_index(2e-6), 1);
        assert_eq!(h.bucket_index(2.1e-6), 2);
        assert_eq!(h.bucket_index(4e-6), 2);
        assert!((h.bucket_upper(0) - 1e-6).abs() < 1e-18);
        assert!((h.bucket_upper(1) - 2e-6).abs() < 1e-18);
        assert!((h.bucket_upper(2) - 4e-6).abs() < 1e-18);
    }

    #[test]
    fn overflow_bucket_catches_large_and_nonfinite() {
        let h = Histogram::with_layout(1e-6, 2.0, 4);
        // Bounds: 1e-6, 2e-6, 4e-6, then overflow.
        assert_eq!(h.bucket_index(1.0), 3);
        assert_eq!(h.bucket_index(f64::INFINITY), 3);
        assert_eq!(h.bucket_index(f64::NAN), 3);
        assert_eq!(h.bucket_upper(3), f64::INFINITY);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        for v in [0.001, 0.002, 0.004] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 0.007).abs() < 1e-12);
        assert!((h.mean().unwrap() - 0.007 / 3.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(0.001));
        assert_eq!(h.max(), Some(0.004));
    }

    #[test]
    fn buckets_partition_all_records() {
        let mut h = Histogram::with_layout(0.5, 2.0, 6);
        for i in 0..100 {
            h.record(i as f64 * 0.137);
        }
        let total: u64 = h.buckets().iter().map(|b| b.count).sum();
        assert_eq!(total, 100);
        // Adjacent buckets tile the line: upper(i) == lower(i+1).
        let bs = h.buckets();
        for w in bs.windows(2) {
            assert_eq!(w[0].upper, w[1].lower);
        }
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-5);
        }
        let q50 = h.quantile(0.5).unwrap();
        let q99 = h.quantile(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q99 <= h.max().unwrap() * 2.0 + 1e-12);
        assert_eq!(Histogram::new().quantile(0.5), None);
    }

    #[test]
    fn degenerate_layouts_are_clamped() {
        let h = Histogram::with_layout(-1.0, 0.5, 0);
        assert!(h.counts.len() >= 2);
        assert!(h.first_bound > 0.0);
        assert!(h.factor > 1.0);
    }
}
