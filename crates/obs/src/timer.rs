//! Monotonic span timing.
//!
//! `react-obs` sits below `react-core` in the dependency graph, so it
//! cannot reuse `react-runtime::clock` (which depends on core). This
//! module is therefore the second — and last — sanctioned home of raw
//! monotonic clock reads in the workspace; the `react-analyze`
//! `no-wall-clock` lint rejects `Instant::now()` everywhere else.
//!
//! Durations measured here describe *how long work took*; they are
//! never used as scheduling inputs, so they cannot break determinism.

use std::time::Instant;

use crate::observer::{Observer, SpanKind};

/// Measures one span against the process monotonic clock.
///
/// The timer always measures — callers like `ReactServer::tick` need
/// the stage duration for `StageTimings` whether or not any sink is
/// listening — and only *reports* to the observer when it is enabled.
#[derive(Debug)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Start timing now.
    pub fn start() -> Self {
        SpanTimer {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed so far, without consuming the timer.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Stop the timer, report the span to `obs` if it is enabled, and
    /// return the measured duration in seconds.
    pub fn finish(self, obs: &dyn Observer, kind: SpanKind) -> f64 {
        let seconds = self.start.elapsed().as_secs_f64();
        if obs.enabled() {
            obs.span(kind, seconds);
        }
        seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recording::RecordingObserver;
    use crate::NullObserver;

    #[test]
    fn finish_returns_nonnegative_seconds() {
        let t = SpanTimer::start();
        let secs = t.finish(&NullObserver, SpanKind::Tick);
        assert!(secs >= 0.0 && secs.is_finite());
    }

    #[test]
    fn finish_reports_to_enabled_observer() {
        let rec = RecordingObserver::new();
        let t = SpanTimer::start();
        let secs = t.finish(&rec, SpanKind::StageBuild);
        let stats = rec.span_stats(SpanKind::StageBuild).expect("span recorded");
        assert_eq!(stats.count, 1);
        assert!((stats.total_seconds - secs).abs() < 1e-12);
    }

    #[test]
    fn elapsed_is_monotone() {
        let t = SpanTimer::start();
        let a = t.elapsed_secs();
        let b = t.elapsed_secs();
        assert!(b >= a);
    }
}
