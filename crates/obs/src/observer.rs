//! The [`Observer`] trait, the typed span/counter/histogram vocabularies,
//! and the zero-cost [`NullObserver`].

use std::sync::Arc;

/// A timed region of the scheduling pipeline.
///
/// Span names form a dotted taxonomy: `tick` covers a whole
/// `ReactServer::tick`, `tick.*` its five stages, `matcher.assign` one
/// `MatcherEngine` run inside `tick.match`, and `region.run` one region's
/// full scenario execution under `MultiRegionRunner`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// One full `ReactServer::tick` call.
    Tick,
    /// Deadline-expiry sweep at the top of a tick.
    StageExpire,
    /// Eq.(2) recall scan over running assignments.
    StageRecall,
    /// Bipartite graph construction (profile refits + edge pruning).
    StageBuild,
    /// Matcher execution over the built graph.
    StageMatch,
    /// Commit of the matching: task state flips, cost-model charging.
    StageCommit,
    /// One `MatcherEngine::assign` run (nested inside [`SpanKind::StageMatch`]).
    MatcherAssign,
    /// One region's scenario execution inside `MultiRegionRunner`.
    RegionRun,
    /// One shard server's tick inside a `Cluster` control step.
    ShardTick,
    /// One HTTP request handled by the ingest front-end (parse +
    /// admission decision + response write).
    IngestRequest,
}

impl SpanKind {
    /// Stable dotted name used by sinks (JSON lines, metrics bridge).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Tick => "tick",
            SpanKind::StageExpire => "tick.expire",
            SpanKind::StageRecall => "tick.recall",
            SpanKind::StageBuild => "tick.build",
            SpanKind::StageMatch => "tick.match",
            SpanKind::StageCommit => "tick.commit",
            SpanKind::MatcherAssign => "matcher.assign",
            SpanKind::RegionRun => "region.run",
            SpanKind::ShardTick => "shard.tick",
            SpanKind::IngestRequest => "ingest.request",
        }
    }
}

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CounterKind {
    /// Tasks dropped because their deadline passed unassigned.
    TasksExpired,
    /// Dynamic reassignments triggered by the Eq.(2) recall model.
    Reassignments,
    /// Task→worker assignments committed.
    TasksAssigned,
    /// Matching batches executed (a tick may skip the batch stages).
    BatchesRun,
    /// Local-search cycles executed by the matcher.
    MatcherCycles,
    /// Edge flips accepted during matcher cycles.
    FlipsAccepted,
    /// Edge flips rejected during matcher cycles.
    FlipsRejected,
    /// Conflicts resolved by the REACT upgrade rule (new edge displaced
    /// strictly-worse incumbents).
    ConflictsResolved,
    /// Matcher instances (re)built after a spec or budget change.
    MatcherRebuilds,
    /// Worker latency profiles refit during graph build.
    ProfileRefits,
    /// Graph-build rows served from the batch scratch's phase-A cache
    /// (profile epoch unchanged since the previous batch).
    BuildRowsReused,
    /// Eq.(3) edge decisions answered by the memoized deadline gate
    /// instead of an exact CCDF evaluation.
    BuildCdfMemoHits,
    /// Heap bytes of graph/row buffers carried over from the previous
    /// batch instead of freshly allocated.
    ScratchBytesReused,
    /// Regions executed by `MultiRegionRunner`.
    RegionsRun,
    /// Tasks completed by workers.
    TasksCompleted,
    /// Completed tasks that met their deadline.
    DeadlinesMet,
    /// Positive-feedback profile updates recorded on completion.
    PositiveFeedback,
    /// Assignments recalled by the recovery timeout ladder (progress
    /// deadline exceeded), as opposed to Eq.(2) model recalls.
    TimeoutRecalls,
    /// Workers marked suspect after repeated progress timeouts (their
    /// profile weight is decayed).
    WorkersSuspected,
    /// Queued tasks shed (lowest value first) because the live worker
    /// pool collapsed below the configured floor.
    TasksShed,
    /// Injected worker dropouts (fault plan).
    FaultDropouts,
    /// Injected silent task abandonments (fault plan).
    FaultAbandons,
    /// Completion messages dropped in flight (fault plan).
    FaultCompletionsLost,
    /// Completion messages delivered twice (fault plan).
    FaultCompletionsDuplicated,
    /// Extra tasks injected by burst arrivals (fault plan).
    FaultBurstTasks,
    /// Queued tasks handed from a collapsed shard to a neighbour shard.
    ShardHandoffs,
    /// Idle workers relocated between adjacent shards by the periodic
    /// rebalance pass.
    ShardWorkersRebalanced,
    /// Tasks refused at submission because the target shard's open-task
    /// count hit its hard admission cap.
    ShardAdmissionShed,
    /// TCP connections accepted by the ingest front-end.
    IngestConnections,
    /// Task submissions admitted past the front door into the bounded
    /// scheduler queue.
    IngestAccepted,
    /// Malformed requests refused with a 4xx status (bad framing, bad
    /// method, oversized body).
    IngestRejected,
    /// Submissions shed at the door with `429 Too Many Requests`
    /// (bounded queue full or scheduler backlog above the watermark).
    IngestShed,
    /// Status polls (`GET /tasks/<id>`) served.
    IngestPolls,
}

impl CounterKind {
    /// Stable dotted name used by sinks.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::TasksExpired => "tasks.expired",
            CounterKind::Reassignments => "tasks.reassigned",
            CounterKind::TasksAssigned => "tasks.assigned",
            CounterKind::BatchesRun => "batches.run",
            CounterKind::MatcherCycles => "matcher.cycles",
            CounterKind::FlipsAccepted => "matcher.flips_accepted",
            CounterKind::FlipsRejected => "matcher.flips_rejected",
            CounterKind::ConflictsResolved => "matcher.conflicts_resolved",
            CounterKind::MatcherRebuilds => "matcher.rebuilds",
            CounterKind::ProfileRefits => "profile.refits",
            CounterKind::BuildRowsReused => "build.rows_reused",
            CounterKind::BuildCdfMemoHits => "build.cdf_memo_hits",
            CounterKind::ScratchBytesReused => "scratch.bytes_reused",
            CounterKind::RegionsRun => "regions.run",
            CounterKind::TasksCompleted => "tasks.completed",
            CounterKind::DeadlinesMet => "deadlines.met",
            CounterKind::PositiveFeedback => "feedback.positive",
            CounterKind::TimeoutRecalls => "recovery.timeout_recalls",
            CounterKind::WorkersSuspected => "recovery.workers_suspected",
            CounterKind::TasksShed => "recovery.tasks_shed",
            CounterKind::FaultDropouts => "fault.dropouts",
            CounterKind::FaultAbandons => "fault.abandons",
            CounterKind::FaultCompletionsLost => "fault.completions_lost",
            CounterKind::FaultCompletionsDuplicated => "fault.completions_duplicated",
            CounterKind::FaultBurstTasks => "fault.burst_tasks",
            CounterKind::ShardHandoffs => "shard.handoffs",
            CounterKind::ShardWorkersRebalanced => "shard.workers_rebalanced",
            CounterKind::ShardAdmissionShed => "shard.admission_shed",
            CounterKind::IngestConnections => "ingest.connections",
            CounterKind::IngestAccepted => "ingest.accepted",
            CounterKind::IngestRejected => "ingest.rejected",
            CounterKind::IngestShed => "ingest.shed",
            CounterKind::IngestPolls => "ingest.polls",
        }
    }
}

/// A distribution of observed values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HistogramKind {
    /// Modelled matching latency charged per batch, in seconds.
    MatchingSeconds,
    /// Task execution time reported on completion, in seconds.
    ExecSeconds,
    /// Number of unassigned tasks entering a matching batch.
    BatchSize,
    /// Depth of the bounded ingest queue sampled at each scheduler tick
    /// (tasks accepted but not yet submitted to the middleware).
    IngestQueueDepth,
}

impl HistogramKind {
    /// Stable dotted name used by sinks.
    pub fn name(self) -> &'static str {
        match self {
            HistogramKind::MatchingSeconds => "matching.seconds",
            HistogramKind::ExecSeconds => "exec.seconds",
            HistogramKind::BatchSize => "batch.size",
            HistogramKind::IngestQueueDepth => "ingest.queue_depth",
        }
    }
}

/// Sink for structured telemetry emitted by the scheduling pipeline.
///
/// Implementations must be cheap and must never feed information back
/// into scheduling decisions; the pipeline only ever *writes* through
/// this trait. All methods take `&self` — sinks handle their own
/// synchronisation (observers are shared across scoped threads by the
/// parallel multi-region runner). `Debug` is a supertrait so structs
/// holding an [`ObserverHandle`] can keep `#[derive(Debug)]`.
pub trait Observer: Send + Sync + std::fmt::Debug {
    /// Whether this sink wants events at all.
    ///
    /// Hot paths may consult this once per event batch and skip
    /// formatting/aggregation work when it returns `false`. Timing
    /// itself is *not* gated on it: stage durations are measured
    /// unconditionally because `TickOutcome` reports them regardless.
    fn enabled(&self) -> bool {
        true
    }

    /// Record a completed span of `seconds` duration.
    fn span(&self, kind: SpanKind, seconds: f64);

    /// Add `by` to a counter.
    fn incr(&self, kind: CounterKind, by: u64);

    /// Record one value into a histogram.
    fn observe(&self, kind: HistogramKind, value: f64);
}

/// Shared, thread-safe handle to an observer sink.
pub type ObserverHandle = Arc<dyn Observer>;

/// The do-nothing sink: `enabled()` is `false` and every event is
/// discarded. This is the default observer everywhere; runs under it are
/// bit-identical to runs with no observability compiled in at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn enabled(&self) -> bool {
        false
    }

    fn span(&self, _kind: SpanKind, _seconds: f64) {}

    fn incr(&self, _kind: CounterKind, _by: u64) {}

    fn observe(&self, _kind: HistogramKind, _value: f64) {}
}

/// Convenience constructor for the default [`NullObserver`] handle.
pub fn null_observer() -> ObserverHandle {
    Arc::new(NullObserver)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_disabled() {
        let obs = null_observer();
        assert!(!obs.enabled());
        obs.span(SpanKind::Tick, 1.0);
        obs.incr(CounterKind::TasksAssigned, 3);
        obs.observe(HistogramKind::MatchingSeconds, 0.5);
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let spans = [
            SpanKind::Tick,
            SpanKind::StageExpire,
            SpanKind::StageRecall,
            SpanKind::StageBuild,
            SpanKind::StageMatch,
            SpanKind::StageCommit,
            SpanKind::MatcherAssign,
            SpanKind::RegionRun,
            SpanKind::ShardTick,
            SpanKind::IngestRequest,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for s in spans {
            assert!(seen.insert(s.name()), "duplicate span name {}", s.name());
        }
        let counters = [
            CounterKind::TasksExpired,
            CounterKind::Reassignments,
            CounterKind::TasksAssigned,
            CounterKind::BatchesRun,
            CounterKind::MatcherCycles,
            CounterKind::FlipsAccepted,
            CounterKind::FlipsRejected,
            CounterKind::ConflictsResolved,
            CounterKind::MatcherRebuilds,
            CounterKind::ProfileRefits,
            CounterKind::BuildRowsReused,
            CounterKind::BuildCdfMemoHits,
            CounterKind::ScratchBytesReused,
            CounterKind::RegionsRun,
            CounterKind::TasksCompleted,
            CounterKind::DeadlinesMet,
            CounterKind::PositiveFeedback,
            CounterKind::TimeoutRecalls,
            CounterKind::WorkersSuspected,
            CounterKind::TasksShed,
            CounterKind::FaultDropouts,
            CounterKind::FaultAbandons,
            CounterKind::FaultCompletionsLost,
            CounterKind::FaultCompletionsDuplicated,
            CounterKind::FaultBurstTasks,
            CounterKind::ShardHandoffs,
            CounterKind::ShardWorkersRebalanced,
            CounterKind::ShardAdmissionShed,
            CounterKind::IngestConnections,
            CounterKind::IngestAccepted,
            CounterKind::IngestRejected,
            CounterKind::IngestShed,
            CounterKind::IngestPolls,
        ];
        for c in counters {
            assert!(seen.insert(c.name()), "duplicate counter name {}", c.name());
            assert!(
                c.name().contains('.'),
                "counter name not dotted: {}",
                c.name()
            );
        }
        let histograms = [
            HistogramKind::MatchingSeconds,
            HistogramKind::ExecSeconds,
            HistogramKind::BatchSize,
            HistogramKind::IngestQueueDepth,
        ];
        for h in histograms {
            assert!(
                seen.insert(h.name()),
                "duplicate histogram name {}",
                h.name()
            );
            assert!(
                h.name().contains('.'),
                "histogram name not dotted: {}",
                h.name()
            );
        }
    }
}
