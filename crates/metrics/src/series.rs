//! Append-only `(x, y)` series for the paper's cumulative curves.

/// A named series of `(x, y)` points with non-decreasing `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (used as a CSV column header).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    ///
    /// # Panics
    /// Panics when `x` goes backwards — series record simulated time or
    /// sweep parameters, both of which only move forward.
    pub fn push(&mut self, x: f64, y: f64) {
        if let Some(&(last_x, _)) = self.points.last() {
            assert!(
                x >= last_x,
                "series '{}': x must be non-decreasing ({x} after {last_x})",
                self.name
            );
        }
        self.points.push((x, y));
    }

    /// The recorded points in order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last recorded point.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Linear interpolation of `y` at `x` (clamped to the series ends).
    /// `None` for an empty series.
    pub fn sample_at(&self, x: f64) -> Option<f64> {
        let pts = &self.points;
        if pts.is_empty() {
            return None;
        }
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        let i = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[i - 1];
        let (x1, y1) = pts[i];
        if x1 == x0 {
            return Some(y1);
        }
        Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    }

    /// Downsamples to at most `n` evenly spaced points (keeps endpoints).
    /// Useful when a per-event series is printed as a table.
    pub fn thin(&self, n: usize) -> Vec<(f64, f64)> {
        if n == 0 || self.points.is_empty() {
            return Vec::new();
        }
        if self.points.len() <= n {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        let last = self.points.len() - 1;
        for k in 0..n {
            let idx = k * last / (n - 1).max(1);
            out.push(self.points[idx]);
        }
        out.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new("deadline_met");
        assert!(s.is_empty());
        s.push(0.0, 0.0);
        s.push(1.0, 2.0);
        s.push(1.0, 3.0); // equal x allowed
        assert_eq!(s.len(), 3);
        assert_eq!(s.last(), Some((1.0, 3.0)));
        assert_eq!(s.name(), "deadline_met");
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_backwards_x() {
        let mut s = TimeSeries::new("t");
        s.push(2.0, 1.0);
        s.push(1.0, 1.0);
    }

    #[test]
    fn sample_interpolates_and_clamps() {
        let mut s = TimeSeries::new("t");
        assert_eq!(s.sample_at(1.0), None);
        s.push(0.0, 0.0);
        s.push(10.0, 100.0);
        assert_eq!(s.sample_at(-5.0), Some(0.0));
        assert_eq!(s.sample_at(5.0), Some(50.0));
        assert_eq!(s.sample_at(20.0), Some(100.0));
    }

    #[test]
    fn sample_handles_duplicate_x() {
        let mut s = TimeSeries::new("t");
        s.push(0.0, 0.0);
        s.push(1.0, 1.0);
        s.push(1.0, 5.0);
        s.push(2.0, 6.0);
        // At an interior duplicate the later value wins.
        assert_eq!(s.sample_at(1.0), Some(5.0));
    }

    #[test]
    fn thin_keeps_endpoints() {
        let mut s = TimeSeries::new("t");
        for i in 0..100 {
            s.push(i as f64, (i * i) as f64);
        }
        let t = s.thin(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0], (0.0, 0.0));
        assert_eq!(t[4], (99.0, 9801.0));
        // Short series returned as-is.
        assert_eq!(s.thin(1000).len(), 100);
        assert!(s.thin(0).is_empty());
    }
}
