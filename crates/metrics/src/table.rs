//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            title: None,
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row of preformatted cells.
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of display-formatted values.
    pub fn add_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table. First column left-aligned, the rest
    /// right-aligned (the usual look for numeric result tables).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "{t}");
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                }
            }
            line
        };
        let header_line = fmt_row(&self.headers, &widths);
        let _ = writeln!(out, "{header_line}");
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Formats a float with 2 decimals — the house style for result cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["algo", "tasks", "met"]).with_title("Fig 5");
        t.add_row(vec!["react".into(), "8371".into(), "6091".into()]);
        t.add_row(vec!["traditional".into(), "8371".into(), "4264".into()]);
        let s = t.render();
        assert!(s.starts_with("Fig 5\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title + header + rule + 2 rows");
        assert!(lines[1].contains("algo"));
        assert!(lines[3].starts_with("react"));
        // Right-aligned numeric columns line up.
        let met_col = lines[1].rfind("met").unwrap();
        assert_eq!(lines[3].rfind("6091").unwrap() + 4, met_col + 3);
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.add_row(vec!["x".into()]);
    }

    #[test]
    fn display_row_and_counts() {
        let mut t = Table::new(&["name", "value"]);
        t.add_display_row(&[&"value", &1.25]);
        assert_eq!(t.n_rows(), 1);
        assert!(t.render().contains("1.25"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f2(99.7), "99.70");
        assert_eq!(pct(0.614), "61.4%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["only"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert_eq!(s.lines().count(), 2);
    }
}
