//! Measurement substrate for the REACT experiments.
//!
//! Deliberately small: counters and gauges for event counts,
//! append-only time series for the paper's cumulative curves
//! (Figs. 5–6) and sweep series (Figs. 9–10), a plain-text table renderer
//! for terminal reports, a hand-rolled CSV writer for archiving the
//! regenerated figure data (no `serde` needed — see `DESIGN.md`), and a
//! [`MetricsObserver`] bridge that drains `react-obs` telemetry into the
//! same [`MetricsRegistry`].

#![warn(missing_docs)]

pub mod bridge;
pub mod chart;
pub mod csv;
pub mod kpi;
pub mod provenance;
pub mod registry;
pub mod series;
pub mod table;

pub use bridge::MetricsObserver;
pub use chart::{ascii_chart, ChartSeries};
pub use csv::write_csv;
pub use kpi::{KpiReport, KpiRow, KpiValue};
pub use provenance::{fnv1a64, git_revision, write_stamped, ArtifactOutcome, Provenance};
pub use registry::MetricsRegistry;
pub use series::TimeSeries;
pub use table::Table;
