//! A named metrics registry shared between components.
//!
//! The simulation components (server, workers, harness) all contribute
//! counters and series; the registry gives them one home keyed by name.
//! `parking_lot::RwLock` keeps it cheaply shareable with the threaded
//! live runtime as well.

use crate::series::TimeSeries;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Shared registry of counters and time series.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, TimeSeries>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, delta: u64) {
        let mut inner = self.inner.write();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.read().counters.get(name).copied().unwrap_or(0)
    }

    /// Appends a point to the named series (creating it when absent).
    pub fn record(&self, name: &str, x: f64, y: f64) {
        let mut inner = self.inner.write();
        inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .push(x, y);
    }

    /// A snapshot clone of the named series.
    pub fn series(&self, name: &str) -> Option<TimeSeries> {
        self.inner.read().series.get(name).cloned()
    }

    /// All counter names and values, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .read()
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// All series names, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.inner.read().series.keys().cloned().collect()
    }

    /// Clears everything (between experiment repetitions).
    pub fn reset(&self) {
        let mut inner = self.inner.write();
        inner.counters.clear();
        inner.series.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        assert_eq!(m.counter("tasks"), 0);
        m.incr("tasks", 2);
        m.incr("tasks", 3);
        assert_eq!(m.counter("tasks"), 5);
        assert_eq!(m.counters(), vec![("tasks".to_string(), 5)]);
    }

    #[test]
    fn series_recorded_in_order() {
        let m = MetricsRegistry::new();
        m.record("met", 0.0, 0.0);
        m.record("met", 1.0, 1.0);
        let s = m.series("met").unwrap();
        assert_eq!(s.points(), &[(0.0, 0.0), (1.0, 1.0)]);
        assert!(m.series("absent").is_none());
        assert_eq!(m.series_names(), vec!["met".to_string()]);
    }

    #[test]
    fn clones_share_state() {
        let m = MetricsRegistry::new();
        let m2 = m.clone();
        m.incr("x", 1);
        m2.incr("x", 1);
        assert_eq!(m.counter("x"), 2);
    }

    #[test]
    fn reset_clears() {
        let m = MetricsRegistry::new();
        m.incr("x", 1);
        m.record("s", 0.0, 0.0);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.series("s").is_none());
    }

    #[test]
    fn concurrent_increments() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.incr("hits", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("hits"), 4000);
    }
}
