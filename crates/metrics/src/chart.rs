//! Terminal line charts for the experiment reports.
//!
//! The paper's evaluation is figures, not tables; [`ascii_chart`] gives
//! the harness a dependency-free way to show curve *shape* (the Fig. 5/6
//! cumulative curves, the Fig. 9 sweep) directly in the terminal, next
//! to the exact numbers in the tables and CSVs.

/// One named series of `(x, y)` points.
pub struct ChartSeries<'a> {
    /// Legend label.
    pub name: &'a str,
    /// The points (need not be sorted; NaNs are skipped).
    pub points: &'a [(f64, f64)],
}

/// Per-series plot symbols, assigned in order.
const SYMBOLS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders the series into a `width × height` character grid with
/// min/max axis annotations and a legend. Returns an empty string when
/// no finite point exists.
pub fn ascii_chart(title: &str, series: &[ChartSeries<'_>], width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let finite = |p: &&(f64, f64)| p.0.is_finite() && p.1.is_finite();
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().filter(finite).copied())
        .collect();
    if all.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let symbol = SYMBOLS[si % SYMBOLS.len()];
        for p in s.points.iter().filter(finite) {
            let cx = ((p.0 - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((p.1 - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = symbol;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let y_hi = format!("{y_max:.0}");
    let y_lo = format!("{y_min:.0}");
    let margin = y_hi.len().max(y_lo.len());
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            &y_hi
        } else if i == height - 1 {
            &y_lo
        } else {
            ""
        };
        out.push_str(&format!("{label:>margin$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>margin$} +{}\n{:>margin$}  {:<lw$}{:>rw$}\n",
        "",
        "-".repeat(width),
        "",
        format!("{x_min:.0}"),
        format!("{x_max:.0}"),
        lw = width / 2,
        rw = width - width / 2,
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} {}", SYMBOLS[i % SYMBOLS.len()], s.name))
        .collect();
    out.push_str(&format!("{:>margin$}  {}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, slope: f64) -> Vec<(f64, f64)> {
        (0..n).map(|i| (i as f64, i as f64 * slope)).collect()
    }

    #[test]
    fn renders_grid_with_axes_and_legend() {
        let a = ramp(50, 1.0);
        let b = ramp(50, 0.5);
        let chart = ascii_chart(
            "deadlines met",
            &[
                ChartSeries {
                    name: "react",
                    points: &a,
                },
                ChartSeries {
                    name: "traditional",
                    points: &b,
                },
            ],
            40,
            10,
        );
        assert!(chart.starts_with("deadlines met\n"));
        assert!(chart.contains('*'), "first series plotted");
        assert!(chart.contains('o'), "second series plotted");
        assert!(chart.contains("* react"));
        assert!(chart.contains("o traditional"));
        assert!(chart.contains("49"), "x max label");
        // Every plot row has the axis bar.
        let bars = chart.lines().filter(|l| l.contains('|')).count();
        assert_eq!(bars, 10);
    }

    #[test]
    fn monotone_series_renders_monotone() {
        let a = ramp(100, 2.0);
        let chart = ascii_chart(
            "t",
            &[ChartSeries {
                name: "a",
                points: &a,
            }],
            30,
            8,
        );
        // Row index of the symbol must be non-increasing left→right.
        let rows: Vec<&str> = chart.lines().filter(|l| l.contains('|')).collect();
        let mut last_col = 0usize;
        for row in &rows {
            // Find the rightmost symbol in this row; rows go top→bottom,
            // so the rightmost column must decrease as we go down.
            if let Some(c) = row.rfind('*') {
                if last_col != 0 {
                    assert!(c <= last_col, "curve must descend to the left");
                }
                last_col = c;
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(ascii_chart("t", &[], 30, 8), "");
        let nan = [(f64::NAN, 1.0)];
        assert_eq!(
            ascii_chart(
                "t",
                &[ChartSeries {
                    name: "a",
                    points: &nan
                }],
                30,
                8
            ),
            ""
        );
        // A single point still renders (degenerate ranges padded).
        let single = [(5.0, 5.0)];
        let chart = ascii_chart(
            "t",
            &[ChartSeries {
                name: "a",
                points: &single,
            }],
            30,
            8,
        );
        assert!(chart.contains('*'));
    }

    #[test]
    fn tiny_dimensions_are_clamped() {
        let a = ramp(10, 1.0);
        let chart = ascii_chart(
            "t",
            &[ChartSeries {
                name: "a",
                points: &a,
            }],
            1,
            1,
        );
        assert!(!chart.is_empty());
    }
}
