//! Bridge from the `react-obs` observer interface into a
//! [`MetricsRegistry`].
//!
//! [`MetricsObserver`] lets an experiment attach the same registry that
//! collects its report counters and figure series as an observability
//! sink: every typed counter lands under its dotted name
//! (`matcher.cycles`, `tasks.reassigned`, …), and every span /
//! histogram observation is appended to a same-named time series whose
//! x-axis is the observation index — ready for the text-table and CSV
//! renderers in this crate.

use crate::registry::MetricsRegistry;
use react_obs::{CounterKind, HistogramKind, Observer, SpanKind};

/// An [`Observer`] sink that forwards everything into a shared
/// [`MetricsRegistry`].
///
/// * counters: `incr(kind, by)` → `registry.incr(kind.name(), by)`;
/// * spans: each report bumps `"<name>.count"` and appends
///   `(index, seconds)` to the `"<name>"` series;
/// * histograms: same shape as spans, with the observed value as y.
///
/// Cloning shares the underlying registry (it is `Arc`-backed).
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
}

impl MetricsObserver {
    /// Wraps an existing registry.
    pub fn new(registry: MetricsRegistry) -> Self {
        MetricsObserver { registry }
    }

    /// The bridged registry (shared, not a snapshot).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Bumps `"<name>.count"` and appends `(index, y)` to `"<name>"`.
    fn record_indexed(&self, name: &str, y: f64) {
        let counter = format!("{name}.count");
        self.registry.incr(&counter, 1);
        let index = self.registry.counter(&counter);
        self.registry.record(name, index as f64, y);
    }
}

impl Observer for MetricsObserver {
    fn span(&self, kind: SpanKind, seconds: f64) {
        self.record_indexed(kind.name(), seconds);
    }

    fn incr(&self, kind: CounterKind, by: u64) {
        self.registry.incr(kind.name(), by);
    }

    fn observe(&self, kind: HistogramKind, value: f64) {
        self.record_indexed(kind.name(), value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_under_dotted_names() {
        let obs = MetricsObserver::default();
        obs.incr(CounterKind::MatcherCycles, 40);
        obs.incr(CounterKind::MatcherCycles, 2);
        assert_eq!(obs.registry().counter("matcher.cycles"), 42);
    }

    #[test]
    fn spans_become_indexed_series() {
        let obs = MetricsObserver::default();
        obs.span(SpanKind::StageMatch, 0.25);
        obs.span(SpanKind::StageMatch, 0.5);
        let series = obs.registry().series("tick.match").unwrap();
        assert_eq!(series.points(), &[(1.0, 0.25), (2.0, 0.5)]);
        assert_eq!(obs.registry().counter("tick.match.count"), 2);
    }

    #[test]
    fn histograms_become_indexed_series() {
        let obs = MetricsObserver::default();
        obs.observe(HistogramKind::BatchSize, 7.0);
        let series = obs.registry().series("batch.size").unwrap();
        assert_eq!(series.points(), &[(1.0, 7.0)]);
    }

    #[test]
    fn shares_the_wrapped_registry() {
        let registry = MetricsRegistry::new();
        let obs = MetricsObserver::new(registry.clone());
        obs.incr(CounterKind::BatchesRun, 3);
        assert_eq!(registry.counter("batches.run"), 3);
        assert!(obs.enabled());
    }
}
