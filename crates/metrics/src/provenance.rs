//! Artifact attribution: every `BENCH_*.json` and `results/*.csv` the
//! suites emit is stamped with the seed, the sweep manifest hash (when
//! the run came from a manifest) and the git revision, so a number on
//! disk can always be traced back to the exact inputs that produced it.
//!
//! Also home of [`write_stamped`], the no-silent-overwrite artifact
//! writer: when a target file exists with *different* content, the old
//! file is preserved as `<name>.prev.<ext>` before the new one lands.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::kpi::json_string;

/// Attribution stamp for a results artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Master seed the run(s) derived their RNG streams from.
    pub seed: u64,
    /// FNV-1a 64 hash of the sweep manifest text, when the run came from
    /// a manifest.
    pub manifest_hash: Option<u64>,
    /// Git revision of the working tree (read from `.git`, no
    /// subprocess), when resolvable.
    pub git_revision: Option<String>,
}

impl Provenance {
    /// A stamp carrying only the seed.
    pub fn new(seed: u64) -> Self {
        Provenance {
            seed,
            manifest_hash: None,
            git_revision: None,
        }
    }

    /// Attaches a manifest hash.
    pub fn with_manifest_hash(mut self, hash: u64) -> Self {
        self.manifest_hash = Some(hash);
        self
    }

    /// Attaches the git revision discovered by walking up from `start`
    /// to the enclosing repository, when one exists.
    pub fn with_git_revision_from(mut self, start: &Path) -> Self {
        self.git_revision = git_revision(start);
        self
    }

    /// `# provenance: ...` comment line (no trailing newline) appended
    /// to CSV artifacts.
    pub fn comment_line(&self) -> String {
        let mut line = format!("# provenance: seed={}", self.seed);
        if let Some(h) = self.manifest_hash {
            line.push_str(&format!(" manifest={h:#018x}"));
        }
        if let Some(rev) = &self.git_revision {
            line.push_str(&format!(" rev={rev}"));
        }
        line
    }

    /// The stamp as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seed\":{}", self.seed);
        match self.manifest_hash {
            Some(h) => out.push_str(&format!(
                ",\"manifest_hash\":{}",
                json_string(&format!("{h:#018x}"))
            )),
            None => out.push_str(",\"manifest_hash\":null"),
        }
        match &self.git_revision {
            Some(rev) => out.push_str(&format!(",\"git_revision\":{}", json_string(rev))),
            None => out.push_str(",\"git_revision\":null"),
        }
        out.push('}');
        out
    }
}

/// FNV-1a 64-bit hash — the manifest fingerprint. Stable across
/// platforms and sessions; no `DefaultHasher` seeding surprises.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolves the current git revision by walking up from `start` to the
/// first directory containing `.git`, then chasing `HEAD` → ref →
/// `packed-refs`. Returns `None` outside a repository or on any parse
/// failure — attribution is best-effort, never fatal.
pub fn git_revision(start: &Path) -> Option<String> {
    let mut dir = if start.is_dir() {
        start
    } else {
        start.parent()?
    };
    loop {
        let dot_git = dir.join(".git");
        if dot_git.is_dir() {
            return revision_from_git_dir(&dot_git);
        }
        if dot_git.is_file() {
            // Worktree: `.git` is a file `gitdir: <path>`.
            let text = fs::read_to_string(&dot_git).ok()?;
            let gitdir = text.strip_prefix("gitdir:")?.trim();
            return revision_from_git_dir(Path::new(gitdir));
        }
        dir = dir.parent()?;
    }
}

fn revision_from_git_dir(git_dir: &Path) -> Option<String> {
    let head = fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(reference) = head.strip_prefix("ref:") else {
        // Detached HEAD: the file holds the hash directly.
        return looks_like_hash(head).then(|| head.to_string());
    };
    let reference = reference.trim();
    if let Ok(text) = fs::read_to_string(git_dir.join(reference)) {
        let hash = text.trim();
        if looks_like_hash(hash) {
            return Some(hash.to_string());
        }
    }
    // Ref may only exist packed.
    let packed = fs::read_to_string(git_dir.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if line.starts_with('#') || line.starts_with('^') {
            continue;
        }
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == reference && looks_like_hash(hash) {
                return Some(hash.to_string());
            }
        }
    }
    None
}

fn looks_like_hash(s: &str) -> bool {
    s.len() >= 40 && s.chars().all(|c| c.is_ascii_hexdigit())
}

/// What [`write_stamped`] did with the target path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactOutcome {
    /// No file existed; the artifact was created.
    Created,
    /// The existing file already had exactly this content; rewritten in
    /// place (byte-identical, nothing lost).
    Unchanged,
    /// The existing file differed; it was preserved at the given path
    /// before the new artifact was written.
    BackedUp(PathBuf),
}

/// Writes `content` to `path`, never silently destroying a differing
/// prior artifact: an existing file with different bytes is first
/// renamed to `<stem>.prev[.<ext>]` (itself overwritten — one level of
/// history, not an archive).
pub fn write_stamped(path: &Path, content: &str) -> io::Result<ArtifactOutcome> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let outcome = match fs::read_to_string(path) {
        Ok(existing) if existing == content => ArtifactOutcome::Unchanged,
        Ok(_) => {
            let backup = backup_path(path);
            fs::rename(path, &backup)?;
            ArtifactOutcome::BackedUp(backup)
        }
        Err(_) => ArtifactOutcome::Created,
    };
    fs::write(path, content)?;
    Ok(outcome)
}

fn backup_path(path: &Path) -> PathBuf {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".to_string());
    let name = match path.extension() {
        Some(ext) => format!("{stem}.prev.{}", ext.to_string_lossy()),
        None => format!("{stem}.prev"),
    };
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"pool = [40]"), fnv1a64(b"pool = [80]"));
    }

    #[test]
    fn comment_line_and_json_shape() {
        let p = Provenance::new(42).with_manifest_hash(0xdead_beef);
        let line = p.comment_line();
        assert!(line.starts_with("# provenance: seed=42"));
        assert!(line.contains("manifest=0x00000000deadbeef"));
        let json = p.to_json();
        assert!(json.starts_with("{\"seed\":42"));
        assert!(json.contains("\"git_revision\":null"));
    }

    #[test]
    fn git_revision_resolves_in_this_repo() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let rev = git_revision(here);
        // This crate lives inside a git checkout in CI and dev alike.
        if let Some(rev) = rev {
            assert!(looks_like_hash(&rev), "bad revision {rev}");
        }
    }

    #[test]
    fn write_stamped_backs_up_differing_artifacts() {
        let dir = std::env::temp_dir().join("react_metrics_provenance_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("out.csv");

        assert_eq!(
            write_stamped(&path, "a\n1\n").unwrap(),
            ArtifactOutcome::Created
        );
        assert_eq!(
            write_stamped(&path, "a\n1\n").unwrap(),
            ArtifactOutcome::Unchanged,
            "byte-identical rewrite must not create a backup"
        );
        let outcome = write_stamped(&path, "a\n2\n").unwrap();
        let backup = dir.join("out.prev.csv");
        assert_eq!(outcome, ArtifactOutcome::BackedUp(backup.clone()));
        assert_eq!(fs::read_to_string(&backup).unwrap(), "a\n1\n");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a\n2\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
