//! Minimal CSV output (RFC-4180 quoting) for archiving figure data.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Quotes a cell when it contains a comma, quote or newline.
fn quote(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Renders rows (first row = header) to a CSV string.
pub fn to_csv_string(rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row.iter().map(|c| quote(c)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Writes rows (first row = header) to `path`, creating parent
/// directories as needed.
pub fn write_csv(path: &Path, rows: &[Vec<String>]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(to_csv_string(rows).as_bytes())?;
    w.flush()
}

/// Convenience: builds CSV rows from named columns of equal length.
///
/// # Panics
/// Panics when columns have unequal lengths.
pub fn columns_to_rows(columns: &[(&str, &[f64])]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    rows.push(columns.iter().map(|(n, _)| n.to_string()).collect());
    let len = columns.first().map_or(0, |(_, c)| c.len());
    for (name, col) in columns {
        assert_eq!(col.len(), len, "column '{name}' length mismatch");
    }
    for i in 0..len {
        rows.push(columns.iter().map(|(_, c)| format!("{}", c[i])).collect());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cells_unquoted() {
        let rows = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["1".to_string(), "2".to_string()],
        ];
        assert_eq!(to_csv_string(&rows), "a,b\n1,2\n");
    }

    #[test]
    fn special_cells_quoted() {
        let rows = vec![vec!["he,llo".to_string(), "say \"hi\"".to_string()]];
        assert_eq!(to_csv_string(&rows), "\"he,llo\",\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn roundtrip_to_disk() {
        let dir = std::env::temp_dir().join("react_metrics_csv_test");
        let path = dir.join("sub").join("out.csv");
        let rows = vec![
            vec!["x".to_string(), "y".to_string()],
            vec!["1".to_string(), "2.5".to_string()],
        ];
        write_csv(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "x,y\n1,2.5\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn columns_helper() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0];
        let rows = columns_to_rows(&[("x", &x), ("y", &y)]);
        assert_eq!(to_csv_string(&rows), "x,y\n1,3\n2,4\n");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn columns_helper_rejects_ragged() {
        let x = [1.0];
        let y = [3.0, 4.0];
        let _ = columns_to_rows(&[("x", &x), ("y", &y)]);
    }
}
