//! Shared KPI vocabulary for every experiment suite.
//!
//! Before PR 8 each bench suite carried its own point struct plus
//! duplicated table- and CSV-row builders. [`KpiRow`] / [`KpiReport`]
//! replace that: a row is an ordered list of named cells (labels and
//! numeric KPIs), a report is an ordered list of rows plus optional
//! [`Provenance`](crate::Provenance). One report renders to a terminal
//! table, RFC-4180 CSV rows, and JSON-lines — the formats the old code
//! hand-built per suite.
//!
//! Column names are stable and, where a value is a direct readout of an
//! observer counter or histogram, named after the obs catalog entry
//! (`deadlines.met`, `shard.handoffs`, `matching.seconds`, ...). Derived
//! quantities use the `kpi.` prefix (`kpi.deadline_hit_rate`,
//! `kpi.assign_latency_p99_s`).

use crate::provenance::Provenance;
use crate::table::Table;

/// One typed KPI cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum KpiValue {
    /// A free-form label (suite name, matcher name, fault plan, ...).
    Text(String),
    /// An integer count.
    Int(i64),
    /// A raw floating-point quantity.
    Float(f64),
    /// A ratio in `[0, 1]`, rendered as a percentage in tables but kept
    /// as the raw ratio in CSV/JSON so downstream math stays exact.
    Pct(f64),
    /// A boolean flag (e.g. serial/parallel identity held).
    Bool(bool),
}

impl KpiValue {
    /// Table cell rendering (human-facing).
    pub fn render(&self) -> String {
        match self {
            KpiValue::Text(s) => s.clone(),
            KpiValue::Int(i) => i.to_string(),
            KpiValue::Float(x) => format_float(*x),
            KpiValue::Pct(x) => format!("{:.1}%", x * 100.0),
            KpiValue::Bool(b) => b.to_string(),
        }
    }

    /// CSV cell rendering (machine-facing, raw values).
    pub fn to_csv_cell(&self) -> String {
        match self {
            KpiValue::Text(s) => s.clone(),
            KpiValue::Int(i) => i.to_string(),
            KpiValue::Float(x) | KpiValue::Pct(x) => format!("{x}"),
            KpiValue::Bool(b) => b.to_string(),
        }
    }

    /// JSON value rendering. Non-finite floats become `null`.
    pub fn to_json(&self) -> String {
        match self {
            KpiValue::Text(s) => json_string(s),
            KpiValue::Int(i) => i.to_string(),
            KpiValue::Float(x) | KpiValue::Pct(x) => {
                if x.is_finite() {
                    format!("{x}")
                } else {
                    "null".to_string()
                }
            }
            KpiValue::Bool(b) => b.to_string(),
        }
    }

    /// The value as `f64` when it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            KpiValue::Int(i) => Some(*i as f64),
            KpiValue::Float(x) | KpiValue::Pct(x) => Some(*x),
            _ => None,
        }
    }
}

fn format_float(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a > 0.0 && a < 0.001 {
        format!("{x:.2e}")
    } else if a >= 1000.0 {
        format!("{x:.0}")
    } else {
        let s = format!("{x:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One experiment run's KPIs: an ordered list of named cells.
///
/// Cell order is insertion order — it drives table/CSV column order, so
/// suites should add labels first, then counts, then derived rates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KpiRow {
    cells: Vec<(String, KpiValue)>,
}

impl KpiRow {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces a cell, preserving first-insertion position on
    /// replacement.
    pub fn set(&mut self, name: &str, value: KpiValue) {
        if let Some(slot) = self.cells.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.cells.push((name.to_string(), value));
        }
    }

    /// Builder-style text label.
    pub fn label(mut self, name: &str, value: impl Into<String>) -> Self {
        self.set(name, KpiValue::Text(value.into()));
        self
    }

    /// Builder-style integer count.
    pub fn int(mut self, name: &str, value: i64) -> Self {
        self.set(name, KpiValue::Int(value));
        self
    }

    /// Builder-style float.
    pub fn float(mut self, name: &str, value: f64) -> Self {
        self.set(name, KpiValue::Float(value));
        self
    }

    /// Builder-style ratio (rendered as a percentage in tables).
    pub fn pct(mut self, name: &str, value: f64) -> Self {
        self.set(name, KpiValue::Pct(value));
        self
    }

    /// Builder-style boolean flag.
    pub fn flag(mut self, name: &str, value: bool) -> Self {
        self.set(name, KpiValue::Bool(value));
        self
    }

    /// Looks a cell up by column name.
    pub fn get(&self, name: &str) -> Option<&KpiValue> {
        self.cells.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Numeric readout of a cell, when present and numeric.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(KpiValue::as_f64)
    }

    /// Text readout of a cell, when present and textual.
    pub fn text(&self, name: &str) -> Option<&str> {
        match self.get(name) {
            Some(KpiValue::Text(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Column names in insertion order.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.cells.iter().map(|(n, _)| n.as_str())
    }

    /// `(name, value)` cells in insertion order — for merging rows
    /// (e.g. prefixing identity columns in the sweep driver).
    pub fn cells(&self) -> impl Iterator<Item = (&str, &KpiValue)> {
        self.cells.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The row as one JSON object (insertion order preserved).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            out.push_str(&value.to_json());
        }
        out.push('}');
        out
    }
}

/// An ordered collection of [`KpiRow`]s with optional provenance — the
/// single aggregated artifact an experiment suite or sweep emits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KpiReport {
    /// The rows, in run order.
    pub rows: Vec<KpiRow>,
    /// Attribution stamp carried into every serialisation.
    pub provenance: Option<Provenance>,
}

impl KpiReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a report from rows.
    pub fn from_rows(rows: Vec<KpiRow>) -> Self {
        KpiReport {
            rows,
            provenance: None,
        }
    }

    /// Attaches a provenance stamp.
    pub fn with_provenance(mut self, provenance: Provenance) -> Self {
        self.provenance = Some(provenance);
        self
    }

    /// Appends a row.
    pub fn push(&mut self, row: KpiRow) {
        self.rows.push(row);
    }

    /// Union of column names across rows, in first-seen order.
    pub fn columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = Vec::new();
        for row in &self.rows {
            for name in row.columns() {
                if !cols.iter().any(|c| c == name) {
                    cols.push(name.to_string());
                }
            }
        }
        cols
    }

    /// CSV rows (header + one row per [`KpiRow`]); missing cells render
    /// empty. Column set is restricted to `columns` when given.
    pub fn to_csv_rows(&self, columns: Option<&[&str]>) -> Vec<Vec<String>> {
        let all = self.columns();
        let cols: Vec<&str> = match columns {
            Some(sel) => sel.to_vec(),
            None => all.iter().map(|s| s.as_str()).collect(),
        };
        let mut rows = Vec::with_capacity(self.rows.len() + 1);
        rows.push(cols.iter().map(|c| c.to_string()).collect());
        for row in &self.rows {
            rows.push(
                cols.iter()
                    .map(|c| row.get(c).map(KpiValue::to_csv_cell).unwrap_or_default())
                    .collect(),
            );
        }
        rows
    }

    /// JSON-lines serialisation: one provenance header object (when
    /// stamped), then one object per row. Byte-stable for identical
    /// rows + provenance.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(p) = &self.provenance {
            out.push_str("{\"provenance\":");
            out.push_str(&p.to_json());
            out.push_str("}\n");
        }
        for row in &self.rows {
            out.push_str(&row.to_json());
            out.push('\n');
        }
        out
    }

    /// Terminal table over all columns (or a selection).
    pub fn table(&self, title: &str, columns: Option<&[&str]>) -> Table {
        let all = self.columns();
        let cols: Vec<&str> = match columns {
            Some(sel) => sel.to_vec(),
            None => all.iter().map(|s| s.as_str()).collect(),
        };
        let mut table = Table::new(&cols).with_title(title);
        for row in &self.rows {
            table.add_row(
                cols.iter()
                    .map(|c| row.get(c).map(KpiValue::render).unwrap_or_default())
                    .collect(),
            );
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> KpiRow {
        KpiRow::new()
            .label("suite", "scenario")
            .int("tasks.completed", 42)
            .pct("kpi.deadline_hit_rate", 0.875)
            .float("matching.seconds", 1.5)
            .flag("identical", true)
    }

    #[test]
    fn row_json_preserves_insertion_order() {
        let json = sample_row().to_json();
        assert_eq!(
            json,
            "{\"suite\":\"scenario\",\"tasks.completed\":42,\
             \"kpi.deadline_hit_rate\":0.875,\"matching.seconds\":1.5,\
             \"identical\":true}"
        );
    }

    #[test]
    fn set_replaces_in_place() {
        let mut row = sample_row();
        row.set("tasks.completed", KpiValue::Int(43));
        let cols: Vec<&str> = row.columns().collect();
        assert_eq!(cols[1], "tasks.completed");
        assert_eq!(row.metric("tasks.completed"), Some(43.0));
    }

    #[test]
    fn report_columns_union_first_seen() {
        let mut report = KpiReport::new();
        report.push(KpiRow::new().label("a", "x").int("b", 1));
        report.push(KpiRow::new().label("a", "y").int("c", 2));
        assert_eq!(report.columns(), vec!["a", "b", "c"]);
        let csv = report.to_csv_rows(None);
        assert_eq!(csv[0], vec!["a", "b", "c"]);
        assert_eq!(csv[1], vec!["x", "1", ""]);
        assert_eq!(csv[2], vec!["y", "", "2"]);
    }

    #[test]
    fn pct_renders_percent_in_tables_raw_in_csv() {
        let v = KpiValue::Pct(0.4321);
        assert_eq!(v.render(), "43.2%");
        assert_eq!(v.to_csv_cell(), "0.4321");
        assert_eq!(v.to_json(), "0.4321");
    }

    #[test]
    fn jsonl_is_stable_and_parseable_shape() {
        let report = KpiReport::from_rows(vec![sample_row()]);
        let a = report.to_jsonl();
        let b = report.to_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with('{') && a.ends_with('\n'));
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        let row = KpiRow::new().float("x", f64::NAN);
        assert_eq!(row.to_json(), "{\"x\":null}");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
