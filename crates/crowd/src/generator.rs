//! Task workload generation.
//!
//! Tasks arrive in a Poisson stream at a configurable rate (Fig. 5 uses
//! 9.375 tasks/s; the Fig. 9 sweep 1.5–12.5 tasks/s) with deadlines drawn
//! uniformly from 60–120 s, locations uniform within the region and
//! categories uniform over a small set.

use rand::Rng;
use react_core::{Task, TaskCategory, TaskId};
use react_geo::BoundingBox;
use react_prob::distributions::{PoissonProcess, UniformRange};

/// Generates a stream of `(arrival_time, Task)` pairs.
#[derive(Debug, Clone)]
pub struct TaskGenerator {
    arrivals: PoissonProcess,
    deadline_range: UniformRange,
    reward_range: UniformRange,
    region: BoundingBox,
    n_categories: u32,
    next_id: u64,
}

impl TaskGenerator {
    /// Creates a generator with the paper's deadline range (60–120 s)
    /// and sub-dime rewards (90 % of AMT tasks pay below $0.10, per Ipeirotis).
    pub fn new(rate: f64, region: BoundingBox) -> Self {
        TaskGenerator {
            arrivals: PoissonProcess::new(rate),
            deadline_range: UniformRange::new(60.0, 120.0),
            reward_range: UniformRange::new(0.01, 0.10),
            region,
            n_categories: 1,
            next_id: 0,
        }
    }

    /// Overrides the deadline range.
    pub fn with_deadline_range(mut self, lo: f64, hi: f64) -> Self {
        self.deadline_range = UniformRange::new(lo, hi);
        self
    }

    /// Uses `n` task categories (uniformly assigned).
    pub fn with_categories(mut self, n: u32) -> Self {
        self.n_categories = n.max(1);
        self
    }

    /// The arrival rate (tasks/second).
    pub fn rate(&self) -> f64 {
        self.arrivals.rate()
    }

    /// Draws the next arrival: its timestamp and the task itself.
    pub fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (f64, Task) {
        let at = self.arrivals.next_arrival(rng);
        let id = TaskId(self.next_id);
        self.next_id += 1;
        let category = TaskCategory(rng.gen_range(0..self.n_categories));
        let task = Task::new(
            id,
            self.region.random_point(rng),
            self.deadline_range.sample(rng),
            self.reward_range.sample(rng),
            category,
            format!("How congested is the area around point {id}?"),
        );
        (at, task)
    }

    /// Generates the full workload of `n` tasks.
    pub fn take_n<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<(f64, Task)> {
        (0..n).map(|_| self.next(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn region() -> BoundingBox {
        BoundingBox::new(37.8, 38.2, 23.5, 24.0).unwrap()
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut g = SmallRng::seed_from_u64(0);
        let mut gen = TaskGenerator::new(9.375, region());
        let tasks = gen.take_n(100, &mut g);
        for (i, (_, t)) in tasks.iter().enumerate() {
            assert_eq!(t.id, TaskId(i as u64));
        }
    }

    #[test]
    fn arrivals_match_rate_and_increase() {
        let mut g = SmallRng::seed_from_u64(1);
        let mut gen = TaskGenerator::new(9.375, region());
        let tasks = gen.take_n(10_000, &mut g);
        let mut last = 0.0;
        for (at, _) in &tasks {
            assert!(*at > last);
            last = *at;
        }
        let rate = 10_000.0 / last;
        assert!((rate - 9.375).abs() / 9.375 < 0.05, "rate {rate}");
    }

    #[test]
    fn paper_deadline_and_reward_ranges() {
        let mut g = SmallRng::seed_from_u64(2);
        let mut gen = TaskGenerator::new(1.0, region());
        for (_, t) in gen.take_n(2_000, &mut g) {
            assert!(
                (60.0..=120.0).contains(&t.deadline),
                "deadline {}",
                t.deadline
            );
            assert!((0.01..=0.10).contains(&t.reward));
            assert!(region().contains(&t.location));
            assert_eq!(t.category, TaskCategory(0));
            assert!(t.description.contains("congested"));
        }
    }

    #[test]
    fn custom_deadline_and_categories() {
        let mut g = SmallRng::seed_from_u64(3);
        let mut gen = TaskGenerator::new(1.0, region())
            .with_deadline_range(5.0, 10.0)
            .with_categories(4);
        let tasks = gen.take_n(2_000, &mut g);
        let mut seen = std::collections::HashSet::new();
        for (_, t) in &tasks {
            assert!((5.0..=10.0).contains(&t.deadline));
            assert!(t.category.0 < 4);
            seen.insert(t.category);
        }
        assert_eq!(seen.len(), 4, "all categories used");
        // Zero categories clamps to one.
        let gen = TaskGenerator::new(1.0, region()).with_categories(0);
        assert_eq!(gen.n_categories, 1);
    }
}
