//! Post-hoc analysis of task lifecycle audit logs.
//!
//! The paper reports aggregate execution times (Figs. 7–8); the audit
//! log supports a finer **latency waterfall** per completed task:
//!
//! ```text
//! submission ──queue/matching wait──▶ final assignment ──execution──▶ completion
//! ```
//!
//! [`AuditAnalysis::from_log`] extracts, for every completed task, the
//! wait before its *final* assignment (including any earlier attempts
//! that were recalled), the final execution time and the number of
//! assignment attempts, plus distribution summaries over each.

use react_core::{AuditLog, TaskEventKind, TaskId};
use react_prob::stats::Summary;
use std::collections::HashMap;

/// The latency decomposition of one completed task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskLatency {
    /// The task.
    pub task: TaskId,
    /// Seconds from submission to the final (successful) assignment —
    /// queueing + modelled matching latency + failed earlier attempts.
    pub wait: f64,
    /// Seconds the final worker executed.
    pub exec: f64,
    /// Total submission→completion time (`wait + exec`).
    pub total: f64,
    /// Number of assignment attempts (1 = never reassigned).
    pub attempts: u32,
    /// Whether the deadline was met.
    pub met_deadline: bool,
}

/// Aggregated audit-log analysis.
#[derive(Debug, Clone)]
pub struct AuditAnalysis {
    /// One entry per completed task.
    pub completed: Vec<TaskLatency>,
    /// Tasks that expired unassigned.
    pub expired: usize,
    /// Distribution of assignment attempts per completed task, indexed
    /// by attempt count (index 0 unused).
    pub attempts_histogram: Vec<usize>,
}

impl AuditAnalysis {
    /// Builds the analysis from an audit log. Tasks still open at the
    /// end of the log are ignored.
    pub fn from_log(log: &AuditLog) -> Self {
        #[derive(Default)]
        struct Track {
            submitted_at: Option<f64>,
            last_assigned_at: Option<f64>,
            attempts: u32,
        }
        let mut tracks: HashMap<TaskId, Track> = HashMap::new();
        let mut completed = Vec::new();
        let mut expired = 0usize;
        for e in log.events() {
            let track = tracks.entry(e.task).or_default();
            match e.kind {
                TaskEventKind::Submitted => track.submitted_at = Some(e.at),
                TaskEventKind::Assigned { .. } => {
                    track.attempts += 1;
                    track.last_assigned_at = Some(e.at);
                }
                TaskEventKind::Recalled { .. } => track.last_assigned_at = None,
                TaskEventKind::Expired | TaskEventKind::Shed => expired += 1,
                // The task left for another shard: it is not expired, and
                // its latency (if it completes) belongs to that shard's
                // log. Drop the local tracking state.
                TaskEventKind::HandedOff => {
                    *track = Track::default();
                }
                TaskEventKind::Completed { met_deadline, .. } => {
                    let (Some(t0), Some(ta)) = (track.submitted_at, track.last_assigned_at) else {
                        continue; // malformed prefix: skip defensively
                    };
                    completed.push(TaskLatency {
                        task: e.task,
                        wait: (ta - t0).max(0.0),
                        exec: (e.at - ta).max(0.0),
                        total: (e.at - t0).max(0.0),
                        attempts: track.attempts,
                        met_deadline,
                    });
                }
            }
        }
        let max_attempts = completed.iter().map(|t| t.attempts).max().unwrap_or(0);
        let mut attempts_histogram = vec![0usize; max_attempts as usize + 1];
        for t in &completed {
            attempts_histogram[t.attempts as usize] += 1;
        }
        AuditAnalysis {
            completed,
            expired,
            attempts_histogram,
        }
    }

    /// Summary of the wait component (`None` when nothing completed).
    pub fn wait_summary(&self) -> Option<Summary> {
        Summary::from_samples(&self.completed.iter().map(|t| t.wait).collect::<Vec<_>>())
    }

    /// Summary of the execution component.
    pub fn exec_summary(&self) -> Option<Summary> {
        Summary::from_samples(&self.completed.iter().map(|t| t.exec).collect::<Vec<_>>())
    }

    /// Summary of the total latency.
    pub fn total_summary(&self) -> Option<Summary> {
        Summary::from_samples(&self.completed.iter().map(|t| t.total).collect::<Vec<_>>())
    }

    /// Fraction of completed tasks that needed more than one attempt.
    pub fn reassigned_fraction(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.iter().filter(|t| t.attempts > 1).count() as f64
            / self.completed.len() as f64
    }

    /// CSV rows (header first) with one line per completed task.
    pub fn to_csv_rows(&self) -> Vec<Vec<String>> {
        let mut rows = vec![vec![
            "task".to_string(),
            "wait_s".to_string(),
            "exec_s".to_string(),
            "total_s".to_string(),
            "attempts".to_string(),
            "met_deadline".to_string(),
        ]];
        for t in &self.completed {
            rows.push(vec![
                t.task.0.to_string(),
                format!("{:.3}", t.wait),
                format!("{:.3}", t.exec),
                format!("{:.3}", t.total),
                t.attempts.to_string(),
                t.met_deadline.to_string(),
            ]);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioRunner;
    use crate::scenario::Scenario;
    use react_core::{MatcherPolicy, WorkerId};

    fn synthetic_log() -> AuditLog {
        let mut log = AuditLog::new();
        let w1 = WorkerId(1);
        let w2 = WorkerId(2);
        // Task 1: straight through.
        log.push(0.0, TaskId(1), TaskEventKind::Submitted);
        log.push(2.0, TaskId(1), TaskEventKind::Assigned { worker: w1 });
        log.push(
            7.0,
            TaskId(1),
            TaskEventKind::Completed {
                worker: w1,
                met_deadline: true,
            },
        );
        // Task 2: one recall, completes late.
        log.push(1.0, TaskId(2), TaskEventKind::Submitted);
        log.push(3.0, TaskId(2), TaskEventKind::Assigned { worker: w1 });
        log.push(40.0, TaskId(2), TaskEventKind::Recalled { worker: w1 });
        log.push(41.0, TaskId(2), TaskEventKind::Assigned { worker: w2 });
        log.push(
            50.0,
            TaskId(2),
            TaskEventKind::Completed {
                worker: w2,
                met_deadline: false,
            },
        );
        // Task 3: expires.
        log.push(5.0, TaskId(3), TaskEventKind::Submitted);
        log.push(70.0, TaskId(3), TaskEventKind::Expired);
        log
    }

    #[test]
    fn waterfall_decomposition() {
        let a = AuditAnalysis::from_log(&synthetic_log());
        assert_eq!(a.completed.len(), 2);
        assert_eq!(a.expired, 1);
        let t1 = a.completed.iter().find(|t| t.task == TaskId(1)).unwrap();
        assert_eq!((t1.wait, t1.exec, t1.total), (2.0, 5.0, 7.0));
        assert_eq!(t1.attempts, 1);
        assert!(t1.met_deadline);
        let t2 = a.completed.iter().find(|t| t.task == TaskId(2)).unwrap();
        assert_eq!((t2.wait, t2.exec, t2.total), (40.0, 9.0, 49.0));
        assert_eq!(t2.attempts, 2);
        assert!(!t2.met_deadline);
        // wait + exec = total for every task.
        for t in &a.completed {
            assert!((t.wait + t.exec - t.total).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_and_fractions() {
        let a = AuditAnalysis::from_log(&synthetic_log());
        assert_eq!(a.attempts_histogram, vec![0, 1, 1]);
        assert!((a.reassigned_fraction() - 0.5).abs() < 1e-12);
        let wait = a.wait_summary().unwrap();
        assert_eq!(wait.min, 2.0);
        assert_eq!(wait.max, 40.0);
        assert!(a.exec_summary().is_some());
        assert!(a.total_summary().is_some());
    }

    #[test]
    fn empty_log() {
        let a = AuditAnalysis::from_log(&AuditLog::new());
        assert!(a.completed.is_empty());
        assert_eq!(a.expired, 0);
        assert_eq!(a.reassigned_fraction(), 0.0);
        assert!(a.wait_summary().is_none());
        assert_eq!(a.to_csv_rows().len(), 1, "header only");
    }

    #[test]
    fn csv_rows_shape() {
        let a = AuditAnalysis::from_log(&synthetic_log());
        let rows = a.to_csv_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], "task");
        assert_eq!(rows[1].len(), 6);
    }

    #[test]
    fn agrees_with_run_report_on_a_real_run() {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 300 }, 9);
        sc.config.audit = true;
        let r = ScenarioRunner::new(sc).run();
        let a = AuditAnalysis::from_log(r.audit.as_ref().unwrap());
        assert_eq!(a.completed.len() as u64, r.completed);
        let met = a.completed.iter().filter(|t| t.met_deadline).count() as u64;
        assert_eq!(met, r.met_deadline);
        // The analysis's mean total matches the report's (same data).
        let total = a.total_summary().unwrap();
        assert!((total.mean - r.avg_total_time()).abs() < 1e-6);
        // Mean exec differs only by the pre-assignment component.
        assert!(total.mean >= a.exec_summary().unwrap().mean - 1e-9);
    }
}
