//! Multi-region deployment (Sec. III-A).
//!
//! The paper decomposes the geographic area into non-overlapping regions,
//! each owned by one REACT server; workers and tasks are registered with
//! the server of the region containing them. Because neither workers nor
//! tasks cross region boundaries, the global system decomposes *exactly*
//! into independent per-region simulations over a partitioned workload —
//! which is how [`MultiRegionRunner`] executes it: one global Poisson
//! task stream is generated, split by [`RegionGrid::locate`], and each
//! region replays its share through the standard [`ScenarioRunner`].
//!
//! This is also the paper's answer to overload (*"split the regions so
//! that each of the servers would contain sufficient workers and tasks
//! without being overloaded"*): doubling the grid density halves each
//! server's load, which the `region_split_relieves_overload` test and the
//! `traffic_monitoring` example demonstrate.

use crate::generator::TaskGenerator;
use crate::runner::{RunReport, ScenarioRunner};
use crate::scenario::Scenario;
use react_geo::{RegionGrid, RegionId};
use react_obs::{null_observer, CounterKind, ObserverHandle, SpanKind, SpanTimer};
use react_sim::RngStreams;

/// Configuration of a multi-region run: the *global* scenario (total
/// workers, total arrival rate over the whole area) plus the grid shape.
#[derive(Debug, Clone)]
pub struct MultiRegionScenario {
    /// Global parameters; `n_workers`, `arrival_rate` and `total_tasks`
    /// are area-wide totals, `region` is the whole covered area.
    pub global: Scenario,
    /// Latitude bands of the decomposition.
    pub rows: u32,
    /// Longitude bands of the decomposition.
    pub cols: u32,
}

/// Aggregated outcome of a multi-region run.
#[derive(Debug, Clone)]
pub struct MultiRegionReport {
    /// Per-region reports, in region-id order.
    pub per_region: Vec<(RegionId, RunReport)>,
}

impl MultiRegionReport {
    /// Area-wide received tasks.
    pub fn received(&self) -> u64 {
        self.per_region.iter().map(|(_, r)| r.received).sum()
    }

    /// Area-wide deadline-met count.
    pub fn met_deadline(&self) -> u64 {
        self.per_region.iter().map(|(_, r)| r.met_deadline).sum()
    }

    /// Area-wide positive feedbacks.
    pub fn positive_feedback(&self) -> u64 {
        self.per_region
            .iter()
            .map(|(_, r)| r.positive_feedback)
            .sum()
    }

    /// Area-wide deadline ratio.
    pub fn deadline_ratio(&self) -> f64 {
        let received = self.received();
        if received == 0 {
            0.0
        } else {
            self.met_deadline() as f64 / received as f64
        }
    }

    /// Whether two multi-region reports are bit-identical across every
    /// per-region metric, including the full per-task time series —
    /// the check behind the parallel-execution determinism guarantee.
    pub fn identical(&self, other: &MultiRegionReport) -> bool {
        self.per_region.len() == other.per_region.len()
            && self
                .per_region
                .iter()
                .zip(other.per_region.iter())
                .all(|((id_a, a), (id_b, b))| {
                    id_a == id_b
                        && a.received == b.received
                        && a.completed == b.completed
                        && a.met_deadline == b.met_deadline
                        && a.positive_feedback == b.positive_feedback
                        && a.expired_unassigned == b.expired_unassigned
                        && a.reassignments == b.reassignments
                        && a.churn_events == b.churn_events
                        && a.batches == b.batches
                        && a.total_matching_seconds.to_bits() == b.total_matching_seconds.to_bits()
                        && a.sim_duration.to_bits() == b.sim_duration.to_bits()
                        && a.exec_times == b.exec_times
                        && a.total_times == b.total_times
                        && a.faults == b.faults
                })
    }

    /// The heaviest per-region modelled matching load (seconds) — the
    /// overload signal that motivates splitting.
    pub fn max_matching_seconds(&self) -> f64 {
        self.per_region
            .iter()
            .map(|(_, r)| r.total_matching_seconds)
            .fold(0.0, f64::max)
    }
}

/// A schedule permutation under which the merged multi-region result
/// diverged from the serial baseline — evidence of a region-ordering
/// race (hidden shared state between supposedly independent regions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulePermutationMismatch {
    /// The execution order (indices into the region-id-ordered scenario
    /// list) that produced the divergent report.
    pub order: Vec<usize>,
}

impl std::fmt::Display for SchedulePermutationMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region execution order {:?} produced a report that is not \
             bit-identical to the serial baseline",
            self.order
        )
    }
}

impl std::error::Error for SchedulePermutationMismatch {}

/// Executes a [`MultiRegionScenario`].
pub struct MultiRegionRunner {
    scenario: MultiRegionScenario,
    observer: ObserverHandle,
}

impl MultiRegionRunner {
    /// Creates a runner.
    pub fn new(scenario: MultiRegionScenario) -> Self {
        MultiRegionRunner {
            scenario,
            observer: null_observer(),
        }
    }

    /// Attaches an observability sink shared by every region server.
    /// Each region's execution is wrapped in a `region.run` span and
    /// bumps the `regions.run` counter; the per-region [`ReactServer`]s
    /// report their stage spans and matcher counters to the same sink.
    /// The sink must tolerate concurrent reporting when the `parallel`
    /// feature routes regions onto scoped threads (every bundled
    /// observer does). Observers are write-only — reports stay
    /// bit-identical whatever sink is attached.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Runs one region scenario, wrapped in its observability span.
    fn run_region(&self, sc: Scenario) -> RunReport {
        let enabled = self.observer.enabled();
        let timer = enabled.then(SpanTimer::start);
        let report = ScenarioRunner::new(sc)
            .with_observer(self.observer.clone())
            .run();
        if let Some(timer) = timer {
            timer.finish(self.observer.as_ref(), SpanKind::RegionRun);
            self.observer.incr(CounterKind::RegionsRun, 1);
        }
        report
    }

    /// Generates the global stream, partitions it by region, and runs
    /// each region server independently.
    ///
    /// With the `parallel` feature the regions execute on scoped
    /// threads ([`MultiRegionRunner::run_parallel`]); otherwise — or
    /// when `REACT_PARALLEL_THREADS=1` — serially. Both paths produce
    /// bit-identical reports.
    pub fn run(&self) -> MultiRegionReport {
        #[cfg(feature = "parallel")]
        {
            if react_core::par::parallelism() > 1 {
                return self.run_parallel();
            }
        }
        self.run_serial()
    }

    /// The serial baseline: regions run one after another.
    pub fn run_serial(&self) -> MultiRegionReport {
        let per_region = self
            .region_scenarios()
            .into_iter()
            .map(|(region_id, sc)| (region_id, self.run_region(sc)))
            .collect();
        MultiRegionReport { per_region }
    }

    /// Runs the regions on parallel scoped threads, merging the reports
    /// in deterministic region order.
    ///
    /// Regions share no state — each gets its own preset workload slice
    /// and its own per-region RNG stream factory (seeded from the
    /// global seed and the region id), so concurrent execution is
    /// bit-identical to [`MultiRegionRunner::run_serial`]. Always
    /// compiled; the `parallel` feature only routes the default
    /// [`MultiRegionRunner::run`] here. Thread count is bounded by
    /// `react_core::par::parallelism()`.
    pub fn run_parallel(&self) -> MultiRegionReport {
        let scenarios = self.region_scenarios();
        let n = scenarios.len();
        let threads = react_core::par::parallelism().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return MultiRegionReport {
                per_region: scenarios
                    .into_iter()
                    .map(|(region_id, sc)| (region_id, self.run_region(sc)))
                    .collect(),
            };
        }
        let mut slots: Vec<(RegionId, Option<Scenario>, Option<RunReport>)> = scenarios
            .into_iter()
            .map(|(region_id, sc)| (region_id, Some(sc), None))
            .collect();
        let chunk = react_core::par::chunk_len(n, threads);
        std::thread::scope(|scope| {
            for part in slots.chunks_mut(chunk) {
                scope.spawn(move || {
                    for (_, sc, out) in part.iter_mut() {
                        let sc = sc.take().expect("scenario consumed once");
                        *out = Some(self.run_region(sc));
                    }
                });
            }
        });
        MultiRegionReport {
            per_region: slots
                .into_iter()
                .map(|(region_id, _, report)| {
                    (region_id, report.expect("every region thread completed"))
                })
                .collect(),
        }
    }

    /// The schedule-permutation race checker: replays the regions under
    /// adversarial execution orderings (reversed, rotated, and seeded
    /// shuffles — up to `max_orders` of them), merges each result back
    /// into region-id order, and demands every merged report be
    /// bit-identical to the serial baseline.
    ///
    /// The parallel path's determinism guarantee rests on regions being
    /// truly independent; any hidden coupling (shared RNG, global state,
    /// order-dependent workload preparation) shows up here as a
    /// divergence long before it becomes a once-in-a-thousand-runs CI
    /// flake in the threaded scheduler. Returns the number of orderings
    /// checked.
    pub fn check_schedule_permutations(
        &self,
        max_orders: usize,
    ) -> Result<usize, SchedulePermutationMismatch> {
        let baseline = self.run_serial();
        let n = baseline.per_region.len();
        if n <= 1 || max_orders == 0 {
            return Ok(0);
        }
        let orders = adversarial_orders(n, max_orders, self.scenario.global.seed);
        let checked = orders.len();
        for order in orders {
            let mut pool: Vec<Option<(RegionId, Scenario)>> =
                self.region_scenarios().into_iter().map(Some).collect();
            let mut merged: Vec<Option<(RegionId, RunReport)>> = (0..n).map(|_| None).collect();
            for &idx in &order {
                let (region_id, sc) = pool[idx].take().expect("each index visited once");
                merged[idx] = Some((region_id, ScenarioRunner::new(sc).run()));
            }
            let report = MultiRegionReport {
                per_region: merged
                    .into_iter()
                    .map(|slot| slot.expect("order is a permutation"))
                    .collect(),
            };
            if !baseline.identical(&report) {
                return Err(SchedulePermutationMismatch { order });
            }
        }
        Ok(checked)
    }

    /// Deterministic preparation shared by both execution paths — see
    /// [`partition_scenarios`].
    fn region_scenarios(&self) -> Vec<(RegionId, Scenario)> {
        partition_scenarios(
            &self.scenario.global,
            self.scenario.rows,
            self.scenario.cols,
        )
    }
}

/// Deterministic partition of one global scenario into independent
/// per-region scenarios: the global Poisson stream, its partition by
/// region, the worker split, and one seeded scenario per region (in
/// region-id order).
///
/// This is the single source of truth for the decomposition. Both
/// [`MultiRegionRunner`] and `react-cluster`'s single-tier fallback path
/// call it, which is what makes a 1-tier cluster run bit-identical to
/// the multi-region demo runner by construction.
pub fn partition_scenarios(global: &Scenario, rows: u32, cols: u32) -> Vec<(RegionId, Scenario)> {
    let grid = RegionGrid::new(global.region, rows, cols).expect("non-zero grid dimensions");
    let streams = RngStreams::new(global.seed ^ 0x9e0);
    let mut workload_rng = streams.stream("global-workload");
    let mut generator = TaskGenerator::new(global.arrival_rate, global.region)
        .with_deadline_range(global.deadline_range.0, global.deadline_range.1)
        .with_categories(global.n_categories);

    // Partition the global stream by region.
    let mut per_region_tasks: Vec<Vec<(f64, react_core::Task)>> = vec![Vec::new(); grid.len()];
    for (at, task) in generator.take_n(global.total_tasks, &mut workload_rng) {
        let region = grid
            .locate(&task.location)
            .expect("generator places tasks inside the area");
        per_region_tasks[region.0 as usize].push((at, task));
    }

    // Workers are spread evenly (remainder to the lowest ids).
    let base = global.n_workers / grid.len();
    let remainder = global.n_workers % grid.len();

    grid.region_ids()
        .map(|region_id| {
            let idx = region_id.0 as usize;
            let n_workers = base + usize::from(idx < remainder);
            let mut sc = global.clone();
            sc.label = format!("{}-{}", global.label, region_id);
            sc.n_workers = n_workers;
            sc.region = grid.cell(region_id).expect("id from region_ids");
            sc.seed = global.seed.wrapping_add(region_id.0 as u64 + 1);
            sc.workload = Some(std::mem::take(&mut per_region_tasks[idx]));
            (region_id, sc)
        })
        .collect()
}

/// Adversarial region execution orders: reversed, rotated by one, and
/// deterministic seeded shuffles, `max_orders` in total. The identity
/// order is never emitted (it *is* the baseline).
fn adversarial_orders(n: usize, max_orders: usize, seed: u64) -> Vec<Vec<usize>> {
    use rand::Rng;
    let mut orders: Vec<Vec<usize>> = Vec::new();
    let push = |candidate: Vec<usize>, orders: &mut Vec<Vec<usize>>| {
        let identity = candidate.iter().enumerate().all(|(i, &v)| i == v);
        if !identity && !orders.contains(&candidate) {
            orders.push(candidate);
        }
    };
    push((0..n).rev().collect(), &mut orders);
    push((0..n).map(|i| (i + 1) % n).collect(), &mut orders);
    let streams = RngStreams::new(seed ^ 0x5ced);
    let mut shuffle_rng = streams.stream("schedule-permutations");
    let mut guard = 0;
    while orders.len() < max_orders && guard < max_orders * 8 {
        guard += 1;
        let mut candidate: Vec<usize> = (0..n).collect();
        // Fisher–Yates with the sanctioned seeded stream.
        for i in (1..n).rev() {
            let j = shuffle_rng.gen_range(0..=i);
            candidate.swap(i, j);
        }
        push(candidate, &mut orders);
    }
    orders.truncate(max_orders);
    orders
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_core::MatcherPolicy;

    fn global(seed: u64) -> Scenario {
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
        sc.n_workers = 60;
        sc.arrival_rate = 4.0;
        sc.total_tasks = 240;
        sc
    }

    #[test]
    fn partitions_cover_the_whole_workload() {
        let runner = MultiRegionRunner::new(MultiRegionScenario {
            global: global(1),
            rows: 2,
            cols: 2,
        });
        let report = runner.run();
        assert_eq!(report.per_region.len(), 4);
        assert_eq!(report.received(), 240, "every task lands in one region");
        let completed: u64 = report
            .per_region
            .iter()
            .map(|(_, r)| r.completed + r.expired_unassigned)
            .sum();
        assert_eq!(completed, 240);
        assert!(report.met_deadline() > 0);
        assert!(report.positive_feedback() <= report.met_deadline());
        assert!((0.0..=1.0).contains(&report.deadline_ratio()));
    }

    #[test]
    fn workers_are_spread_with_remainder() {
        let mut g = global(2);
        g.n_workers = 10; // 10 over 4 regions → 3,3,2,2
        let report = MultiRegionRunner::new(MultiRegionScenario {
            global: g,
            rows: 2,
            cols: 2,
        })
        .run();
        assert_eq!(report.per_region.len(), 4);
    }

    #[test]
    fn region_split_relieves_overload() {
        // The same global load over a 1×1 grid vs a 2×2 grid: the finer
        // decomposition must carry a smaller per-server matching load.
        let coarse = MultiRegionRunner::new(MultiRegionScenario {
            global: global(3),
            rows: 1,
            cols: 1,
        })
        .run();
        let fine = MultiRegionRunner::new(MultiRegionScenario {
            global: global(3),
            rows: 2,
            cols: 2,
        })
        .run();
        assert!(
            fine.max_matching_seconds() <= coarse.max_matching_seconds() + 1e-9,
            "splitting must not increase the per-server matching load: \
             coarse {:.2}s vs fine {:.2}s",
            coarse.max_matching_seconds(),
            fine.max_matching_seconds()
        );
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial_baseline() {
        let runner = MultiRegionRunner::new(MultiRegionScenario {
            global: global(9),
            rows: 2,
            cols: 2,
        });
        let serial = runner.run_serial();
        let parallel = runner.run_parallel();
        assert!(
            serial.identical(&parallel),
            "parallel region execution must not perturb any result"
        );
        // And the default entry point matches both.
        assert!(serial.identical(&runner.run()));
        // Self-inequality guard: a different seed must differ.
        let other = MultiRegionRunner::new(MultiRegionScenario {
            global: global(10),
            rows: 2,
            cols: 2,
        })
        .run_serial();
        assert!(!serial.identical(&other), "different seeds should differ");
    }

    #[test]
    fn schedule_permutations_are_race_free() {
        let runner = MultiRegionRunner::new(MultiRegionScenario {
            global: global(7),
            rows: 2,
            cols: 2,
        });
        let checked = runner
            .check_schedule_permutations(4)
            .expect("region merges must be order-independent");
        assert!(checked >= 3, "expected several orderings, got {checked}");
    }

    #[test]
    fn permutation_checker_handles_degenerate_grids() {
        let runner = MultiRegionRunner::new(MultiRegionScenario {
            global: global(8),
            rows: 1,
            cols: 1,
        });
        // One region has no non-identity orders to check.
        assert_eq!(runner.check_schedule_permutations(4), Ok(0));
    }

    #[test]
    fn adversarial_orders_are_permutations_without_identity() {
        for n in [2usize, 3, 5, 8] {
            let orders = adversarial_orders(n, 6, 42);
            assert!(!orders.is_empty());
            for order in &orders {
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n).collect::<Vec<_>>(), "not a permutation");
                assert!(
                    order.iter().enumerate().any(|(i, &v)| i != v),
                    "identity must be excluded"
                );
            }
            // No duplicate orderings.
            for (i, a) in orders.iter().enumerate() {
                assert!(!orders[i + 1..].contains(a), "duplicate ordering");
            }
        }
    }

    #[test]
    fn observer_counts_regions_and_leaves_results_identical() {
        use react_obs::RecordingObserver;
        use std::sync::Arc;
        let scenario = MultiRegionScenario {
            global: global(5),
            rows: 2,
            cols: 2,
        };
        let baseline = MultiRegionRunner::new(MultiRegionScenario {
            global: global(5),
            rows: 2,
            cols: 2,
        })
        .run_serial();
        let recording = RecordingObserver::new();
        let observed = MultiRegionRunner::new(scenario)
            .with_observer(Arc::new(recording.clone()))
            .run_serial();
        assert!(
            baseline.identical(&observed),
            "attaching a recording observer must not perturb any result"
        );
        assert_eq!(recording.counter(CounterKind::RegionsRun), 4);
        let span = recording
            .span_stats(SpanKind::RegionRun)
            .expect("every region emits a region.run span");
        assert_eq!(span.count, 4);
        assert!(span.total_seconds > 0.0);
        assert!(
            recording.counter(CounterKind::MatcherCycles) > 0,
            "region servers must forward matcher counters to the shared sink"
        );
    }

    #[test]
    fn single_region_matches_plain_runner_shape() {
        // A 1×1 multi-region run is just a plain run with a preset
        // workload: totals must be identical in structure.
        let report = MultiRegionRunner::new(MultiRegionScenario {
            global: global(4),
            rows: 1,
            cols: 1,
        })
        .run();
        assert_eq!(report.per_region.len(), 1);
        let (_, r) = &report.per_region[0];
        assert_eq!(r.received, 240);
        assert_eq!(r.completed + r.expired_unassigned, 240);
    }
}
