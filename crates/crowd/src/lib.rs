//! Crowd behaviour models, workload generation and the end-to-end
//! simulation runner for the REACT experiments.
//!
//! The paper could not obtain real AMT workloads (*"the systems do not
//! allow us to control the task assignment"*), so its evaluation runs a
//! synthetic crowd **parameterised by a CrowdFlower case study** (Sec.
//! V-C). This crate implements that synthetic crowd:
//!
//! * [`WorkerBehavior`] / [`generate_population`] — each worker gets a
//!   personal service-time range inside 1–20 s, a 50 % chance per task to
//!   delay/abandon (stretching execution up to 130 s), and an intrinsic
//!   feedback quality distributed so that 70 % of workers exceed 0.5.
//! * [`TaskGenerator`] — Poisson task arrivals at a configurable rate
//!   with deadlines uniform in 60–120 s, random locations and categories.
//! * [`Scenario`] — named parameter sets for every figure (Fig. 5's
//!   750 workers @ 9.375 tasks/s, Fig. 9's size/rate sweep…).
//! * [`ScenarioRunner`] — wires a [`react_core::ReactServer`] into the
//!   `react-sim` discrete-event loop and produces a [`RunReport`] with
//!   the exact series the paper plots.
//! * [`casestudy`] — a synthesizer reproducing the shape of the raw
//!   CrowdFlower observations (half the responses within 20 s, a tail of
//!   hours, 70 % of workers trusted above 50 %).

#![warn(missing_docs)]

pub mod analysis;
pub mod behavior;
pub mod casestudy;
pub mod generator;
pub mod multiregion;
pub mod runner;
pub mod scenario;

pub use analysis::{AuditAnalysis, TaskLatency};
pub use behavior::{generate_population, BehaviorParams, ExecModel, LatencyModel, WorkerBehavior};
pub use casestudy::{CaseStudySummary, CaseStudyTrace};
pub use generator::TaskGenerator;
pub use multiregion::{
    partition_scenarios, MultiRegionReport, MultiRegionRunner, MultiRegionScenario,
    SchedulePermutationMismatch,
};
pub use runner::{FaultStats, RunReport, ScenarioRunner};
pub use scenario::{ChurnParams, Scenario};
