//! Named experiment scenarios.
//!
//! A [`Scenario`] bundles every knob of an end-to-end run: crowd size and
//! behaviour, arrival rate and workload length, the middleware
//! configuration, and the RNG seed. The constructors mirror the paper's
//! evaluation setups so each figure's harness is one call.

use crate::behavior::BehaviorParams;
use react_core::{Config, MatcherPolicy};
use react_geo::BoundingBox;

/// Worker connectivity churn: the paper stresses that *"even the most
/// reliable workers may have short connectivity cycles"*. Each worker
/// stays online for an exponentially distributed period, goes offline
/// (abandoning any task in hand — the server reassigns it) for a uniform
/// duration, then returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnParams {
    /// Mean online period per worker (seconds).
    pub mean_online: f64,
    /// Offline duration range (seconds).
    pub offline_range: (f64, f64),
}

/// Full parameter set of one simulation run.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable label for reports.
    pub label: String,
    /// Number of workers registered at t = 0 (one region server).
    pub n_workers: usize,
    /// Poisson arrival rate (tasks/second).
    pub arrival_rate: f64,
    /// Total tasks submitted before the arrival stream stops.
    pub total_tasks: usize,
    /// Crowd behaviour parameters.
    pub behavior: BehaviorParams,
    /// Middleware configuration (matcher, thresholds, trigger…).
    pub config: Config,
    /// Geographic region covered by the server.
    pub region: BoundingBox,
    /// Task deadline range (seconds).
    pub deadline_range: (f64, f64),
    /// Number of task categories.
    pub n_categories: u32,
    /// Worker connectivity churn (`None` = a stable crowd, as in the
    /// paper's evaluation).
    pub churn: Option<ChurnParams>,
    /// Replication factor `k`: every logical task is submitted as `k`
    /// replicas to distinct workers and judged by majority vote — the
    /// CDAS/Karger-style redundancy scheme the paper's related work
    /// contrasts against (1 = no replication, the paper's setting).
    pub replication: usize,
    /// Interval between middleware control ticks (seconds).
    pub tick_interval: f64,
    /// Hard simulation horizon after the last arrival (seconds) — lets
    /// in-flight work drain without running forever.
    pub drain_horizon: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Preset workload: when set, the runner replays exactly these
    /// `(arrival_time, task)` pairs instead of generating a Poisson
    /// stream (used by the multi-region runner to partition one global
    /// stream across servers). Must be sorted by arrival time.
    pub workload: Option<Vec<(f64, react_core::Task)>>,
    /// Fault-injection plan (`None` = a fault-free run). The plan is
    /// materialised from the scenario's own named RNG streams, so chaos
    /// runs stay bit-reproducible from `seed` alone.
    pub faults: Option<react_faults::FaultPlan>,
}

impl Scenario {
    /// The region used by all paper scenarios (metropolitan Athens — the
    /// authors' locale; the choice has no effect beyond coordinates).
    pub fn default_region() -> BoundingBox {
        BoundingBox::new(37.8, 38.2, 23.5, 24.0).expect("static bounds are valid")
    }

    /// Sec. V-C's end-to-end setup (Figs. 5–8): 750 workers, 9.375
    /// tasks/s, ≈ 8371 tasks, REACT @1000 cycles, batches at > 10
    /// unassigned tasks.
    pub fn paper_fig5(matcher: MatcherPolicy, seed: u64) -> Self {
        Scenario {
            label: format!("fig5-{}", matcher.name()),
            n_workers: 750,
            arrival_rate: 9.375,
            total_tasks: 8371,
            behavior: BehaviorParams::default(),
            config: Config::with_matcher(matcher),
            region: Self::default_region(),
            deadline_range: (60.0, 120.0),
            n_categories: 1,
            churn: None,
            replication: 1,
            tick_interval: 1.0,
            drain_horizon: 300.0,
            seed,
            workload: None,
            faults: None,
        }
    }

    /// One point of the Fig. 9/10 scalability sweep: `n` workers at the
    /// matched arrival rate (the paper pairs 100→1.5, 250→3.125,
    /// 500→6.25, 750→9.375, 1000→12.5 tasks/s).
    pub fn paper_fig9(n_workers: usize, rate: f64, matcher: MatcherPolicy, seed: u64) -> Self {
        Scenario {
            label: format!("fig9-{}-w{}", matcher.name(), n_workers),
            n_workers,
            arrival_rate: rate,
            total_tasks: (rate * 600.0).round() as usize, // 10 simulated minutes
            ..Self::paper_fig5(matcher, seed)
        }
    }

    /// The `(workers, rate)` pairs of the paper's scalability sweep.
    pub fn fig9_sweep_points() -> [(usize, f64); 5] {
        [
            (100, 1.5),
            (250, 3.125),
            (500, 6.25),
            (750, 9.375),
            (1000, 12.5),
        ]
    }

    /// A small, fast scenario for tests and the quickstart example.
    pub fn smoke(matcher: MatcherPolicy, seed: u64) -> Self {
        Scenario {
            label: format!("smoke-{}", matcher.name()),
            n_workers: 30,
            arrival_rate: 2.0,
            total_tasks: 120,
            behavior: BehaviorParams::default(),
            config: Config::with_matcher(matcher),
            region: Self::default_region(),
            deadline_range: (60.0, 120.0),
            n_categories: 2,
            churn: None,
            replication: 1,
            tick_interval: 1.0,
            drain_horizon: 200.0,
            seed,
            workload: None,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_matches_paper_parameters() {
        let s = Scenario::paper_fig5(MatcherPolicy::React { cycles: 1000 }, 1);
        assert_eq!(s.n_workers, 750);
        assert_eq!(s.arrival_rate, 9.375);
        assert_eq!(s.total_tasks, 8371);
        assert_eq!(s.deadline_range, (60.0, 120.0));
        assert_eq!(s.config.batch.min_unassigned, 10);
        assert_eq!(s.label, "fig5-react");
    }

    #[test]
    fn fig9_sweep_pairs_match_paper() {
        let pts = Scenario::fig9_sweep_points();
        assert_eq!(pts[0], (100, 1.5));
        assert_eq!(pts[4], (1000, 12.5));
        let s = Scenario::paper_fig9(500, 6.25, MatcherPolicy::Greedy, 2);
        assert_eq!(s.n_workers, 500);
        assert_eq!(s.total_tasks, 3750);
        assert_eq!(s.label, "fig9-greedy-w500");
    }

    #[test]
    fn smoke_is_small() {
        let s = Scenario::smoke(MatcherPolicy::Traditional, 0);
        assert!(s.total_tasks <= 200);
        assert!(s.n_workers <= 50);
    }
}
