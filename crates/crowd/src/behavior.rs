//! Worker behaviour models (Sec. V-C).
//!
//! *"We create a number of workers that receive tasks from the system and
//! process them among a time interval that is randomly decided based on
//! their profile and ranges from a minimum to a maximum time. Although
//! each worker receives a unique minimum and maximum time these times are
//! constrained among 1–20 seconds ... a worker might choose to delay or
//! abandon the task randomly with a probability of 50% and thus the
//! executing time may reach up to 130 seconds. Moreover ... each worker
//! has a unique feedback ∈ \[0,1\] assigned with a distribution where the
//! 70% of the workers receive a feedback that is above 0.50."*
//!
//! Besides the paper's uniform-with-delay model, a **power-law** latency
//! model is provided ([`LatencyModel::PowerLaw`]): Ipeirotis's analysis —
//! the very basis of the paper's Eq. (2)/(3) estimator — found AMT
//! latencies to be power-law distributed, so this variant makes the
//! estimator exactly well-specified. The `react-experiments ablation`
//! latency-sensitivity experiment compares the two.

use rand::Rng;
use react_prob::distributions::{Bernoulli, UniformRange};
use react_prob::PowerLaw;

/// How a worker's execution times are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// The paper's Sec. V-C model: a personal uniform service range
    /// inside the population bounds, with a per-task delay/abandon coin.
    PaperUniform,
    /// Personal power-law latencies: each worker draws `α` and `k_min`
    /// uniformly from the given ranges; samples are capped (a worker
    /// eventually gives an answer or the session ends).
    PowerLaw {
        /// Range of the personal exponent `α` (must stay > 1).
        alpha_range: (f64, f64),
        /// Range of the personal minimum latency `k_min` (seconds).
        kmin_range: (f64, f64),
        /// Hard cap on a single execution (seconds).
        cap: f64,
    },
}

/// Population-level behaviour parameters (paper defaults in
/// [`BehaviorParams::default`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BehaviorParams {
    /// Bounds within which each worker's personal service range lives
    /// (uniform model only).
    pub service_bounds: (f64, f64),
    /// Per-task probability that the worker delays/abandons (uniform
    /// model only).
    pub delay_probability: f64,
    /// Upper bound of a delayed execution, seconds (uniform model only).
    pub delay_max: f64,
    /// Fraction of workers whose intrinsic quality exceeds 0.5.
    pub fraction_high_quality: f64,
    /// The latency model workers follow.
    pub latency: LatencyModel,
}

impl Default for BehaviorParams {
    fn default() -> Self {
        BehaviorParams {
            service_bounds: (1.0, 20.0),
            delay_probability: 0.5,
            delay_max: 130.0,
            fraction_high_quality: 0.7,
            latency: LatencyModel::PaperUniform,
        }
    }
}

impl BehaviorParams {
    /// Paper defaults but with power-law latencies whose typical values
    /// sit in the same 1–20 s band and whose tail reaches the same
    /// ≈ 130 s scale as the uniform model's delays.
    pub fn power_law_defaults() -> Self {
        BehaviorParams {
            latency: LatencyModel::PowerLaw {
                alpha_range: (1.8, 3.0),
                kmin_range: (1.0, 8.0),
                cap: 130.0,
            },
            ..Self::default()
        }
    }
}

/// How one worker's execution time is sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecModel {
    /// Honest uniform service time, stretched by an occasional delay.
    UniformWithDelay {
        /// Personal honest-service range.
        service_range: UniformRange,
        /// Per-task delay/abandon coin.
        delay: Bernoulli,
        /// Delayed executions stretch to at most this long.
        delay_max: f64,
    },
    /// Personal power law, capped.
    PowerLaw {
        /// The personal latency law.
        law: PowerLaw,
        /// Hard cap (seconds).
        cap: f64,
    },
}

/// One simulated human worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerBehavior {
    /// The execution-time model.
    pub exec: ExecModel,
    /// Intrinsic result quality: the probability a requester judges the
    /// result positively (given the deadline was met).
    pub quality: f64,
}

impl WorkerBehavior {
    /// Convenience constructor for the paper's uniform model.
    pub fn uniform(
        service_range: UniformRange,
        delay_probability: f64,
        delay_max: f64,
        quality: f64,
    ) -> Self {
        WorkerBehavior {
            exec: ExecModel::UniformWithDelay {
                service_range,
                delay: Bernoulli::new(delay_probability),
                delay_max,
            },
            quality,
        }
    }

    /// Samples the execution time for one task.
    pub fn sample_exec_time<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match &self.exec {
            ExecModel::UniformWithDelay {
                service_range,
                delay,
                delay_max,
            } => {
                let honest = service_range.sample(rng);
                if delay.sample(rng) && *delay_max > honest {
                    UniformRange::new(honest, *delay_max).sample(rng)
                } else {
                    honest
                }
            }
            ExecModel::PowerLaw { law, cap } => law.sample(rng).min(*cap),
        }
    }

    /// Samples the requester's quality verdict for a completed task.
    pub fn sample_quality_ok<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        Bernoulli::new(self.quality).sample(rng)
    }
}

/// Generates `n` workers per the population parameters. Quality is drawn
/// so that `fraction_high_quality` of workers land above 0.5 (uniform
/// within each band); the execution model follows `params.latency`.
pub fn generate_population<R: Rng + ?Sized>(
    n: usize,
    params: &BehaviorParams,
    rng: &mut R,
) -> Vec<WorkerBehavior> {
    let (lo, hi) = params.service_bounds;
    let high_quality = Bernoulli::new(params.fraction_high_quality);
    (0..n)
        .map(|_| {
            let quality = if high_quality.sample(rng) {
                rng.gen_range(0.5..=1.0)
            } else {
                rng.gen_range(0.0..0.5)
            };
            let exec = match params.latency {
                LatencyModel::PaperUniform => {
                    let a = rng.gen_range(lo..=hi);
                    let b = rng.gen_range(lo..=hi);
                    ExecModel::UniformWithDelay {
                        service_range: UniformRange::new(a, b),
                        delay: Bernoulli::new(params.delay_probability),
                        delay_max: params.delay_max,
                    }
                }
                LatencyModel::PowerLaw {
                    alpha_range,
                    kmin_range,
                    cap,
                } => {
                    let alpha = rng.gen_range(alpha_range.0..=alpha_range.1).max(1.01);
                    let k_min = rng
                        .gen_range(kmin_range.0..=kmin_range.1)
                        .max(f64::MIN_POSITIVE);
                    ExecModel::PowerLaw {
                        law: PowerLaw::new(alpha, k_min).expect("ranges validated above"),
                        cap,
                    }
                }
            };
            WorkerBehavior { exec, quality }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn default_params_match_paper() {
        let p = BehaviorParams::default();
        assert_eq!(p.service_bounds, (1.0, 20.0));
        assert_eq!(p.delay_probability, 0.5);
        assert_eq!(p.delay_max, 130.0);
        assert_eq!(p.fraction_high_quality, 0.7);
        assert_eq!(p.latency, LatencyModel::PaperUniform);
    }

    #[test]
    fn population_ranges_within_bounds() {
        let mut g = rng();
        let pop = generate_population(500, &BehaviorParams::default(), &mut g);
        assert_eq!(pop.len(), 500);
        for w in &pop {
            match w.exec {
                ExecModel::UniformWithDelay { service_range, .. } => {
                    assert!(service_range.lo() >= 1.0);
                    assert!(service_range.hi() <= 20.0);
                }
                _ => panic!("paper model expected"),
            }
            assert!((0.0..=1.0).contains(&w.quality));
        }
    }

    #[test]
    fn seventy_percent_high_quality() {
        let mut g = rng();
        let pop = generate_population(5_000, &BehaviorParams::default(), &mut g);
        let high = pop.iter().filter(|w| w.quality > 0.5).count() as f64 / 5_000.0;
        assert!((high - 0.7).abs() < 0.03, "high-quality fraction {high}");
    }

    #[test]
    fn exec_times_bounded_and_bimodal() {
        let mut g = rng();
        let w = WorkerBehavior::uniform(UniformRange::new(2.0, 10.0), 0.5, 130.0, 0.8);
        let times: Vec<f64> = (0..20_000).map(|_| w.sample_exec_time(&mut g)).collect();
        assert!(times.iter().all(|&t| (2.0..=130.0).contains(&t)));
        // Roughly half the tasks finish inside the honest range.
        let honest = times.iter().filter(|&&t| t <= 10.0).count() as f64 / 20_000.0;
        assert!((0.45..0.65).contains(&honest), "honest fraction {honest}");
        // The delayed half reaches far beyond it.
        assert!(times.iter().any(|&t| t > 100.0));
    }

    #[test]
    fn no_delay_worker_stays_in_range() {
        let mut g = rng();
        let w = WorkerBehavior::uniform(UniformRange::new(3.0, 6.0), 0.0, 130.0, 1.0);
        for _ in 0..1000 {
            let t = w.sample_exec_time(&mut g);
            assert!((3.0..=6.0).contains(&t));
        }
        assert!(w.sample_quality_ok(&mut g));
    }

    #[test]
    fn delay_max_below_honest_is_harmless() {
        let mut g = rng();
        let w = WorkerBehavior::uniform(UniformRange::new(10.0, 12.0), 1.0, 5.0, 0.5);
        for _ in 0..100 {
            let t = w.sample_exec_time(&mut g);
            assert!((10.0..=12.0).contains(&t), "falls back to honest time");
        }
    }

    #[test]
    fn quality_verdict_rate() {
        let mut g = rng();
        let w = WorkerBehavior::uniform(UniformRange::new(1.0, 2.0), 0.0, 130.0, 0.3);
        let ok = (0..20_000).filter(|_| w.sample_quality_ok(&mut g)).count() as f64 / 20_000.0;
        assert!((ok - 0.3).abs() < 0.02, "verdict rate {ok}");
    }

    #[test]
    fn power_law_population_samples_in_support() {
        let mut g = rng();
        let pop = generate_population(200, &BehaviorParams::power_law_defaults(), &mut g);
        for w in &pop {
            let ExecModel::PowerLaw { law, cap } = w.exec else {
                panic!("power-law model expected");
            };
            assert!((1.8..=3.0).contains(&law.alpha()));
            assert!((1.0..=8.0).contains(&law.k_min()));
            for _ in 0..50 {
                let t = w.sample_exec_time(&mut g);
                assert!(t >= law.k_min() && t <= cap, "sample {t} out of range");
            }
        }
    }

    #[test]
    fn power_law_latencies_are_heavy_tailed_but_capped() {
        let mut g = rng();
        let pop = generate_population(300, &BehaviorParams::power_law_defaults(), &mut g);
        let samples: Vec<f64> = pop
            .iter()
            .flat_map(|w| {
                (0..40)
                    .map(|_| w.sample_exec_time(&mut g))
                    .collect::<Vec<_>>()
            })
            .collect();
        // Typical values small, tail touches the cap region.
        let median = {
            let mut s = samples.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        assert!(median < 15.0, "median {median}");
        assert!(samples.iter().any(|&t| t > 60.0), "tail must reach minutes");
        assert!(samples.iter().all(|&t| t <= 130.0));
    }
}
