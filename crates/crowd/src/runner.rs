//! The end-to-end discrete-event experiment runner.
//!
//! Wires a [`ReactServer`] to the `react-sim` kernel and a synthetic
//! crowd, producing the exact data series the paper plots:
//!
//! * Fig. 5 — cumulative tasks finished before their deadline vs tasks
//!   received ([`RunReport::series_met`]);
//! * Fig. 6 — cumulative positive feedbacks ([`RunReport::series_positive`]);
//! * Fig. 7 — final-worker execution times ([`RunReport::exec_times`]);
//! * Fig. 8 — total times including assignment/queueing
//!   ([`RunReport::total_times`]);
//! * Figs. 9/10 — the ratios, via the same report across a sweep.
//!
//! Event model: task arrivals (Poisson), middleware control ticks (fixed
//! interval — expiry sweep, Eq. 2 recalls, batch matching), and worker
//! finish events. A recall invalidates the worker's pending finish event
//! through a per-task epoch counter.

use crate::behavior::{generate_population, WorkerBehavior};
use crate::generator::TaskGenerator;
use crate::scenario::Scenario;
use rand::Rng;
use react_core::{AuditLog, ReactServer, Task, TaskCategory, TaskId, WorkerId};
use react_faults::FaultSchedule;
use react_metrics::TimeSeries;
use react_obs::{null_observer, CounterKind, ObserverHandle};
use react_prob::distributions::{Exponential, UniformRange};
use react_sim::{RngStreams, SimDuration, SimTime, Simulator};
use std::collections::BTreeMap;

/// Task ids at or above this base are injected burst tasks: far outside
/// the sequential generator id space and the replica-id arithmetic
/// (`logical_id * k + j`), so they can never collide with workload ids.
const BURST_ID_BASE: u64 = 1 << 40;

/// Events driving the simulation.
#[derive(Debug)]
enum Event {
    /// A requester submits a task.
    Arrival(Task),
    /// Periodic middleware control step.
    Tick,
    /// A worker finishes executing a task (valid only when the task's
    /// epoch still matches — recalls bump it).
    Finish {
        task: TaskId,
        worker: WorkerId,
        epoch: u32,
    },
    /// A worker's connectivity drops (churn): any held task is recalled.
    WorkerOffline(WorkerId),
    /// A churned worker reconnects.
    WorkerOnline(WorkerId),
    /// A fault-plan burst: `size` extra tasks arrive at one instant.
    Burst { size: u32 },
}

/// Injected-fault and recovery accounting of one run. All zeros on a
/// fault-free run, so reports stay comparable across scenarios.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker dropouts injected by the fault plan (churn-style departures
    /// are counted separately in [`RunReport::churn_events`]).
    pub dropouts: u64,
    /// Assignments silently abandoned (worker never reports back).
    pub abandons: u64,
    /// Completion messages dropped in flight.
    pub completions_lost: u64,
    /// Completion messages delivered twice.
    pub completions_duplicated: u64,
    /// Duplicate deliveries the server correctly rejected. Equal to
    /// [`FaultStats::completions_duplicated`] when idempotence holds.
    pub duplicates_rejected: u64,
    /// Extra tasks injected by burst arrivals.
    pub burst_tasks: u64,
    /// Timeout-ladder recalls performed by the recovery layer.
    pub timeout_recalls: u64,
    /// Tasks shed under graceful degradation (pool below floor).
    pub sheds: u64,
    /// Tasks still assigned when the run ended — in-flight work stranded
    /// by faults that no recovery path reclaimed.
    pub stranded: u64,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario label.
    pub label: String,
    /// The matcher that ran ("react", "greedy", "traditional", …).
    pub matcher_name: &'static str,
    /// Tasks that arrived.
    pub received: u64,
    /// Tasks that completed (before or after their deadline).
    pub completed: u64,
    /// Tasks completed before their deadline (Fig. 5's y-axis).
    pub met_deadline: u64,
    /// Positive feedbacks earned (Fig. 6's y-axis).
    pub positive_feedback: u64,
    /// Tasks that expired while unassigned.
    pub expired_unassigned: u64,
    /// Eq. (2) recalls performed.
    pub reassignments: u64,
    /// Worker offline (churn) events.
    pub churn_events: u64,
    /// Matching batches run.
    pub batches: u64,
    /// Total modelled scheduler compute time (seconds).
    pub total_matching_seconds: f64,
    /// Cumulative (tasks received → deadlines met) curve.
    pub series_met: TimeSeries,
    /// Cumulative (tasks received → positive feedbacks) curve.
    pub series_positive: TimeSeries,
    /// `ExecTime` of the final worker per completed task (Fig. 7).
    pub exec_times: Vec<f64>,
    /// Submission→completion time per completed task (Fig. 8).
    pub total_times: Vec<f64>,
    /// Simulated duration (seconds).
    pub sim_duration: f64,
    /// The task lifecycle audit log, when `config.audit` was enabled.
    pub audit: Option<AuditLog>,
    /// Replication factor of the run (1 = the paper's setting).
    pub replication: usize,
    /// Logical task groups (= received / replication).
    pub groups: u64,
    /// Groups where a strict majority of replicas earned positive
    /// feedback (the voting scheme's success criterion; needs
    /// per-replica success above ½ to help).
    pub groups_majority_positive: u64,
    /// Groups where at least one replica earned positive feedback (the
    /// best-answer redundancy criterion).
    pub groups_any_positive: u64,
    /// Groups where at least one replica met the deadline.
    pub groups_any_met: u64,
    /// Injected-fault and recovery accounting (all zeros without a
    /// [`Scenario::faults`] plan).
    pub faults: FaultStats,
}

impl RunReport {
    /// Fraction of logical groups whose majority vote was positive —
    /// the accuracy metric of replication schemes. With `replication`
    /// = 1 this equals [`RunReport::positive_ratio`].
    pub fn group_accuracy(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.groups_majority_positive as f64 / self.groups as f64
        }
    }

    /// Payments made: one per completed replica (AMT pays on
    /// completion) — the cost metric replication multiplies.
    pub fn payments(&self) -> u64 {
        self.completed
    }

    /// Fraction of received tasks that met their deadline.
    pub fn deadline_ratio(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.met_deadline as f64 / self.received as f64
        }
    }

    /// Fraction of received tasks that earned positive feedback.
    pub fn positive_ratio(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.positive_feedback as f64 / self.received as f64
        }
    }

    /// Mean final-worker execution time (Fig. 7's bar).
    pub fn avg_exec_time(&self) -> f64 {
        mean(&self.exec_times)
    }

    /// Mean total time including assignment (Fig. 8's bar).
    pub fn avg_total_time(&self) -> f64 {
        mean(&self.total_times)
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Where arrivals come from: a preset (already generated) stream or a
/// live Poisson generator.
enum Workload {
    Preset(std::vec::IntoIter<(f64, Task)>),
    Poisson(TaskGenerator),
}

impl Workload {
    fn next(&mut self, rng: &mut rand::rngs::SmallRng) -> Option<(f64, Task)> {
        match self {
            Workload::Preset(iter) => iter.next(),
            Workload::Poisson(generator) => Some(generator.next(rng)),
        }
    }
}

/// Runs one [`Scenario`] to completion.
pub struct ScenarioRunner {
    scenario: Scenario,
    observer: ObserverHandle,
}

impl ScenarioRunner {
    /// Creates a runner for the scenario.
    pub fn new(scenario: Scenario) -> Self {
        ScenarioRunner {
            scenario,
            observer: null_observer(),
        }
    }

    /// Attaches an observability sink; the embedded [`ReactServer`]
    /// reports per-stage spans, matcher counters and latency histograms
    /// to it. Observers are write-only: the run's schedule is
    /// bit-identical whatever sink is attached.
    pub fn with_observer(mut self, observer: ObserverHandle) -> Self {
        self.observer = observer;
        self
    }

    /// Executes the simulation and returns the report.
    pub fn run(&self) -> RunReport {
        let sc = &self.scenario;
        let streams = RngStreams::new(sc.seed);
        let mut pop_rng = streams.stream("population");
        let mut workload_rng = streams.stream("workload");
        let mut behavior_rng = streams.stream("behavior");
        // The fault plan draws only from `fault.*` streams, so a fault-free
        // run is bit-identical to one with `faults: Some(FaultPlan::none())`.
        let fault_schedule = match &sc.faults {
            Some(plan) if !plan.is_noop() => plan.materialize(&streams, sc.n_workers),
            _ => FaultSchedule::none(),
        };
        let mut burst_rng = streams.stream("fault.burst-tasks");

        // Crowd.
        let behaviors: Vec<WorkerBehavior> =
            generate_population(sc.n_workers, &sc.behavior, &mut pop_rng);
        let mut server = ReactServer::builder(sc.config.clone())
            .seed(sc.seed ^ 0x5eed)
            .observer(self.observer.clone())
            .build()
            .expect("scenario carries a valid middleware config");
        for (i, _) in behaviors.iter().enumerate() {
            server.register_worker(WorkerId(i as u64), sc.region.random_point(&mut pop_rng));
        }

        // Workload: preset replay or live Poisson generation.
        let (mut workload, total_tasks) = match &sc.workload {
            Some(preset) => (Workload::Preset(preset.clone().into_iter()), preset.len()),
            None => (
                Workload::Poisson(
                    TaskGenerator::new(sc.arrival_rate, sc.region)
                        .with_deadline_range(sc.deadline_range.0, sc.deadline_range.1)
                        .with_categories(sc.n_categories),
                ),
                sc.total_tasks,
            ),
        };

        let mut sim: Simulator<Event> = Simulator::new();
        let mut report = RunReport {
            label: sc.label.clone(),
            matcher_name: sc.config.matcher.name(),
            received: 0,
            completed: 0,
            met_deadline: 0,
            positive_feedback: 0,
            expired_unassigned: 0,
            reassignments: 0,
            churn_events: 0,
            batches: 0,
            total_matching_seconds: 0.0,
            series_met: TimeSeries::new("met_deadline"),
            series_positive: TimeSeries::new("positive_feedback"),
            exec_times: Vec::new(),
            total_times: Vec::new(),
            sim_duration: 0.0,
            audit: None,
            replication: sc.replication.max(1),
            groups: 0,
            groups_majority_positive: 0,
            groups_any_positive: 0,
            groups_any_met: 0,
            faults: FaultStats::default(),
        };
        let mut epochs: BTreeMap<TaskId, u32> = BTreeMap::new();
        // Replica bookkeeping: group id → (resolved, positive, met).
        let k = sc.replication.max(1);
        let mut group_state: BTreeMap<u64, (usize, usize, bool)> = BTreeMap::new();
        // Per-worker FIFO release time. Availability-aware policies never
        // double-book a worker, but the Traditional policy assigns
        // blindly: later tasks queue behind the worker's current one.
        let mut next_free: Vec<f64> = vec![0.0; sc.n_workers];
        let mut last_arrival_at = 0.0f64;

        // Prime the event loop. With replication, each logical task is
        // expanded into k replica Tasks sharing a group id.
        let expand = |task: Task, k: usize| -> Vec<Task> {
            if k <= 1 {
                return vec![task];
            }
            (0..k as u64)
                .map(|j| {
                    Task::new(
                        TaskId(task.id.0 * k as u64 + j),
                        task.location,
                        task.deadline,
                        task.reward,
                        task.category,
                        task.description.clone(),
                    )
                })
                .collect()
        };
        let mut logical_generated = 0usize;
        if total_tasks > 0 {
            if let Some((at, task)) = workload.next(&mut workload_rng) {
                logical_generated += 1;
                for replica in expand(task, k) {
                    sim.schedule_at(SimTime::from_secs(at), Event::Arrival(replica));
                }
            }
        }
        sim.schedule_in(SimDuration::from_secs(sc.tick_interval), Event::Tick);
        let mut churn_rng = streams.stream("churn");
        if let Some(churn) = sc.churn {
            let online = Exponential::with_mean(churn.mean_online);
            for w in 0..sc.n_workers {
                sim.schedule_in(
                    SimDuration::from_secs(online.sample(&mut churn_rng)),
                    Event::WorkerOffline(WorkerId(w as u64)),
                );
            }
        }
        // Fault-plan events are fully materialised up front, so their
        // schedule is independent of anything the run does.
        for d in fault_schedule.dropouts() {
            if d.worker >= sc.n_workers {
                continue;
            }
            report.faults.dropouts += 1;
            sim.schedule_at(
                SimTime::from_secs(d.at),
                Event::WorkerOffline(WorkerId(d.worker as u64)),
            );
            if let Some(rejoin) = d.rejoin_at {
                sim.schedule_at(
                    SimTime::from_secs(rejoin),
                    Event::WorkerOnline(WorkerId(d.worker as u64)),
                );
            }
        }
        for &(at, size) in fault_schedule.bursts() {
            sim.schedule_at(SimTime::from_secs(at), Event::Burst { size });
        }

        while let Some((at, event)) = sim.next_event() {
            let now = at.as_secs();
            match event {
                Event::Arrival(task) => {
                    report.received += 1;
                    last_arrival_at = now;
                    let task_group_index = task.id.0 % k as u64;
                    server.submit_task(task, now);
                    // Only the group's first replica triggers generation
                    // of the next logical task (all k replicas arrive as
                    // Arrival events; re-triggering on each would fan
                    // out exponentially).
                    let first_replica = k == 1 || task_group_index == 0;
                    if first_replica && logical_generated < total_tasks {
                        if let Some((next_at, next_task)) = workload.next(&mut workload_rng) {
                            logical_generated += 1;
                            for replica in expand(next_task, k) {
                                sim.schedule_at(
                                    SimTime::from_secs(next_at),
                                    Event::Arrival(replica),
                                );
                            }
                        }
                    }
                    // Arrival doubles as a control step so the batch
                    // trigger reacts to queue growth immediately.
                    Self::control_step(
                        &mut server,
                        now,
                        &behaviors,
                        &mut behavior_rng,
                        &mut epochs,
                        &mut next_free,
                        &mut sim,
                        &mut report,
                        &fault_schedule,
                    );
                }
                Event::Burst { size } => {
                    for _ in 0..size {
                        let id = TaskId(BURST_ID_BASE + report.faults.burst_tasks);
                        let deadline = burst_rng.gen_range(
                            sc.deadline_range.0
                                ..sc.deadline_range.1.max(sc.deadline_range.0 + f64::EPSILON),
                        );
                        let reward = burst_rng.gen_range(0.01..0.10);
                        let category = TaskCategory(burst_rng.gen_range(0..sc.n_categories.max(1)));
                        let task = Task::new(
                            id,
                            sc.region.random_point(&mut burst_rng),
                            deadline,
                            reward,
                            category,
                            "burst",
                        );
                        report.received += 1;
                        report.faults.burst_tasks += 1;
                        server.submit_task(task, now);
                    }
                    // A burst extends the drain window like any arrival.
                    last_arrival_at = now;
                    Self::control_step(
                        &mut server,
                        now,
                        &behaviors,
                        &mut behavior_rng,
                        &mut epochs,
                        &mut next_free,
                        &mut sim,
                        &mut report,
                        &fault_schedule,
                    );
                }
                Event::Tick => {
                    Self::control_step(
                        &mut server,
                        now,
                        &behaviors,
                        &mut behavior_rng,
                        &mut epochs,
                        &mut next_free,
                        &mut sim,
                        &mut report,
                        &fault_schedule,
                    );
                    // Burst tasks are extra load, not workload progress.
                    let workload_done =
                        (report.received - report.faults.burst_tasks) as usize >= total_tasks * k;
                    let tasks_open = server.tasks().unassigned_count() > 0
                        || server.tasks().assigned_count() > 0;
                    let past_horizon = workload_done && now > last_arrival_at + sc.drain_horizon;
                    if (!workload_done || tasks_open) && !past_horizon {
                        sim.schedule_in(SimDuration::from_secs(sc.tick_interval), Event::Tick);
                    }
                }
                Event::WorkerOffline(worker) => {
                    report.churn_events += 1;
                    for task in server.worker_offline(worker, now) {
                        *epochs.entry(task).or_insert(0) += 1;
                    }
                    next_free[worker.0 as usize] = now;
                    if let Some(churn) = sc.churn {
                        let off = UniformRange::new(churn.offline_range.0, churn.offline_range.1);
                        sim.schedule_in(
                            SimDuration::from_secs(off.sample(&mut churn_rng).max(0.001)),
                            Event::WorkerOnline(worker),
                        );
                    }
                }
                Event::WorkerOnline(worker) => {
                    let _ = server.worker_online(worker);
                    // Schedule the next departure only while the run is
                    // still live, so the event queue can drain.
                    let workload_done =
                        (report.received - report.faults.burst_tasks) as usize >= total_tasks * k;
                    let past_horizon = workload_done && now > last_arrival_at + sc.drain_horizon;
                    if let (Some(churn), false) = (sc.churn, past_horizon) {
                        let online = Exponential::with_mean(churn.mean_online);
                        sim.schedule_in(
                            SimDuration::from_secs(online.sample(&mut churn_rng)),
                            Event::WorkerOffline(worker),
                        );
                    }
                }
                Event::Finish {
                    task,
                    worker,
                    epoch,
                } => {
                    // Stale finish events (the task was recalled) are
                    // dropped: the worker was already freed at recall.
                    if epochs.get(&task).copied() != Some(epoch) {
                        continue;
                    }
                    if fault_schedule.loses_completion(task.0, epoch) {
                        // The worker finished but the completion message
                        // never reached the server: the task stays
                        // assigned until the timeout ladder recalls it
                        // (or it strands at the horizon).
                        report.faults.completions_lost += 1;
                        continue;
                    }
                    let behavior = &behaviors[worker.0 as usize];
                    let quality_ok = behavior.sample_quality_ok(&mut behavior_rng);
                    let submitted_at = server
                        .tasks()
                        .record(task)
                        .expect("finishing task is tracked")
                        .submitted_at;
                    let outcome = server
                        .complete_task(task, worker, now, quality_ok)
                        .expect("valid-epoch finish events match the assignment");
                    report.completed += 1;
                    if outcome.met_deadline {
                        report.met_deadline += 1;
                    }
                    if outcome.positive_feedback {
                        report.positive_feedback += 1;
                    }
                    report
                        .series_met
                        .push(report.received as f64, report.met_deadline as f64);
                    report
                        .series_positive
                        .push(report.received as f64, report.positive_feedback as f64);
                    report.exec_times.push(outcome.exec_time);
                    report.total_times.push(now - submitted_at);
                    // Burst tasks are not part of any replica group.
                    if task.0 < BURST_ID_BASE {
                        let group = task.0 / k as u64;
                        let entry = group_state.entry(group).or_insert((0, 0, false));
                        entry.0 += 1;
                        if outcome.positive_feedback {
                            entry.1 += 1;
                        }
                        if outcome.met_deadline {
                            entry.2 = true;
                        }
                    }
                    if fault_schedule.duplicates_completion(task.0, epoch) {
                        // Deliver the same completion a second time; the
                        // server must reject it as already completed.
                        report.faults.completions_duplicated += 1;
                        if server.complete_task(task, worker, now, quality_ok).is_err() {
                            report.faults.duplicates_rejected += 1;
                        }
                    }
                }
            }
            report.sim_duration = now;
        }

        report.batches = server.batches_run();
        report.total_matching_seconds = server.total_matching_seconds();
        report.audit = server.audit().cloned();
        report.groups = (report.received - report.faults.burst_tasks).div_ceil(k as u64);
        for (_, (_resolved, positives, any_met)) in group_state {
            if positives * 2 > k {
                report.groups_majority_positive += 1;
            }
            if positives > 0 {
                report.groups_any_positive += 1;
            }
            if any_met {
                report.groups_any_met += 1;
            }
        }
        // Anything still open at the horizon is a miss that never even
        // completed; count queued leftovers as expired-unassigned.
        report.expired_unassigned += server.tasks().unassigned_count() as u64;
        report.faults.stranded = server.tasks().assigned_count() as u64;
        if self.observer.enabled() {
            for (kind, by) in [
                (CounterKind::FaultDropouts, report.faults.dropouts),
                (CounterKind::FaultAbandons, report.faults.abandons),
                (
                    CounterKind::FaultCompletionsLost,
                    report.faults.completions_lost,
                ),
                (
                    CounterKind::FaultCompletionsDuplicated,
                    report.faults.completions_duplicated,
                ),
                (CounterKind::FaultBurstTasks, report.faults.burst_tasks),
            ] {
                if by > 0 {
                    self.observer.incr(kind, by);
                }
            }
        }
        report
    }

    /// Runs `server.tick(now)` and applies the outcome to the event
    /// queue: recalls invalidate pending finishes, fresh assignments
    /// schedule them.
    #[allow(clippy::too_many_arguments)]
    fn control_step(
        server: &mut ReactServer,
        now: f64,
        behaviors: &[WorkerBehavior],
        behavior_rng: &mut rand::rngs::SmallRng,
        epochs: &mut BTreeMap<TaskId, u32>,
        next_free: &mut [f64],
        sim: &mut Simulator<Event>,
        report: &mut RunReport,
        fault_schedule: &FaultSchedule,
    ) {
        let outcome = server.tick(now);
        report.expired_unassigned += outcome.expired.len() as u64;
        report.expired_unassigned += outcome.shed.len() as u64;
        report.faults.timeout_recalls += outcome.timeout_recalls;
        report.faults.sheds += outcome.shed.len() as u64;
        for recall in &outcome.recalls {
            *epochs.entry(recall.task).or_insert(0) += 1;
            report.reassignments += 1;
            // The worker stops working on the recalled task immediately.
            next_free[recall.worker.0 as usize] = now;
        }
        for &(worker, task) in &outcome.assignments {
            let epoch = {
                let e = epochs.entry(task).or_insert(0);
                *e += 1;
                *e
            };
            // Availability-aware policies hand work to idle workers, so
            // `start == effective_at`; the Traditional policy may queue
            // the task behind the worker's current one.
            let w = worker.0 as usize;
            let start = outcome.effective_at.max(next_free[w]);
            let exec_time =
                behaviors[w].sample_exec_time(behavior_rng) * fault_schedule.slowdown_factor(w);
            next_free[w] = start + exec_time;
            if fault_schedule.abandons(task.0, epoch) {
                // Silent abandonment: the worker holds the task but never
                // finishes it. No Finish event — only the timeout ladder
                // (or a dropout recall) can free the task again.
                report.faults.abandons += 1;
                continue;
            }
            sim.schedule_at(
                SimTime::from_secs(start + exec_time),
                Event::Finish {
                    task,
                    worker,
                    epoch,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use react_core::MatcherPolicy;

    fn run(matcher: MatcherPolicy, seed: u64) -> RunReport {
        ScenarioRunner::new(Scenario::smoke(matcher, seed)).run()
    }

    #[test]
    fn smoke_run_accounts_for_every_task() {
        let r = run(MatcherPolicy::React { cycles: 200 }, 1);
        assert_eq!(r.received, 120);
        assert!(r.completed + r.expired_unassigned <= 120 + r.reassignments);
        assert!(r.completed > 0, "some tasks must complete");
        assert!(r.met_deadline <= r.completed);
        assert!(r.positive_feedback <= r.met_deadline);
        assert_eq!(r.matcher_name, "react");
        assert!(r.sim_duration > 0.0);
        assert!(r.batches > 0);
    }

    #[test]
    fn series_are_cumulative_and_bounded() {
        let r = run(MatcherPolicy::React { cycles: 200 }, 2);
        let pts = r.series_met.points();
        assert!(!pts.is_empty());
        let mut last_y = 0.0;
        for &(x, y) in pts {
            assert!(y >= last_y, "cumulative curve must not decrease");
            assert!(y <= x, "cannot meet more deadlines than tasks received");
            last_y = y;
        }
        assert_eq!(r.series_met.last().unwrap().1, r.met_deadline as f64);
        assert_eq!(
            r.series_positive.last().unwrap().1,
            r.positive_feedback as f64
        );
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let a = run(MatcherPolicy::React { cycles: 200 }, 7);
        let b = run(MatcherPolicy::React { cycles: 200 }, 7);
        assert_eq!(a.met_deadline, b.met_deadline);
        assert_eq!(a.positive_feedback, b.positive_feedback);
        assert_eq!(a.exec_times, b.exec_times);
        let c = run(MatcherPolicy::React { cycles: 200 }, 8);
        // Not a strict requirement, but astronomically unlikely to match.
        assert!(
            a.met_deadline != c.met_deadline || a.exec_times != c.exec_times,
            "different seeds should differ"
        );
    }

    #[test]
    fn traditional_never_reassigns() {
        let r = run(MatcherPolicy::Traditional, 3);
        assert_eq!(r.reassignments, 0);
        assert!(r.completed > 0);
    }

    #[test]
    fn react_reassigns_stalled_tasks() {
        // With 50 % of executions stretching toward 130 s against 60–120 s
        // deadlines, the Eq. (2) model must fire at least sometimes.
        let r = run(MatcherPolicy::React { cycles: 200 }, 4);
        assert!(
            r.reassignments > 0,
            "expected recalls under the paper's delay model"
        );
    }

    #[test]
    fn replication_expands_and_votes() {
        let mut sc = Scenario::smoke(MatcherPolicy::Traditional, 12);
        sc.total_tasks = 60;
        sc.replication = 3;
        let r = ScenarioRunner::new(sc).run();
        assert_eq!(r.replication, 3);
        assert_eq!(r.received, 180, "60 logical tasks × 3 replicas");
        assert_eq!(r.groups, 60);
        assert!(r.groups_majority_positive <= r.groups);
        assert!(r.groups_any_met <= r.groups);
        assert!(r.groups_any_met > 0);
        // Conservation still holds per replica.
        assert_eq!(r.completed + r.expired_unassigned, r.received);
        assert_eq!(r.payments(), r.completed);
    }

    #[test]
    fn replication_one_matches_positive_ratio() {
        let r = run(MatcherPolicy::React { cycles: 200 }, 13);
        assert_eq!(r.replication, 1);
        assert_eq!(r.groups, r.received);
        assert_eq!(r.groups_majority_positive, r.positive_feedback);
        assert!((r.group_accuracy() - r.positive_ratio()).abs() < 1e-12);
    }

    #[test]
    fn replication_raises_best_answer_rate_at_higher_cost() {
        // The CDAS-style trade under the Traditional policy: asking 3
        // workers and keeping the best answer succeeds far more often
        // than asking one — at ≈3× the payments. (Strict majority voting
        // only helps once per-replica success exceeds ½, which blind
        // traditional assignment does not reach; both metrics are
        // reported.)
        let mut base = Scenario::smoke(MatcherPolicy::Traditional, 14);
        base.total_tasks = 80;
        base.n_workers = 150;
        base.arrival_rate = 1.0;
        let single = ScenarioRunner::new(base.clone()).run();
        let mut replicated = base;
        replicated.replication = 3;
        let triple = ScenarioRunner::new(replicated).run();
        let single_rate = single.groups_any_positive as f64 / single.groups as f64;
        let triple_rate = triple.groups_any_positive as f64 / triple.groups as f64;
        assert!(
            triple_rate > single_rate,
            "best-answer redundancy must raise success: {triple_rate:.2} vs {single_rate:.2}"
        );
        assert!(
            triple.payments() > single.payments() * 2,
            "redundancy costs ≈3×: {} vs {}",
            triple.payments(),
            single.payments()
        );
    }

    #[test]
    fn churn_recalls_tasks_and_still_terminates() {
        use crate::scenario::ChurnParams;
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 6);
        sc.churn = Some(ChurnParams {
            mean_online: 30.0,
            offline_range: (5.0, 20.0),
        });
        let r = ScenarioRunner::new(sc).run();
        assert_eq!(r.received, 120);
        assert!(r.churn_events > 0, "churn must actually fire");
        assert_eq!(
            r.completed + r.expired_unassigned,
            r.received,
            "tasks conserved under churn: {r:?}"
        );
        // Stable crowd for comparison: no churn events.
        let stable = run(MatcherPolicy::React { cycles: 200 }, 6);
        assert_eq!(stable.churn_events, 0);
    }

    #[test]
    fn heavy_churn_degrades_but_never_breaks() {
        use crate::scenario::ChurnParams;
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 7);
        sc.churn = Some(ChurnParams {
            mean_online: 5.0,
            offline_range: (30.0, 60.0),
        });
        let r = ScenarioRunner::new(sc).run();
        assert_eq!(r.completed + r.expired_unassigned, r.received);
        // With most of the crowd offline most of the time, some tasks
        // must fail to find a worker in time.
        assert!(
            r.expired_unassigned > 0,
            "extreme churn should cause queue expiries"
        );
    }

    #[test]
    fn noop_fault_plan_is_bit_identical_to_no_plan() {
        use react_faults::FaultPlan;
        let baseline = run(MatcherPolicy::React { cycles: 200 }, 21);
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 21);
        sc.faults = Some(FaultPlan::none());
        let with_noop = ScenarioRunner::new(sc).run();
        assert_eq!(baseline.exec_times, with_noop.exec_times);
        assert_eq!(baseline.total_times, with_noop.total_times);
        assert_eq!(baseline.met_deadline, with_noop.met_deadline);
        assert_eq!(with_noop.faults, FaultStats::default());
    }

    #[test]
    fn chaos_run_is_deterministic_and_conserves_every_task() {
        use react_core::RecoveryConfig;
        use react_faults::FaultPlan;
        let chaos = |seed: u64| {
            let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, seed);
            sc.faults = Some(FaultPlan::chaos(0.8));
            sc.config.recovery = RecoveryConfig::aggressive(30.0);
            ScenarioRunner::new(sc).run()
        };
        let a = chaos(22);
        let b = chaos(22);
        assert_eq!(a.faults, b.faults, "chaos runs must be bit-reproducible");
        assert_eq!(a.exec_times, b.exec_times);
        assert_eq!(a.met_deadline, b.met_deadline);
        assert_eq!(a.reassignments, b.reassignments);
        // Every task — including injected burst tasks — ends the run
        // completed, expired/shed, or stranded in a faulty worker's hands.
        assert_eq!(
            a.completed + a.expired_unassigned + a.faults.stranded,
            a.received,
            "task conservation under chaos: {:?}",
            a.faults
        );
        let injected = a.faults.dropouts
            + a.faults.abandons
            + a.faults.completions_lost
            + a.faults.completions_duplicated
            + a.faults.burst_tasks;
        assert!(injected > 0, "chaos(0.8) must actually inject faults");
        assert_eq!(
            a.faults.duplicates_rejected, a.faults.completions_duplicated,
            "every duplicated completion must be rejected by the server"
        );
        // A different seed materialises a different schedule.
        let c = chaos(23);
        assert!(a.faults != c.faults || a.exec_times != c.exec_times);
    }

    #[test]
    fn dropout_plan_recalls_in_flight_tasks() {
        use react_faults::FaultPlan;
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 24);
        sc.faults = Some(FaultPlan::dropout_only(1.0));
        let r = ScenarioRunner::new(sc).run();
        assert!(r.faults.dropouts > 0, "every worker must drop out");
        assert!(
            r.churn_events >= r.faults.dropouts,
            "each dropout fires a worker-offline event"
        );
        assert_eq!(
            r.completed + r.expired_unassigned + r.faults.stranded,
            r.received
        );
    }

    #[test]
    fn timeout_ladder_recovers_abandoned_tasks() {
        use react_core::RecoveryConfig;
        use react_faults::FaultPlan;
        let plan = FaultPlan {
            abandon_probability: 0.3,
            ..FaultPlan::none()
        };
        let mut sc = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 25);
        sc.faults = Some(plan);
        sc.config.recovery = RecoveryConfig::aggressive(20.0);
        let r = ScenarioRunner::new(sc).run();
        assert!(r.faults.abandons > 0, "abandonment must fire at p=0.3");
        assert!(
            r.faults.timeout_recalls > 0,
            "the ladder must recall abandoned work: {:?}",
            r.faults
        );
        // Without the ladder the same plan strands more work.
        let mut bare = Scenario::smoke(MatcherPolicy::React { cycles: 200 }, 25);
        bare.faults = Some(plan);
        let unrecovered = ScenarioRunner::new(bare).run();
        assert!(
            r.completed > unrecovered.completed,
            "recovery must convert abandoned work into completions: {} vs {}",
            r.completed,
            unrecovered.completed
        );
    }

    #[test]
    fn ratios_and_averages_consistent() {
        let r = run(MatcherPolicy::React { cycles: 200 }, 5);
        assert!((0.0..=1.0).contains(&r.deadline_ratio()));
        assert!((0.0..=1.0).contains(&r.positive_ratio()));
        assert!(r.positive_ratio() <= r.deadline_ratio() + 1e-9);
        if r.completed > 0 {
            assert!(r.avg_exec_time() > 0.0);
            // Total time includes queueing + assignment latency.
            assert!(r.avg_total_time() >= r.avg_exec_time() * 0.9);
        }
        // Empty-report edge cases.
        let empty = RunReport {
            exec_times: vec![],
            total_times: vec![],
            received: 0,
            ..r
        };
        assert_eq!(empty.deadline_ratio(), 0.0);
        assert_eq!(empty.avg_exec_time(), 0.0);
    }
}
