//! Multi-tier region hierarchy.
//!
//! Sec. III-A: *"possibly defining several tiers at different levels of
//! granularity, ranging from small local areas at the lowest tier, to the
//! entire network area at the highest tier; this allows the system to
//! collect task information from all the users in a scalable manner."*
//!
//! [`TieredGrid`] stacks [`RegionGrid`]s: tier 0 is the finest grid and
//! each higher tier halves the resolution (rounding up) until a single
//! region covers everything.

use crate::coords::GeoPoint;
use crate::grid::{RegionGrid, RegionId};
use crate::region::BoundingBox;

/// A stack of grids over the same area at coarsening resolutions.
#[derive(Debug, Clone)]
pub struct TieredGrid {
    tiers: Vec<RegionGrid>,
}

impl TieredGrid {
    /// Builds the hierarchy starting from a `rows × cols` finest tier.
    /// Returns `None` when `rows` or `cols` is zero.
    pub fn new(area: BoundingBox, rows: u32, cols: u32) -> Option<Self> {
        let mut tiers = Vec::new();
        let (mut r, mut c) = (rows, cols);
        if r == 0 || c == 0 {
            return None;
        }
        loop {
            tiers.push(RegionGrid::new(area, r, c).expect("dimensions are non-zero"));
            if r == 1 && c == 1 {
                break;
            }
            r = r.div_ceil(2);
            c = c.div_ceil(2);
        }
        Some(TieredGrid { tiers })
    }

    /// Number of tiers (≥ 1); tier 0 is the finest.
    pub fn depth(&self) -> usize {
        self.tiers.len()
    }

    /// The grid at `tier`, if it exists.
    pub fn tier(&self, tier: usize) -> Option<&RegionGrid> {
        self.tiers.get(tier)
    }

    /// The finest grid (tier 0) — the one region servers are bound to.
    pub fn finest(&self) -> &RegionGrid {
        &self.tiers[0]
    }

    /// The coarsest grid (a single region covering the whole area).
    pub fn coarsest(&self) -> &RegionGrid {
        self.tiers.last().expect("at least one tier")
    }

    /// Locates a point at every tier, finest first. Returns an empty Vec
    /// for points outside the area.
    pub fn locate_all(&self, p: &GeoPoint) -> Vec<RegionId> {
        match self.finest().locate(p) {
            None => Vec::new(),
            Some(_) => self
                .tiers
                .iter()
                .map(|g| g.locate(p).expect("inside area at every tier"))
                .collect(),
        }
    }

    /// The tier-`t+1` region that aggregates the given tier-`t` region
    /// (the "parent" in the hierarchy). `None` at the top tier or for
    /// invalid ids.
    pub fn parent(&self, tier: usize, id: RegionId) -> Option<RegionId> {
        let fine = self.tiers.get(tier)?;
        let coarse = self.tiers.get(tier + 1)?;
        let cell = fine.cell(id)?;
        coarse.locate(&cell.center())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn area() -> BoundingBox {
        BoundingBox::new(0.0, 8.0, 0.0, 8.0).unwrap()
    }

    #[test]
    fn builds_until_single_region() {
        let t = TieredGrid::new(area(), 8, 8).unwrap();
        // 8×8 → 4×4 → 2×2 → 1×1.
        assert_eq!(t.depth(), 4);
        assert_eq!(t.finest().len(), 64);
        assert_eq!(t.coarsest().len(), 1);
    }

    #[test]
    fn odd_dimensions_round_up() {
        let t = TieredGrid::new(area(), 5, 3).unwrap();
        // 5×3 → 3×2 → 2×1 → 1×1.
        assert_eq!(t.depth(), 4);
        assert_eq!(t.tier(1).unwrap().rows(), 3);
        assert_eq!(t.tier(1).unwrap().cols(), 2);
    }

    #[test]
    fn rejects_zero() {
        assert!(TieredGrid::new(area(), 0, 4).is_none());
    }

    #[test]
    fn single_tier_when_one_by_one() {
        let t = TieredGrid::new(area(), 1, 1).unwrap();
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn locate_all_returns_one_id_per_tier() {
        let t = TieredGrid::new(area(), 4, 4).unwrap();
        let p = GeoPoint::new(1.0, 1.0);
        let ids = t.locate_all(&p);
        assert_eq!(ids.len(), t.depth());
        // Top tier is always region 0.
        assert_eq!(*ids.last().unwrap(), RegionId(0));
        // Outside point → empty.
        assert!(t.locate_all(&GeoPoint::new(20.0, 1.0)).is_empty());
    }

    #[test]
    fn parent_contains_child() {
        let t = TieredGrid::new(area(), 8, 8).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..500 {
            let p = area().random_point(&mut rng);
            for tier in 0..t.depth() - 1 {
                let id = t.tier(tier).unwrap().locate(&p).unwrap();
                let parent = t.parent(tier, id).unwrap();
                let parent_cell = t.tier(tier + 1).unwrap().cell(parent).unwrap();
                let child_cell = t.tier(tier).unwrap().cell(id).unwrap();
                assert!(
                    parent_cell.contains(&child_cell.center()),
                    "tier {tier}: parent cell must contain the child's center"
                );
            }
        }
    }

    #[test]
    fn parent_at_top_is_none() {
        let t = TieredGrid::new(area(), 2, 2).unwrap();
        let top = t.depth() - 1;
        assert!(t.parent(top, RegionId(0)).is_none());
        assert!(t.parent(0, RegionId(999)).is_none());
    }
}
