//! Rectangular latitude/longitude regions.

use crate::coords::GeoPoint;
use rand::Rng;

/// An axis-aligned latitude/longitude rectangle,
/// `[lat_min, lat_max) × [lon_min, lon_max)`.
///
/// Half-open bounds guarantee that a grid of adjacent boxes partitions the
/// plane with no point belonging to two regions — the paper's
/// "non-overlapping regions" requirement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    lat_min: f64,
    lat_max: f64,
    lon_min: f64,
    lon_max: f64,
}

impl BoundingBox {
    /// Creates a box; returns `None` when the rectangle is empty or any
    /// bound is not finite.
    pub fn new(lat_min: f64, lat_max: f64, lon_min: f64, lon_max: f64) -> Option<Self> {
        let finite = [lat_min, lat_max, lon_min, lon_max]
            .iter()
            .all(|v| v.is_finite());
        if !finite || lat_min >= lat_max || lon_min >= lon_max {
            return None;
        }
        Some(BoundingBox {
            lat_min,
            lat_max,
            lon_min,
            lon_max,
        })
    }

    /// A box covering a whole metropolitan area around a centre point —
    /// convenient for examples (`half_deg` degrees in each direction).
    pub fn around(center: GeoPoint, half_deg: f64) -> Option<Self> {
        Self::new(
            center.lat() - half_deg,
            center.lat() + half_deg,
            center.lon() - half_deg,
            center.lon() + half_deg,
        )
    }

    /// Minimum latitude (inclusive).
    pub fn lat_min(&self) -> f64 {
        self.lat_min
    }

    /// Maximum latitude (exclusive).
    pub fn lat_max(&self) -> f64 {
        self.lat_max
    }

    /// Minimum longitude (inclusive).
    pub fn lon_min(&self) -> f64 {
        self.lon_min
    }

    /// Maximum longitude (exclusive).
    pub fn lon_max(&self) -> f64 {
        self.lon_max
    }

    /// True when the point lies inside the half-open rectangle.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat() >= self.lat_min
            && p.lat() < self.lat_max
            && p.lon() >= self.lon_min
            && p.lon() < self.lon_max
    }

    /// The centre of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new(
            0.5 * (self.lat_min + self.lat_max),
            0.5 * (self.lon_min + self.lon_max),
        )
    }

    /// Latitude extent in degrees.
    pub fn lat_span(&self) -> f64 {
        self.lat_max - self.lat_min
    }

    /// Longitude extent in degrees.
    pub fn lon_span(&self) -> f64 {
        self.lon_max - self.lon_min
    }

    /// Splits the box into four half-open quadrants (NW, NE, SW, SE order
    /// is: [lat-low/lon-low, lat-low/lon-high, lat-high/lon-low,
    /// lat-high/lon-high]). Used when an overloaded region is subdivided.
    pub fn split4(&self) -> [BoundingBox; 4] {
        let lat_mid = 0.5 * (self.lat_min + self.lat_max);
        let lon_mid = 0.5 * (self.lon_min + self.lon_max);
        [
            BoundingBox::new(self.lat_min, lat_mid, self.lon_min, lon_mid)
                .expect("non-empty parent quadrant"),
            BoundingBox::new(self.lat_min, lat_mid, lon_mid, self.lon_max)
                .expect("non-empty parent quadrant"),
            BoundingBox::new(lat_mid, self.lat_max, self.lon_min, lon_mid)
                .expect("non-empty parent quadrant"),
            BoundingBox::new(lat_mid, self.lat_max, lon_mid, self.lon_max)
                .expect("non-empty parent quadrant"),
        ]
    }

    /// Draws a point uniformly inside this box.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        GeoPoint::new(
            rng.gen_range(self.lat_min..self.lat_max),
            rng.gen_range(self.lon_min..self.lon_max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn athens_box() -> BoundingBox {
        BoundingBox::new(37.8, 38.2, 23.5, 24.0).unwrap()
    }

    #[test]
    fn rejects_empty_or_invalid() {
        assert!(BoundingBox::new(1.0, 1.0, 0.0, 1.0).is_none());
        assert!(BoundingBox::new(2.0, 1.0, 0.0, 1.0).is_none());
        assert!(BoundingBox::new(0.0, 1.0, 1.0, 1.0).is_none());
        assert!(BoundingBox::new(f64::NAN, 1.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn half_open_semantics() {
        let b = athens_box();
        assert!(b.contains(&GeoPoint::new(37.8, 23.5)), "min corner inside");
        assert!(!b.contains(&GeoPoint::new(38.2, 23.7)), "lat_max outside");
        assert!(!b.contains(&GeoPoint::new(37.9, 24.0)), "lon_max outside");
        assert!(b.contains(&b.center()));
    }

    #[test]
    fn around_builds_centered_box() {
        let c = GeoPoint::new(37.98, 23.72);
        let b = BoundingBox::around(c, 0.25).unwrap();
        let got = b.center();
        assert!((got.lat() - 37.98).abs() < 1e-9);
        assert!((got.lon() - 23.72).abs() < 1e-9);
        assert!((b.lat_span() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn split4_partitions_exactly() {
        let b = athens_box();
        let quads = b.split4();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..2000 {
            let p = b.random_point(&mut rng);
            let owners = quads.iter().filter(|q| q.contains(&p)).count();
            assert_eq!(owners, 1, "every point owned by exactly one quadrant");
        }
        // Quadrant spans halve the parent spans.
        for q in &quads {
            assert!((q.lat_span() - b.lat_span() / 2.0).abs() < 1e-12);
            assert!((q.lon_span() - b.lon_span() / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn random_points_inside() {
        let b = athens_box();
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(b.contains(&b.random_point(&mut rng)));
        }
    }
}
