//! Point→server routing with overload-driven region splitting.
//!
//! Each region of the finest grid is assigned to a REACT server. The
//! router tracks per-region registration counts (workers + open tasks)
//! and, mirroring the paper's conclusion that *"one possible solution ...
//! is to split the regions so that each of the servers would contain
//! sufficient workers and tasks without being overloaded"*, can split a
//! hot region's cell into four sub-cells served by new servers.

use crate::coords::GeoPoint;
use crate::grid::RegionGrid;
use crate::region::BoundingBox;

/// Identifier of a REACT server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server#{}", self.0)
    }
}

/// One routable cell: a bounding box owned by a server, with a live
/// registration count.
#[derive(Debug, Clone)]
struct Cell {
    bounds: BoundingBox,
    server: ServerId,
    load: u64,
    /// Indices of child cells after a split (empty while this cell is a
    /// leaf). A split cell stops routing and delegates to its children.
    children: Vec<usize>,
}

/// Routes points to servers over a (possibly split) region decomposition.
#[derive(Debug, Clone)]
pub struct RegionRouter {
    cells: Vec<Cell>,
    /// Root cells, one per finest-grid region.
    roots: Vec<usize>,
    next_server: u32,
    /// Load at which [`RegionRouter::split_overloaded`] subdivides a cell.
    split_threshold: u64,
}

impl RegionRouter {
    /// Builds a router over the finest tier of `grid`, assigning servers
    /// `0..n_regions` to its cells. `split_threshold` is the registration
    /// count that marks a region as overloaded.
    pub fn new(grid: &RegionGrid, split_threshold: u64) -> Self {
        let mut cells = Vec::with_capacity(grid.len());
        let mut roots = Vec::with_capacity(grid.len());
        for (i, id) in grid.region_ids().enumerate() {
            let bounds = grid.cell(id).expect("id from region_ids is valid");
            cells.push(Cell {
                bounds,
                server: ServerId(i as u32),
                load: 0,
                children: Vec::new(),
            });
            roots.push(i);
        }
        let next_server = cells.len() as u32;
        RegionRouter {
            cells,
            roots,
            next_server,
            split_threshold,
        }
    }

    /// Total number of leaf cells (= active servers).
    pub fn server_count(&self) -> usize {
        self.cells.iter().filter(|c| c.children.is_empty()).count()
    }

    /// Routes a point to the leaf cell containing it and returns the
    /// owning server without mutating load. `None` outside the area.
    pub fn route(&self, p: &GeoPoint) -> Option<ServerId> {
        let mut idx = *self
            .roots
            .iter()
            .find(|&&i| self.cells[i].bounds.contains(p))?;
        loop {
            let cell = &self.cells[idx];
            if cell.children.is_empty() {
                return Some(cell.server);
            }
            idx = *cell
                .children
                .iter()
                .find(|&&c| self.cells[c].bounds.contains(p))
                .expect("children partition the parent cell");
        }
    }

    /// Routes a point and records one registration against the chosen
    /// cell's load.
    pub fn register(&mut self, p: &GeoPoint) -> Option<ServerId> {
        let server = self.route(p)?;
        if let Some(cell) = self
            .cells
            .iter_mut()
            .find(|c| c.children.is_empty() && c.server == server)
        {
            cell.load += 1;
        }
        Some(server)
    }

    /// Removes one registration for the cell owned by `server` (e.g. a
    /// worker left the region). Saturates at zero.
    pub fn deregister(&mut self, server: ServerId) {
        if let Some(cell) = self
            .cells
            .iter_mut()
            .find(|c| c.children.is_empty() && c.server == server)
        {
            cell.load = cell.load.saturating_sub(1);
        }
    }

    /// Records one registration against the cell owned by `server`
    /// directly, without routing a point. The cluster layer uses this
    /// when a task is handed to a *neighbouring* shard: the task's
    /// location still lies in the source cell, so routing by point would
    /// charge the wrong server.
    pub fn add_load(&mut self, server: ServerId) {
        if let Some(cell) = self
            .cells
            .iter_mut()
            .find(|c| c.children.is_empty() && c.server == server)
        {
            cell.load += 1;
        }
    }

    /// Current load of a server's cell (0 for unknown servers).
    pub fn load(&self, server: ServerId) -> u64 {
        self.cells
            .iter()
            .find(|c| c.children.is_empty() && c.server == server)
            .map_or(0, |c| c.load)
    }

    /// Zeroes every cell's load counter. Used after projected-load
    /// pre-splitting: the cluster layer feeds expected member locations
    /// through [`RegionRouter::register`] to decide the shard topology,
    /// then resets the counters so live registrations start from zero.
    pub fn reset_loads(&mut self) {
        for cell in &mut self.cells {
            cell.load = 0;
        }
    }

    /// All leaf servers (= active shards), in cell-creation order. Roots
    /// come first in row-major grid order, then split children in the
    /// order the splits happened — a deterministic enumeration.
    pub fn leaves(&self) -> Vec<ServerId> {
        self.cells
            .iter()
            .filter(|c| c.children.is_empty())
            .map(|c| c.server)
            .collect()
    }

    /// The bounding box owned by `server`, if it is a live leaf.
    pub fn bounds(&self, server: ServerId) -> Option<BoundingBox> {
        self.cells
            .iter()
            .find(|c| c.children.is_empty() && c.server == server)
            .map(|c| c.bounds)
    }

    /// Leaf cells edge-adjacent to `server`'s cell, in leaf enumeration
    /// order. Two cells are neighbours when they share a boundary edge of
    /// positive length (corner contact does not count). Works across
    /// split levels: a root cell can neighbour the child of a split cell.
    pub fn neighbors(&self, server: ServerId) -> Vec<ServerId> {
        let Some(own) = self.bounds(server) else {
            return Vec::new();
        };
        self.cells
            .iter()
            .filter(|c| c.children.is_empty() && c.server != server)
            .filter(|c| boxes_edge_adjacent(&own, &c.bounds))
            .map(|c| c.server)
            .collect()
    }

    /// Splits every leaf cell whose load is at/above the threshold into
    /// four quadrants served by fresh servers (the parent's load is
    /// spread evenly as an estimate until members re-register). Returns
    /// the list of `(old_server, new_servers)` splits performed.
    pub fn split_overloaded(&mut self) -> Vec<(ServerId, [ServerId; 4])> {
        let mut result = Vec::new();
        let overloaded: Vec<usize> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.children.is_empty() && c.load >= self.split_threshold)
            .map(|(i, _)| i)
            .collect();
        for idx in overloaded {
            let quads = self.cells[idx].bounds.split4();
            let share = self.cells[idx].load / 4;
            let mut new_servers = [ServerId(0); 4];
            let mut children = Vec::with_capacity(4);
            for (q, bounds) in quads.into_iter().enumerate() {
                let server = ServerId(self.next_server);
                self.next_server += 1;
                new_servers[q] = server;
                children.push(self.cells.len());
                self.cells.push(Cell {
                    bounds,
                    server,
                    load: share,
                    children: Vec::new(),
                });
            }
            let old = self.cells[idx].server;
            self.cells[idx].children = children;
            self.cells[idx].load = 0;
            result.push((old, new_servers));
        }
        result
    }
}

/// True when `a` and `b` share a boundary edge of positive length.
///
/// Cells come from recursive binary midpoint splits of grid cells, so
/// matching edges are computed from the same arithmetic — but we still
/// compare with a span-scaled tolerance rather than exact equality to be
/// robust against the one-ulp drift the midpoint computation can
/// introduce at deep split levels.
fn boxes_edge_adjacent(a: &BoundingBox, b: &BoundingBox) -> bool {
    let eps = 1e-9 * (a.lat_span() + a.lon_span() + b.lat_span() + b.lon_span());
    let lat_overlap = a.lat_min() < b.lat_max() - eps && b.lat_min() < a.lat_max() - eps;
    let lon_overlap = a.lon_min() < b.lon_max() - eps && b.lon_min() < a.lon_max() - eps;
    let lat_touch =
        (a.lat_max() - b.lat_min()).abs() <= eps || (b.lat_max() - a.lat_min()).abs() <= eps;
    let lon_touch =
        (a.lon_max() - b.lon_min()).abs() <= eps || (b.lon_max() - a.lon_min()).abs() <= eps;
    (lat_touch && lon_overlap) || (lon_touch && lat_overlap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn router() -> RegionRouter {
        let area = BoundingBox::new(0.0, 4.0, 0.0, 4.0).unwrap();
        let grid = RegionGrid::new(area, 2, 2).unwrap();
        RegionRouter::new(&grid, 10)
    }

    #[test]
    fn routes_each_region_to_distinct_server() {
        let r = router();
        assert_eq!(r.server_count(), 4);
        let s00 = r.route(&GeoPoint::new(0.5, 0.5)).unwrap();
        let s01 = r.route(&GeoPoint::new(0.5, 2.5)).unwrap();
        let s10 = r.route(&GeoPoint::new(2.5, 0.5)).unwrap();
        let s11 = r.route(&GeoPoint::new(2.5, 2.5)).unwrap();
        let mut all = vec![s00, s01, s10, s11];
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 4);
        assert_eq!(r.route(&GeoPoint::new(9.0, 9.0)), None);
    }

    #[test]
    fn register_counts_load() {
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        let s = r.register(&p).unwrap();
        r.register(&p).unwrap();
        assert_eq!(r.load(s), 2);
        r.deregister(s);
        assert_eq!(r.load(s), 1);
        r.deregister(s);
        r.deregister(s); // saturates
        assert_eq!(r.load(s), 0);
    }

    #[test]
    fn split_overloaded_subdivides() {
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        let hot = r.register(&p).unwrap();
        for _ in 0..11 {
            r.register(&p).unwrap();
        }
        let splits = r.split_overloaded();
        assert_eq!(splits.len(), 1);
        assert_eq!(splits[0].0, hot);
        // 4 original leaves − 1 split + 4 children = 7 leaves.
        assert_eq!(r.server_count(), 7);
        // The point now routes to one of the new child servers.
        let new = r.route(&p).unwrap();
        assert!(splits[0].1.contains(&new));
        assert_ne!(new, hot);
        // Other regions unaffected.
        let other = r.route(&GeoPoint::new(2.5, 2.5)).unwrap();
        assert_eq!(other, ServerId(3));
    }

    #[test]
    fn split_spreads_load_estimate() {
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        for _ in 0..12 {
            r.register(&p).unwrap();
        }
        let splits = r.split_overloaded();
        for s in &splits[0].1 {
            assert_eq!(r.load(*s), 3);
        }
    }

    #[test]
    fn no_split_below_threshold() {
        let mut r = router();
        r.register(&GeoPoint::new(0.5, 0.5)).unwrap();
        assert!(r.split_overloaded().is_empty());
        assert_eq!(r.server_count(), 4);
    }

    #[test]
    fn children_partition_split_cell() {
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        for _ in 0..10 {
            r.register(&p).unwrap();
        }
        r.split_overloaded();
        // All points in the original cell still route somewhere.
        let mut rng = SmallRng::seed_from_u64(5);
        let cell = BoundingBox::new(0.0, 2.0, 0.0, 2.0).unwrap();
        for _ in 0..1000 {
            let q = cell.random_point(&mut rng);
            assert!(r.route(&q).is_some());
        }
    }

    #[test]
    fn recursive_split() {
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        for _ in 0..10 {
            r.register(&p).unwrap();
        }
        r.split_overloaded();
        // Overload one of the children and split again.
        let child = r.route(&p).unwrap();
        for _ in 0..10 {
            r.register(&p).unwrap();
        }
        assert!(r.load(child) >= 10);
        let splits = r.split_overloaded();
        assert!(splits.iter().any(|(old, _)| *old == child));
        assert!(r.route(&p).is_some());
    }

    #[test]
    fn server_id_display() {
        assert_eq!(ServerId(7).to_string(), "server#7");
    }

    #[test]
    fn leaves_and_bounds_enumerate_live_cells() {
        let mut r = router();
        assert_eq!(
            r.leaves(),
            vec![ServerId(0), ServerId(1), ServerId(2), ServerId(3)]
        );
        let b0 = r.bounds(ServerId(0)).unwrap();
        assert!(b0.contains(&GeoPoint::new(0.5, 0.5)));
        // Split server 0; its bounds disappear and four children appear.
        let p = GeoPoint::new(0.5, 0.5);
        for _ in 0..10 {
            r.register(&p).unwrap();
        }
        let splits = r.split_overloaded();
        assert!(r.bounds(ServerId(0)).is_none());
        let leaves = r.leaves();
        assert_eq!(leaves.len(), 7);
        assert!(!leaves.contains(&ServerId(0)));
        for child in &splits[0].1 {
            assert!(leaves.contains(child));
        }
    }

    #[test]
    fn neighbors_on_uniform_grid() {
        // 2×2 grid: each cell neighbours the two orthogonally adjacent
        // cells, never the diagonal one (corner contact only).
        let r = router();
        let mut n = r.neighbors(ServerId(0));
        n.sort();
        assert_eq!(n, vec![ServerId(1), ServerId(2)]);
        let mut n = r.neighbors(ServerId(3));
        n.sort();
        assert_eq!(n, vec![ServerId(1), ServerId(2)]);
        assert!(r.neighbors(ServerId(99)).is_empty());
    }

    #[test]
    fn neighbors_cross_split_levels() {
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        for _ in 0..10 {
            r.register(&p).unwrap();
        }
        let splits = r.split_overloaded();
        let children = splits[0].1; // [lat-low/lon-low, lat-low/lon-high,
                                    //  lat-high/lon-low, lat-high/lon-high]
                                    // The lat-high/lon-high child touches both unsplit root cells 1
                                    // (lon-high) and 2 (lat-high), plus its two sibling quadrants.
        let mut n = r.neighbors(children[3]);
        n.sort();
        assert_eq!(n, vec![ServerId(1), ServerId(2), children[1], children[2]]);
        // Root cell 1 now sees the two lon-high children instead of the
        // split parent, and still sees the diagonal-free root 3.
        let n = r.neighbors(ServerId(1));
        assert!(n.contains(&children[1]) && n.contains(&children[3]));
        assert!(n.contains(&ServerId(3)));
        assert!(!n.contains(&ServerId(0)), "split parent no longer routes");
        assert!(!n.contains(&children[0]), "corner contact only");
    }

    #[test]
    fn live_load_decrements_prevent_stale_splits() {
        // Regression: load must track *live* membership. A region that
        // fills up and then drains (tasks complete, workers leave) must
        // not be split on its historical peak.
        let mut r = router();
        let p = GeoPoint::new(0.5, 0.5);
        let s = r.register(&p).unwrap();
        for _ in 0..11 {
            r.register(&p).unwrap();
        }
        assert_eq!(r.load(s), 12);
        // Everything completes/departs before the split check runs.
        for _ in 0..12 {
            r.deregister(s);
        }
        assert_eq!(r.load(s), 0);
        assert!(
            r.split_overloaded().is_empty(),
            "drained region must not split on stale load"
        );
        assert_eq!(r.server_count(), 4);
    }

    #[test]
    fn add_load_and_reset_loads() {
        let mut r = router();
        r.add_load(ServerId(2));
        r.add_load(ServerId(2));
        assert_eq!(r.load(ServerId(2)), 2);
        r.add_load(ServerId(99)); // unknown: no-op
        r.reset_loads();
        for s in r.leaves() {
            assert_eq!(r.load(s), 0);
        }
    }
}
