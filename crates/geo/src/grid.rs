//! Non-overlapping grid decomposition of a bounding box.

use crate::coords::GeoPoint;
use crate::region::BoundingBox;

/// Identifier of a region within a [`RegionGrid`] (row-major index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl std::fmt::Display for RegionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// A `rows × cols` partition of a bounding box into equal half-open cells.
///
/// This is the paper's Sec. III-A decomposition: each cell is the
/// responsibility of one REACT server, and point→cell lookup is O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionGrid {
    area: BoundingBox,
    rows: u32,
    cols: u32,
}

impl RegionGrid {
    /// Creates the grid. Returns `None` when `rows` or `cols` is zero.
    pub fn new(area: BoundingBox, rows: u32, cols: u32) -> Option<Self> {
        if rows == 0 || cols == 0 {
            return None;
        }
        Some(RegionGrid { area, rows, cols })
    }

    /// The covered area.
    pub fn area(&self) -> &BoundingBox {
        &self.area
    }

    /// Number of rows (latitude bands).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Number of columns (longitude bands).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Total number of regions.
    pub fn len(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// Always false — a grid has ≥ 1 cell by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps a point to the region containing it; `None` for points
    /// outside the covered area.
    pub fn locate(&self, p: &GeoPoint) -> Option<RegionId> {
        if !self.area.contains(p) {
            return None;
        }
        let row_f = (p.lat() - self.area.lat_min()) / self.area.lat_span() * self.rows as f64;
        let col_f = (p.lon() - self.area.lon_min()) / self.area.lon_span() * self.cols as f64;
        // contains() guarantees 0 ≤ row_f < rows, but clamp against float
        // round-off at the extreme edge.
        let row = (row_f as u32).min(self.rows - 1);
        let col = (col_f as u32).min(self.cols - 1);
        Some(RegionId(row * self.cols + col))
    }

    /// The bounding box of a region id; `None` for out-of-range ids.
    pub fn cell(&self, id: RegionId) -> Option<BoundingBox> {
        if id.0 >= self.rows * self.cols {
            return None;
        }
        let row = id.0 / self.cols;
        let col = id.0 % self.cols;
        let lat_w = self.area.lat_span() / self.rows as f64;
        let lon_w = self.area.lon_span() / self.cols as f64;
        BoundingBox::new(
            self.area.lat_min() + row as f64 * lat_w,
            self.area.lat_min() + (row + 1) as f64 * lat_w,
            self.area.lon_min() + col as f64 * lon_w,
            self.area.lon_min() + (col + 1) as f64 * lon_w,
        )
    }

    /// Iterates over all region ids in row-major order.
    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> {
        (0..self.rows * self.cols).map(RegionId)
    }

    /// The regions orthogonally adjacent to `id` (used when a server
    /// borrows workers from neighbours — an extension hook).
    pub fn neighbors(&self, id: RegionId) -> Vec<RegionId> {
        if id.0 >= self.rows * self.cols {
            return Vec::new();
        }
        let row = id.0 / self.cols;
        let col = id.0 % self.cols;
        let mut out = Vec::with_capacity(4);
        if row > 0 {
            out.push(RegionId(id.0 - self.cols));
        }
        if row + 1 < self.rows {
            out.push(RegionId(id.0 + self.cols));
        }
        if col > 0 {
            out.push(RegionId(id.0 - 1));
        }
        if col + 1 < self.cols {
            out.push(RegionId(id.0 + 1));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid() -> RegionGrid {
        let area = BoundingBox::new(0.0, 4.0, 0.0, 8.0).unwrap();
        RegionGrid::new(area, 2, 4).unwrap()
    }

    #[test]
    fn rejects_zero_dimensions() {
        let area = BoundingBox::new(0.0, 1.0, 0.0, 1.0).unwrap();
        assert!(RegionGrid::new(area, 0, 3).is_none());
        assert!(RegionGrid::new(area, 3, 0).is_none());
    }

    #[test]
    fn locate_row_major() {
        let g = grid();
        assert_eq!(g.len(), 8);
        // Bottom-left cell.
        assert_eq!(g.locate(&GeoPoint::new(0.5, 0.5)), Some(RegionId(0)));
        // Bottom-right cell (col 3).
        assert_eq!(g.locate(&GeoPoint::new(0.5, 7.5)), Some(RegionId(3)));
        // Top-left cell (row 1 → id 4).
        assert_eq!(g.locate(&GeoPoint::new(3.5, 0.5)), Some(RegionId(4)));
        // Outside.
        assert_eq!(g.locate(&GeoPoint::new(4.5, 0.5)), None);
        assert_eq!(g.locate(&GeoPoint::new(-0.1, 0.5)), None);
    }

    #[test]
    fn locate_and_cell_are_consistent() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..2000 {
            let p = g.area().random_point(&mut rng);
            let id = g.locate(&p).expect("point inside grid area");
            let cell = g.cell(id).expect("valid id");
            assert!(cell.contains(&p), "{p} not in cell of {id}");
        }
    }

    #[test]
    fn cells_partition_area() {
        let g = grid();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let p = g.area().random_point(&mut rng);
            let owners = g
                .region_ids()
                .filter(|&id| g.cell(id).unwrap().contains(&p))
                .count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn cell_out_of_range() {
        let g = grid();
        assert!(g.cell(RegionId(8)).is_none());
        assert!(g.cell(RegionId(0)).is_some());
    }

    #[test]
    fn neighbors_interior_and_corner() {
        let g = grid(); // 2 rows × 4 cols
                        // Corner 0 has right (1) and up (4).
        let mut n = g.neighbors(RegionId(0));
        n.sort();
        assert_eq!(n, vec![RegionId(1), RegionId(4)]);
        // Interior-ish cell 1: left 0, right 2, up 5.
        let mut n = g.neighbors(RegionId(1));
        n.sort();
        assert_eq!(n, vec![RegionId(0), RegionId(2), RegionId(5)]);
        // Out of range.
        assert!(g.neighbors(RegionId(99)).is_empty());
    }

    #[test]
    fn single_cell_grid() {
        let area = BoundingBox::new(0.0, 1.0, 0.0, 1.0).unwrap();
        let g = RegionGrid::new(area, 1, 1).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.locate(&GeoPoint::new(0.5, 0.5)), Some(RegionId(0)));
        assert!(g.neighbors(RegionId(0)).is_empty());
    }

    #[test]
    fn region_id_display() {
        assert_eq!(RegionId(3).to_string(), "region#3");
    }
}
