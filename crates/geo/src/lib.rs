//! Spatial substrate for the REACT middleware.
//!
//! The paper assumes *"a spatial decomposition of the geographic area into
//! a number of non-overlapping regions"*, each owned by one REACT server,
//! with tasks and workers registered to the server of the region that
//! contains them, and with *"several tiers at different levels of
//! granularity"* for scalable aggregation. The paper's future-work section
//! also proposes *splitting* overloaded regions.
//!
//! This crate implements all of that:
//!
//! * [`GeoPoint`] — WGS-84 coordinates with haversine great-circle
//!   distance (used by the optional distance-based weight function).
//! * [`BoundingBox`] — rectangular lat/lon regions.
//! * [`RegionGrid`] — a non-overlapping `rows × cols` decomposition of a
//!   bounding box with O(1) point→region lookup.
//! * [`TieredGrid`] — the multi-tier hierarchy (each tier halves the
//!   resolution of the one below).
//! * [`RegionRouter`] — point→server routing with per-region load counts
//!   and overload-driven region splitting.

#![warn(missing_docs)]

pub mod coords;
pub mod grid;
pub mod region;
pub mod router;
pub mod tier;

pub use coords::{haversine_km, GeoPoint, EARTH_RADIUS_KM};
pub use grid::{RegionGrid, RegionId};
pub use region::BoundingBox;
pub use router::{RegionRouter, ServerId};
pub use tier::TieredGrid;
